//! Server metrics: request/cache/rejection counters and a lock-free latency
//! histogram with percentile readout.
//!
//! Everything is atomics so the data plane never takes a lock to record; the
//! `STATS` command reads a consistent-enough snapshot (counters are
//! monotone; exactness across counters is not required for operations).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets. Bucket 0 counts requests with
/// latency in `[0, 2)` microseconds (sub-microsecond requests are real:
/// cache hits on tiny graphs); bucket `i >= 1` counts `[2^i, 2^(i+1))`;
/// the last bucket is open-ended. 2^39 µs ≈ 6.4 days, far beyond any
/// request.
const BUCKETS: usize = 40;

/// Maps a microsecond latency to its bucket. Total over `0..=u64::MAX`:
/// `0` and `1` land in bucket 0, `2^k..2^(k+1)-1` lands in bucket `k`
/// (for `k < BUCKETS-1`), everything from `2^(BUCKETS-1)` up saturates
/// into the open-ended last bucket.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us < 2 {
        // Explicit: zero must not be silently aliased to 1 — bucket 0's
        // range is [0, 2), so both 0 and 1 belong here by definition.
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i` in microseconds.
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Exclusive upper bound of bucket `i` in microseconds (the last bucket is
/// open-ended; its nominal bound `2^BUCKETS` is used as the reporting cap).
#[inline]
fn bucket_high(i: usize) -> u64 {
    1u64 << (i + 1)
}

/// A fixed power-of-two histogram over microseconds. Recording is one atomic
/// increment; percentiles are estimated as the upper bound of the bucket
/// containing the requested rank (≤ 2× error, plenty for p50/p99 smoke
/// numbers surfaced via `STATS`).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Estimate of the `q`-quantile in microseconds (`q` in 0..=1).
    /// Returns 0 when empty.
    ///
    /// All quantiles (p50, p99, …) use the *same* rule: find the bucket
    /// holding the ceil-rank observation, then linearly interpolate within
    /// it at the rank's midpoint position — `low + (high-low) ·
    /// (rank - seen - ½)/bucket_count`. A single observation therefore
    /// reports the bucket midpoint rather than its upper bound (a
    /// zero-latency-only histogram reports 1 µs, not 2), and p50/p99 are
    /// mutually consistent instead of mixing bound conventions.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let low = bucket_low(i) as f64;
                let high = bucket_high(i) as f64;
                let into = ((rank - seen) as f64 - 0.5) / c as f64;
                return (low + (high - low) * into).round() as u64;
            }
            seen += c;
        }
        bucket_high(BUCKETS - 1)
    }

    /// Cumulative `(upper_bound_us, count ≤ bound)` pairs in Prometheus
    /// `le` form (the open-ended `+Inf` bucket is implied by `count()`),
    /// plus the exact sum and count — the inputs
    /// [`ceci_trace::PromWriter::histogram`] expects.
    pub fn cumulative_us(&self) -> (Vec<(u64, u64)>, u64, u64) {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(BUCKETS);
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            out.push((bucket_high(i), cum));
        }
        (out, self.sum_us.load(Ordering::Relaxed), self.count())
    }
}

/// Aggregate server counters, surfaced via `STATS`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Total request lines accepted (parse successes).
    pub requests: AtomicU64,
    /// MATCH requests admitted (entered the pool).
    pub match_requests: AtomicU64,
    /// LOAD requests served.
    pub load_requests: AtomicU64,
    /// Requests rejected with `BUSY` by admission control.
    pub rejected_busy: AtomicU64,
    /// MATCH requests that hit their deadline (partial result returned).
    pub deadline_exceeded: AtomicU64,
    /// Requests answered with `ERR`.
    pub errors: AtomicU64,
    /// Index-cache hits (frozen CECI reused; build skipped).
    pub cache_hits: AtomicU64,
    /// Index-cache misses (CECI built).
    pub cache_misses: AtomicU64,
    /// Cache entries evicted under the byte budget.
    pub cache_evictions: AtomicU64,
    /// Canonical-hash collisions detected by form verification (the entry
    /// was *not* reused).
    pub cache_collisions: AtomicU64,
    /// Data-plane jobs that dropped their response channel (the worker
    /// panicked mid-request); the client got `ERR E_WORKER_DROPPED`.
    pub worker_drops: AtomicU64,
    /// Job panics caught by the pool's worker supervisors.
    pub panics_caught: AtomicU64,
    /// Index builds that panicked and whose cache key was quarantined.
    pub cache_quarantined: AtomicU64,
    /// Requests refused because their cache key is quarantined.
    pub quarantine_hits: AtomicU64,
    /// CHAOS commands executed (only counts when chaos mode is enabled).
    pub chaos_injected: AtomicU64,
    /// Total embeddings returned across MATCH responses.
    pub embeddings_returned: AtomicU64,
    /// MATCH requests answered `count=0` by the label-pair admission filter
    /// without building (or looking up) an index.
    pub filter_rejected: AtomicU64,
    /// MATCH requests that waited on another request's in-flight index
    /// build instead of building their own (single-flight dedup).
    pub singleflight_waits: AtomicU64,
    /// Shared-prefix frontiers built (batch leader paid the prefix cost).
    pub batch_frontier_builds: AtomicU64,
    /// MATCH requests that reused an already-built shared-prefix frontier.
    pub batch_frontier_hits: AtomicU64,
    /// Mutation batches applied (ADDEDGE/DELEDGE/BATCH with ≥1 net change).
    pub mutation_batches: AtomicU64,
    /// Net edges added across all applied mutation batches.
    pub edges_added: AtomicU64,
    /// Net edges deleted across all applied mutation batches.
    pub edges_deleted: AtomicU64,
    /// Overlay compactions (delta merged into a fresh base CSR).
    pub compactions: AtomicU64,
    /// Stale cached indexes repaired in place from the dirty log instead of
    /// rebuilt from scratch.
    pub index_repairs: AtomicU64,
    /// Stale cached indexes that had to fall back to a full rebuild (no
    /// stream tables retained, or the dirty log was truncated).
    pub index_repair_fallbacks: AtomicU64,
    /// Continuous-query delta events emitted to registered connections.
    pub continuous_events: AtomicU64,
    /// Adaptive plan choices where the portfolio beat the paper-default
    /// BFS-order plan (a non-default candidate won the cost race).
    pub adaptive_replans: AtomicU64,
    /// Deadline-infeasible MATCH requests answered from the estimator
    /// (`mode=APPROX`) instead of enumerating.
    pub approx_answers: AtomicU64,
    /// Deadline-infeasible MATCH requests refused with `E_INFEASIBLE`
    /// (estimate too noisy even for an APPROX answer).
    pub infeasible_rejects: AtomicU64,
    /// Connections closed after the socket read/write timeout expired with
    /// a request outstanding or a line half-read (stalled/half-open peer).
    pub timeouts: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Connections refused with `BUSY` because `max_conns` was reached.
    pub connections_rejected: AtomicU64,
    /// Connections currently open (gauge: incremented on accept,
    /// decremented on close).
    pub connections_open: AtomicU64,
    /// `EVENT` pushes that failed because the subscriber's connection was
    /// dead; each one auto-unregisters its continuous query.
    pub event_push_failures: AtomicU64,
    /// Connections dropped because their bounded write queue overflowed
    /// (the peer stopped reading while responses/events kept queueing).
    pub slow_reader_disconnects: AtomicU64,
    /// End-to-end MATCH latency (admission to response).
    pub match_latency: LatencyHistogram,
    /// CECI build time on cache misses.
    pub build_latency: LatencyHistogram,
    /// BFS-filter phase time within cache-miss builds (Algorithm 1).
    pub build_filter_latency: LatencyHistogram,
    /// Reverse-BFS refinement phase time within cache-miss builds
    /// (Algorithm 2).
    pub build_refine_latency: LatencyHistogram,
    /// Stale-index repair time (patch from dirty log + re-freeze), the
    /// counterpart of `build_latency` for the repair path.
    pub index_repair_latency: LatencyHistogram,
    /// Time the adaptive planner spent scoring its plan portfolio (pilot
    /// index builds + random-walk costing), recorded once per cache-miss
    /// build when adaptive planning is on.
    pub plan_score_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Bumps a counter.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Decrements a gauge (saturating at zero so a double-close can never
    /// wrap the reading to `u64::MAX`).
    #[inline]
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Renders the `STAT <key> <value>` payload lines of the `STATS`
    /// response (sorted, stable keys).
    pub fn render(&self, extra: &[(&str, u64)]) -> Vec<String> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut rows: Vec<(String, u64)> = vec![
            ("requests_total".into(), g(&self.requests)),
            ("match_requests".into(), g(&self.match_requests)),
            ("load_requests".into(), g(&self.load_requests)),
            ("rejected_busy".into(), g(&self.rejected_busy)),
            ("deadline_exceeded".into(), g(&self.deadline_exceeded)),
            ("errors".into(), g(&self.errors)),
            ("cache_hits".into(), g(&self.cache_hits)),
            ("cache_misses".into(), g(&self.cache_misses)),
            ("cache_evictions".into(), g(&self.cache_evictions)),
            ("cache_collisions".into(), g(&self.cache_collisions)),
            ("worker_drops".into(), g(&self.worker_drops)),
            ("panics_caught".into(), g(&self.panics_caught)),
            ("cache_quarantined".into(), g(&self.cache_quarantined)),
            ("quarantine_hits".into(), g(&self.quarantine_hits)),
            ("chaos_injected".into(), g(&self.chaos_injected)),
            ("embeddings_returned".into(), g(&self.embeddings_returned)),
            ("filter_rejected".into(), g(&self.filter_rejected)),
            (
                "cache_singleflight_waits".into(),
                g(&self.singleflight_waits),
            ),
            (
                "batch_frontier_builds".into(),
                g(&self.batch_frontier_builds),
            ),
            ("batch_frontier_hits".into(), g(&self.batch_frontier_hits)),
            ("mutation_batches".into(), g(&self.mutation_batches)),
            ("edges_added".into(), g(&self.edges_added)),
            ("edges_deleted".into(), g(&self.edges_deleted)),
            ("compactions".into(), g(&self.compactions)),
            ("index_repairs".into(), g(&self.index_repairs)),
            (
                "index_repair_fallbacks".into(),
                g(&self.index_repair_fallbacks),
            ),
            ("continuous_events".into(), g(&self.continuous_events)),
            ("adaptive_replans".into(), g(&self.adaptive_replans)),
            ("approx_answers".into(), g(&self.approx_answers)),
            ("infeasible_rejects".into(), g(&self.infeasible_rejects)),
            ("io_timeouts".into(), g(&self.timeouts)),
            ("connections_accepted".into(), g(&self.connections_accepted)),
            ("connections_rejected".into(), g(&self.connections_rejected)),
            ("connections_open".into(), g(&self.connections_open)),
            ("event_push_failures".into(), g(&self.event_push_failures)),
            (
                "slow_reader_disconnects".into(),
                g(&self.slow_reader_disconnects),
            ),
            ("plan_score_count".into(), self.plan_score_latency.count()),
            (
                "plan_score_mean_us".into(),
                self.plan_score_latency.mean_us(),
            ),
            (
                "plan_score_p99_us".into(),
                self.plan_score_latency.quantile_us(0.99),
            ),
            (
                "index_repair_count".into(),
                self.index_repair_latency.count(),
            ),
            (
                "index_repair_mean_us".into(),
                self.index_repair_latency.mean_us(),
            ),
            (
                "index_repair_p99_us".into(),
                self.index_repair_latency.quantile_us(0.99),
            ),
            ("match_latency_count".into(), self.match_latency.count()),
            ("match_latency_mean_us".into(), self.match_latency.mean_us()),
            (
                "match_latency_p50_us".into(),
                self.match_latency.quantile_us(0.50),
            ),
            (
                "match_latency_p99_us".into(),
                self.match_latency.quantile_us(0.99),
            ),
            ("build_latency_count".into(), self.build_latency.count()),
            ("build_latency_mean_us".into(), self.build_latency.mean_us()),
            (
                "build_latency_p50_us".into(),
                self.build_latency.quantile_us(0.50),
            ),
            (
                "build_latency_p99_us".into(),
                self.build_latency.quantile_us(0.99),
            ),
            (
                "build_filter_mean_us".into(),
                self.build_filter_latency.mean_us(),
            ),
            (
                "build_filter_p99_us".into(),
                self.build_filter_latency.quantile_us(0.99),
            ),
            (
                "build_refine_mean_us".into(),
                self.build_refine_latency.mean_us(),
            ),
            (
                "build_refine_p99_us".into(),
                self.build_refine_latency.quantile_us(0.99),
            ),
        ];
        for &(k, v) in extra {
            rows.push((k.to_string(), v));
        }
        rows.sort();
        rows.into_iter()
            .map(|(k, v)| format!("STAT {k} {v}"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_ranks() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0);
        // p50 rank 4 is the first 100 µs sample: bucket [64, 128) with 3
        // samples, midpoint-interpolated at (4-3-0.5)/3 → 64 + 64/6 ≈ 75.
        assert_eq!(h.quantile_us(0.50), 75);
        // p99 rank 7 is the lone 10 ms outlier: bucket [8192, 16384)
        // midpoint → 12288.
        assert_eq!(h.quantile_us(0.99), 12288);
        // Quantiles are monotone.
        assert!(h.quantile_us(0.99) >= h.quantile_us(0.50));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        // Bucket 0 is [0, 2): a zero-only histogram reports the midpoint
        // 1 µs, not the old upper bound 2 µs.
        assert_eq!(h.quantile_us(1.0), 1);
        let (cum, sum, count) = h.cumulative_us();
        assert_eq!(cum[0], (2, 1));
        assert_eq!(sum, 0);
        assert_eq!(count, 1);
    }

    #[test]
    fn bucket_boundaries_exhaustive() {
        // Bucket 0 is [0, 2).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Every power-of-two boundary below the cap: 2^k−1 stays in bucket
        // k−1, 2^k opens bucket k, 2^k+1 stays there.
        for k in 1..(BUCKETS - 1) {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p - 1), k - 1, "2^{k}-1");
            assert_eq!(bucket_index(p), k, "2^{k}");
            assert_eq!(bucket_index(p + 1), k, "2^{k}+1");
        }
        // Everything from 2^(BUCKETS-1) up saturates into the last bucket.
        let top = 1u64 << (BUCKETS - 1);
        assert_eq!(bucket_index(top - 1), BUCKETS - 2);
        assert_eq!(bucket_index(top), BUCKETS - 1);
        assert_eq!(bucket_index(top + 1), BUCKETS - 1);
        for k in BUCKETS..64 {
            assert_eq!(bucket_index(1u64 << k), BUCKETS - 1, "2^{k}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Bucket ranges tile [0, ∞): high(i) == low(i+1), starting at 0.
        assert_eq!(bucket_low(0), 0);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_high(i), bucket_low(i + 1));
        }
    }

    #[test]
    fn quantile_interpolation_is_consistent() {
        // 100 observations of exactly 100 µs: every quantile lands inside
        // bucket [64, 128) and interpolation is monotone in q.
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        let p50 = h.quantile_us(0.50);
        let p90 = h.quantile_us(0.90);
        let p99 = h.quantile_us(0.99);
        assert!((64..128).contains(&p50));
        assert!((64..128).contains(&p99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // u64::MAX µs is recorded (saturating cast) into the open bucket
        // and reported at the cap rather than panicking or wrapping.
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(u64::MAX));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(1.0) >= 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn cumulative_is_monotone_and_totals() {
        let h = LatencyHistogram::default();
        for us in [0u64, 1, 3, 900, 1 << 45] {
            h.record(Duration::from_micros(us));
        }
        let (cum, sum, count) = h.cumulative_us();
        assert_eq!(cum.len(), BUCKETS);
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, count);
        assert_eq!(count, 5);
        // Recorded values: 0, 1, 3, 900, 1<<45.
        assert_eq!(sum, 1 + 3 + 900 + (1u64 << 45));
    }

    #[test]
    fn render_is_sorted_and_prefixed() {
        let m = ServerMetrics::default();
        ServerMetrics::inc(&m.requests);
        ServerMetrics::add(&m.embeddings_returned, 5);
        let rows = m.render(&[("graphs_loaded", 2)]);
        assert!(rows.iter().all(|r| r.starts_with("STAT ")));
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
        assert!(rows.iter().any(|r| r == "STAT requests_total 1"));
        assert!(rows.iter().any(|r| r == "STAT embeddings_returned 5"));
        assert!(rows.iter().any(|r| r == "STAT graphs_loaded 2"));
    }
}
