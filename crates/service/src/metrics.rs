//! Server metrics: request/cache/rejection counters and a lock-free latency
//! histogram with percentile readout.
//!
//! Everything is atomics so the data plane never takes a lock to record; the
//! `STATS` command reads a consistent-enough snapshot (counters are
//! monotone; exactness across counters is not required for operations).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts requests with
/// latency in `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended.
/// 2^39 µs ≈ 6.4 days, far beyond any request.
const BUCKETS: usize = 40;

/// A fixed power-of-two histogram over microseconds. Recording is one atomic
/// increment; percentiles are estimated as the upper bound of the bucket
/// containing the requested rank (≤ 2× error, plenty for p50/p99 smoke
/// numbers surfaced via `STATS`).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Upper-bound estimate of the `q`-quantile in microseconds (`q` in
    /// 0..=1). Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1); // upper bound of bucket i
            }
        }
        1u64 << BUCKETS
    }
}

/// Aggregate server counters, surfaced via `STATS`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Total request lines accepted (parse successes).
    pub requests: AtomicU64,
    /// MATCH requests admitted (entered the pool).
    pub match_requests: AtomicU64,
    /// LOAD requests served.
    pub load_requests: AtomicU64,
    /// Requests rejected with `BUSY` by admission control.
    pub rejected_busy: AtomicU64,
    /// MATCH requests that hit their deadline (partial result returned).
    pub deadline_exceeded: AtomicU64,
    /// Requests answered with `ERR`.
    pub errors: AtomicU64,
    /// Index-cache hits (frozen CECI reused; build skipped).
    pub cache_hits: AtomicU64,
    /// Index-cache misses (CECI built).
    pub cache_misses: AtomicU64,
    /// Cache entries evicted under the byte budget.
    pub cache_evictions: AtomicU64,
    /// Canonical-hash collisions detected by form verification (the entry
    /// was *not* reused).
    pub cache_collisions: AtomicU64,
    /// Data-plane jobs that dropped their response channel (the worker
    /// panicked mid-request); the client got `ERR E_WORKER_DROPPED`.
    pub worker_drops: AtomicU64,
    /// Job panics caught by the pool's worker supervisors.
    pub panics_caught: AtomicU64,
    /// Index builds that panicked and whose cache key was quarantined.
    pub cache_quarantined: AtomicU64,
    /// Requests refused because their cache key is quarantined.
    pub quarantine_hits: AtomicU64,
    /// CHAOS commands executed (only counts when chaos mode is enabled).
    pub chaos_injected: AtomicU64,
    /// Total embeddings returned across MATCH responses.
    pub embeddings_returned: AtomicU64,
    /// End-to-end MATCH latency (admission to response).
    pub match_latency: LatencyHistogram,
    /// CECI build time on cache misses.
    pub build_latency: LatencyHistogram,
    /// BFS-filter phase time within cache-miss builds (Algorithm 1).
    pub build_filter_latency: LatencyHistogram,
    /// Reverse-BFS refinement phase time within cache-miss builds
    /// (Algorithm 2).
    pub build_refine_latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Bumps a counter.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Renders the `STAT <key> <value>` payload lines of the `STATS`
    /// response (sorted, stable keys).
    pub fn render(&self, extra: &[(&str, u64)]) -> Vec<String> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut rows: Vec<(String, u64)> = vec![
            ("requests_total".into(), g(&self.requests)),
            ("match_requests".into(), g(&self.match_requests)),
            ("load_requests".into(), g(&self.load_requests)),
            ("rejected_busy".into(), g(&self.rejected_busy)),
            ("deadline_exceeded".into(), g(&self.deadline_exceeded)),
            ("errors".into(), g(&self.errors)),
            ("cache_hits".into(), g(&self.cache_hits)),
            ("cache_misses".into(), g(&self.cache_misses)),
            ("cache_evictions".into(), g(&self.cache_evictions)),
            ("cache_collisions".into(), g(&self.cache_collisions)),
            ("worker_drops".into(), g(&self.worker_drops)),
            ("panics_caught".into(), g(&self.panics_caught)),
            ("cache_quarantined".into(), g(&self.cache_quarantined)),
            ("quarantine_hits".into(), g(&self.quarantine_hits)),
            ("chaos_injected".into(), g(&self.chaos_injected)),
            ("embeddings_returned".into(), g(&self.embeddings_returned)),
            ("match_latency_count".into(), self.match_latency.count()),
            ("match_latency_mean_us".into(), self.match_latency.mean_us()),
            (
                "match_latency_p50_us".into(),
                self.match_latency.quantile_us(0.50),
            ),
            (
                "match_latency_p99_us".into(),
                self.match_latency.quantile_us(0.99),
            ),
            ("build_latency_count".into(), self.build_latency.count()),
            ("build_latency_mean_us".into(), self.build_latency.mean_us()),
            (
                "build_latency_p50_us".into(),
                self.build_latency.quantile_us(0.50),
            ),
            (
                "build_latency_p99_us".into(),
                self.build_latency.quantile_us(0.99),
            ),
            (
                "build_filter_mean_us".into(),
                self.build_filter_latency.mean_us(),
            ),
            (
                "build_filter_p99_us".into(),
                self.build_filter_latency.quantile_us(0.99),
            ),
            (
                "build_refine_mean_us".into(),
                self.build_refine_latency.mean_us(),
            ),
            (
                "build_refine_p99_us".into(),
                self.build_refine_latency.quantile_us(0.99),
            ),
        ];
        for &(k, v) in extra {
            rows.push((k.to_string(), v));
        }
        rows.sort();
        rows.into_iter()
            .map(|(k, v)| format!("STAT {k} {v}"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_ranks() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert!(h.mean_us() > 0);
        // p50 falls in the 100 µs region → bucket [64, 128) → bound 128.
        assert_eq!(h.quantile_us(0.50), 128);
        // p99 is the 10 ms outlier → bucket [8192, 16384) → bound 16384.
        assert_eq!(h.quantile_us(0.99), 16384);
        // Quantiles are monotone.
        assert!(h.quantile_us(0.99) >= h.quantile_us(0.50));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
    }

    #[test]
    fn zero_latency_lands_in_first_bucket() {
        let h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 2);
    }

    #[test]
    fn render_is_sorted_and_prefixed() {
        let m = ServerMetrics::default();
        ServerMetrics::inc(&m.requests);
        ServerMetrics::add(&m.embeddings_returned, 5);
        let rows = m.render(&[("graphs_loaded", 2)]);
        assert!(rows.iter().all(|r| r.starts_with("STAT ")));
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted);
        assert!(rows.iter().any(|r| r == "STAT requests_total 1"));
        assert!(rows.iter().any(|r| r == "STAT embeddings_returned 5"));
        assert!(rows.iter().any(|r| r == "STAT graphs_loaded 2"));
    }
}
