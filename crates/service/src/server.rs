//! The `ceci-serve` server proper: accept loop, connection handling, and
//! request execution against the registry / index cache / worker pool.
//!
//! ## Threading model
//!
//! * By default ([`ServeConfig::event_loop`]) a single epoll readiness loop
//!   (`crate::event_loop`) owns every connection as a buffered state
//!   machine, so 10k+ mostly-idle connections cost file descriptors, not
//!   threads. `--no-event-loop` falls back to the original
//!   thread-per-connection model (one accept thread, one blocking thread
//!   per connection).
//! * The **control plane** (`LOAD`, `STATS`, `PING`, `QUIT`) runs inline —
//!   on the loop thread (event mode) or the connection thread (threaded
//!   mode): these are cheap or operator-driven and must stay responsive
//!   even when the data plane is saturated.
//! * The **data plane** (`MATCH`, `EXPLAIN`, `SLEEP`) is submitted to the
//!   bounded [`WorkerPool`]; a full queue answers `BUSY` immediately
//!   (admission control), and each connection has at most one request in
//!   flight — responses stay in request order in both modes, and MATCH
//!   counts are bit-identical between them.
//!
//! ## Deadlines
//!
//! `MATCH ... DEADLINE <ms>` arms a [`CancelToken`] when the job *starts
//! executing* (queue wait does not consume the budget). The token is
//! checked around the index build and threaded into
//! [`enumerate_parallel_cancellable`], so enumeration unwinds cooperatively
//! and the response reports the partial count with
//! `status=DEADLINE_EXCEEDED`.
//!
//! ## Fault tolerance
//!
//! * A panicking data-plane job is caught at the pool boundary; the worker
//!   respawns, the waiting connection gets `ERR E_WORKER_DROPPED`, and the
//!   `panics_caught` / `worker_drops` counters record it.
//! * A panicking *index build* additionally quarantines its cache key (see
//!   [`index_for`]) so the same poisonous request fails fast afterwards.
//! * The `CHAOS` verb (enabled with [`ServeConfig::chaos`]) injects these
//!   failures on demand for testing.

use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ceci_core::{
    admit, batch_delta, count_embeddings, enumerate_from_frontier, enumerate_parallel_cancellable,
    enumerate_parallel_pinned, estimate_embeddings, explain_choice, explain_estimates,
    kernels_from_profile, ns_per_unit_from_profile, plan_with_options, AdaptiveOptions,
    Admission as DeadlineVerdict, CancelToken, Ceci, CountSink, EnumOptions, EstimateOptions,
    Kernel, ParallelOptions, PlanChoice, PrefixSpec, DEFAULT_NS_PER_UNIT,
};
use ceci_graph::io as graph_io;
use ceci_graph::{vid, Graph, VertexId};
use ceci_query::{
    admission_check, CanonicalQuery, OrderStrategy, PlanOptions, QueryGraph, QueryPlan,
};
use ceci_stream::StreamIndex;
use ceci_trace::{PromWriter, Tracer};

use crate::cache::{CachedIndex, FlightProbe, FlightWait, IndexCache, PlanFeedback, Probe};
use crate::coord::{self, CoordConfig, HeartbeatHandle, ShardLiveness, ShardSet};
use crate::event_loop::{lock_recover, ConnSink, EventLoop, LoopShared, SharedWriter, MAX_LINE};
use crate::metrics::ServerMetrics;
use crate::pool::{Admission, Completion, FrontierCache, FrontierOutcome, PoolHandle, WorkerPool};
use crate::protocol::{parse_request, ChaosCommand, ErrorCode, MatchStatus, Request};
use crate::registry::{ContinuousQuery, ContinuousRegistry, GraphEntry, GraphRegistry};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Data-plane pool threads.
    pub pool_workers: usize,
    /// Pending-job cap; beyond it requests bounce with `BUSY`.
    pub queue_cap: usize,
    /// Index-cache byte budget (0 disables caching).
    pub cache_budget_bytes: usize,
    /// Enumeration threads per MATCH when the request doesn't say.
    pub default_match_workers: usize,
    /// Hard cap on per-request `WORKERS`.
    pub max_match_workers: usize,
    /// BFS-filter worker threads per cache-miss index build (any value
    /// yields a bit-identical index; see `ceci_core::BuildOptions`).
    pub build_threads: usize,
    /// Enable the `CHAOS` fault-injection verb. Off by default; without it
    /// `CHAOS` answers `ERR E_CHAOS_DISABLED` and injects nothing.
    pub chaos: bool,
    /// Record `service.request` span timelines (queue wait → cache probe →
    /// build → enumerate → serialize) into [`ServerState::tracer`]. Off by
    /// default: the span store grows with request count, which is fine for
    /// tests and bounded benchmark runs but not for an unattended server.
    pub trace: bool,
    /// Label-pair admission filter: answer provably-zero MATCHes with
    /// `count=0` before any cache probe or index build (`MATCH ... RAW`
    /// bypasses it per request).
    pub admission_filter: bool,
    /// Dedupe concurrent cache misses on the same `(epoch, canonical)` key
    /// into one build with N−1 waiters ([`IndexCache::begin`]).
    pub single_flight: bool,
    /// Shared-prefix batched execution: count-only single-threaded MATCHes
    /// whose plans share a matching-order prefix shape reuse one cached
    /// candidate frontier instead of re-scanning the prefix per query.
    pub batching: bool,
    /// Redundant-extension elimination at the enumeration leaf (CEMR-style
    /// sibling-subtree reuse; bit-identical counts, fewer intersections).
    pub prune_redundant: bool,
    /// Matching-order prefix length the batch scheduler groups on. Queries
    /// shorter than `depth + 1` simply run unbatched.
    pub batch_prefix_depth: usize,
    /// Published shared frontiers kept by the [`FrontierCache`] (FIFO
    /// eviction beyond this).
    pub frontier_cache_entries: usize,
    /// Net overlay mutations that trigger compaction of a streamed graph's
    /// delta overlay into a fresh base CSR (with an exact label-pair index
    /// rebuild).
    pub compact_threshold: usize,
    /// Applied mutation batches whose dirty endpoints are retained per
    /// graph; stale indexes older than the log fall back to a rebuild.
    pub dirty_log_cap: usize,
    /// Keep the maintainable stream tables alongside cached indexes so
    /// stale entries are *repaired* from the dirty log instead of rebuilt.
    pub stream_repair: bool,
    /// Cost-model-driven adaptive execution: cache-miss builds score a
    /// plan portfolio (order × root) over a pilot index and pick the
    /// cheapest, the winning estimate chooses the parallel strategy and
    /// worker count, observed depth profiles pin per-depth intersection
    /// kernels on repeat queries, and `MATCH ... DEADLINE` degrades to an
    /// APPROX answer (or `E_INFEASIBLE`) when the exact run cannot finish
    /// in time. Exact counts are bit-identical to fixed-BFS planning.
    pub adaptive: bool,
    /// Per-connection socket read/write timeout in milliseconds (0 = off).
    /// A half-open or stalled peer gets `ERR E_TIMEOUT` and its connection
    /// closed instead of pinning a connection thread forever. Connections
    /// holding continuous-query registrations are exempt while idle (they
    /// legitimately sit waiting for pushed events).
    pub io_timeout_ms: u64,
    /// Shard addresses (coordinator mode when non-empty): plain count-only
    /// `MATCH`es scatter their pivots across these `ceci-shard` processes.
    pub shards: Vec<String>,
    /// Coordinator-side RPC read/write timeout per shard call, ms.
    pub shard_io_timeout_ms: u64,
    /// Coordinator-side TCP connect timeout per shard dial, ms.
    pub shard_connect_timeout_ms: u64,
    /// Consecutive failed shard RPC attempts before the shard is declared
    /// dead and its pivots re-scattered to survivors.
    pub shard_retries: u32,
    /// Cadence at which a dead shard's driver retries rejoining, ms.
    pub shard_rejoin_ms: u64,
    /// Shard heartbeat (PING) interval, ms (0 = no heartbeat thread).
    pub shard_heartbeat_ms: u64,
    /// Serve connections from a single epoll readiness loop instead of one
    /// thread per connection (the default). The threaded fallback
    /// (`--no-event-loop`) keeps identical protocol semantics; MATCH counts
    /// are bit-identical between the two.
    pub event_loop: bool,
    /// Concurrent-connection cap; accepts beyond it are refused with
    /// `BUSY` instead of queueing unserviced sockets.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            pool_workers: 2,
            queue_cap: 64,
            cache_budget_bytes: 64 << 20,
            default_match_workers: 1,
            max_match_workers: 8,
            build_threads: 1,
            chaos: false,
            trace: false,
            admission_filter: true,
            single_flight: true,
            batching: true,
            prune_redundant: true,
            batch_prefix_depth: 2,
            frontier_cache_entries: 32,
            compact_threshold: 32_768,
            dirty_log_cap: 64,
            stream_repair: true,
            adaptive: true,
            io_timeout_ms: 30_000,
            shards: Vec::new(),
            shard_io_timeout_ms: 5_000,
            shard_connect_timeout_ms: 1_000,
            shard_retries: 3,
            shard_rejoin_ms: 200,
            shard_heartbeat_ms: 1_000,
            event_loop: true,
            max_conns: 10_000,
        }
    }
}

/// Shared server state: everything a connection (or pool job) needs.
pub struct ServerState {
    /// Named loaded graphs.
    pub registry: GraphRegistry,
    /// Frozen-index cache.
    pub cache: IndexCache,
    /// Aggregate counters + latency histograms.
    pub metrics: ServerMetrics,
    /// `service.request` span store (recording only when
    /// [`ServeConfig::trace`] is set; always safe to snapshot).
    pub tracer: Tracer,
    /// Shared-prefix frontiers for the batch scheduler (epoch-scoped,
    /// single-flight like the index cache).
    pub frontiers: FrontierCache,
    config: ServeConfig,
    pub(crate) stopping: AtomicBool,
    /// One-shot flag armed by `CHAOS BUILDPANIC`: the next index build
    /// panics (and is caught, quarantining its cache key).
    build_panic_armed: AtomicBool,
    /// One-shot delay armed by `CHAOS BUILDDELAY <ms>`: the next index
    /// build sleeps first, widening the single-flight window so tests can
    /// deterministically pile waiters behind one leader.
    build_delay_ms: AtomicU64,
    /// Persistent stall armed by `CHAOS STALL <ms>`: every data-plane job
    /// sleeps this long before running (0 disarms). The process-level
    /// slow-server lever, mirroring the shard's.
    pub(crate) chaos_stall_ms: AtomicU64,
    /// Continuous-query registrations by handle.
    pub(crate) continuous: ContinuousRegistry,
    /// Shard table (coordinator mode); `None` without configured shards.
    shards: Option<Arc<ShardSet>>,
}

impl ServerState {
    /// Builds fresh state from a config.
    pub fn new(config: ServeConfig) -> Self {
        let tracer = Tracer::new();
        tracer.set_enabled(config.trace);
        let shards = (!config.shards.is_empty()).then(|| Arc::new(ShardSet::new(&config.shards)));
        ServerState {
            registry: GraphRegistry::new(),
            cache: IndexCache::new(config.cache_budget_bytes),
            metrics: ServerMetrics::default(),
            tracer,
            frontiers: FrontierCache::new(config.frontier_cache_entries),
            config,
            stopping: AtomicBool::new(false),
            build_panic_armed: AtomicBool::new(false),
            build_delay_ms: AtomicU64::new(0),
            chaos_stall_ms: AtomicU64::new(0),
            continuous: ContinuousRegistry::default(),
            shards,
        }
    }

    /// The config the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shard table when running as a coordinator.
    pub fn shards(&self) -> Option<&Arc<ShardSet>> {
        self.shards.as_ref()
    }

    /// Coordinator tunables derived from the serve config.
    pub fn coord_config(&self) -> CoordConfig {
        CoordConfig {
            io_timeout: Duration::from_millis(self.config.shard_io_timeout_ms.max(1)),
            connect_timeout: Duration::from_millis(self.config.shard_connect_timeout_ms.max(1)),
            retry: crate::client::RetryPolicy::default(),
            attempt_budget: self.config.shard_retries,
            rejoin_interval: Duration::from_millis(self.config.shard_rejoin_ms.max(1)),
            ..CoordConfig::default()
        }
    }

    /// `true` when `writer` is the event sink of a live continuous-query
    /// registration — such a connection legitimately idles between pushed
    /// events and is exempt from the idle read timeout.
    fn writer_has_registration(&self, writer: &SharedWriter) -> bool {
        self.continuous.has_sink(writer)
    }

    /// Number of live continuous-query registrations.
    pub fn continuous_len(&self) -> usize {
        self.continuous.len()
    }
}

/// What [`ServerHandle::shutdown`] actually managed to stop. Callers that
/// ignore it keep working; tests and supervisors assert on it — a `false`
/// is reported instead of hanging forever or silently leaking the thread.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// The accept/event-loop thread observed the stop signal and joined
    /// within the shutdown deadline.
    pub accept_joined: bool,
    /// The shard heartbeat thread (when one was running) joined within the
    /// deadline (`true` when no heartbeat was configured).
    pub heartbeat_joined: bool,
}

impl ShutdownReport {
    /// Every owned thread joined.
    pub fn clean(&self) -> bool {
        self.accept_joined && self.heartbeat_joined
    }
}

/// How long [`ServerHandle::shutdown`] waits for owned threads to join
/// before reporting failure instead of blocking forever.
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(5);

/// Joins a thread with a deadline by polling `is_finished` (std has no
/// timed join); `false` means the thread is still running and was leaked.
fn join_with_deadline(handle: JoinHandle<()>, deadline: Duration) -> bool {
    let start = Instant::now();
    while !handle.is_finished() {
        if start.elapsed() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.join().is_ok()
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    /// Event-loop wakeup (event mode only): shutdown writes the eventfd.
    loop_shared: Option<Arc<LoopShared>>,
    /// Cloned listener handle (threaded mode only): shutdown flips it
    /// nonblocking and self-connects to unblock a parked `accept`.
    listener: Option<TcpListener>,
    heartbeat: Option<HeartbeatHandle>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state — the integration tests and the in-process load
    /// generator read metrics and preload graphs through this.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting connections, drains the pool, and joins the owned
    /// threads (event/accept loop, shard heartbeat) with a deadline.
    /// Already-open threaded connections are serviced until their clients
    /// disconnect; event-loop connections are closed with the loop.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.state.stopping.store(true, Ordering::SeqCst);
        if let Some(shared) = &self.loop_shared {
            // Event mode: the eventfd interrupts epoll_wait directly — no
            // connect dance, nothing that can silently fail.
            shared.wake();
        }
        if let Some(listener) = self.listener.take() {
            // Threaded fallback: future accepts return WouldBlock (the loop
            // re-checks `stopping`), and a self-connect unblocks the accept
            // already parked. The connect is checked and retried — a failed
            // wakeup surfaces as accept_joined=false instead of hanging.
            let _ = listener.set_nonblocking(true);
            for _ in 0..3 {
                if TcpStream::connect_timeout(&self.addr, Duration::from_millis(200)).is_ok() {
                    break;
                }
            }
        }
        let accept_joined = match self.accept_thread.take() {
            Some(h) => join_with_deadline(h, SHUTDOWN_DEADLINE),
            None => true,
        };
        let heartbeat_joined = match self.heartbeat.take() {
            Some(hb) => hb.stop(SHUTDOWN_DEADLINE),
            None => true,
        };
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        ShutdownReport {
            accept_joined,
            heartbeat_joined,
        }
    }
}

/// Binds and starts serving; returns once the listener is live.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    start_with_state(Arc::new(ServerState::new(config)))
}

/// Starts serving over pre-built state (lets callers preload graphs before
/// the first connection).
pub fn start_with_state(state: Arc<ServerState>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&state.config.addr)?;
    let addr = listener.local_addr()?;
    // Every caught pool panic bumps the server metric so STATS shows it.
    let hook_state = Arc::clone(&state);
    let pool = WorkerPool::with_panic_hook(
        state.config.pool_workers,
        state.config.queue_cap,
        Some(Arc::new(move || {
            ServerMetrics::inc(&hook_state.metrics.panics_caught);
        })),
    )?;
    let pool_handle = pool.handle();
    let (accept_thread, loop_shared, listener_handle) = if state.config.event_loop {
        // Build the loop here so epoll/eventfd setup errors surface to the
        // caller, then hand it to its thread.
        let (event_loop, shared) = match EventLoop::new(listener, Arc::clone(&state), pool_handle) {
            Ok(built) => built,
            Err(e) => {
                pool.shutdown();
                return Err(e);
            }
        };
        match std::thread::Builder::new()
            .name("ceci-loop".to_string())
            .spawn(move || event_loop.run())
        {
            Ok(handle) => (handle, Some(shared), None),
            Err(e) => {
                pool.shutdown();
                return Err(e);
            }
        }
    } else {
        // Threaded fallback: keep a cloned listener handle so shutdown can
        // flip it nonblocking (try_clone failure just loses that lever).
        let fallback = listener.try_clone().ok();
        let accept_state = Arc::clone(&state);
        match std::thread::Builder::new()
            .name("ceci-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state, &pool_handle))
        {
            Ok(handle) => (handle, None, fallback),
            Err(e) => {
                pool.shutdown();
                return Err(e);
            }
        }
    };
    // Coordinator heartbeat: PING every shard on a cadence so STATS shows
    // per-shard liveness even between queries. The handle is kept and
    // joined (with a deadline) on shutdown; a spawn failure degrades to
    // no heartbeat rather than failing the server.
    let heartbeat = match (&state.shards, state.config.shard_heartbeat_ms) {
        (Some(shards), ms) if ms > 0 => coord::spawn_heartbeat(
            Arc::clone(shards),
            state.coord_config(),
            Duration::from_millis(ms),
        )
        .ok(),
        _ => None,
    };
    Ok(ServerHandle {
        addr,
        state,
        accept_thread: Some(accept_thread),
        pool: Some(pool),
        loop_shared,
        listener: listener_handle,
        heartbeat,
    })
}

/// The threaded-fallback accept loop. Handles `WouldBlock` (shutdown flips
/// the listener nonblocking) by re-checking the stop flag, and enforces
/// [`ServeConfig::max_conns`] against the open-connection gauge.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, pool: &PoolHandle) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                let open = state.metrics.connections_open.load(Ordering::Relaxed);
                if open as usize >= state.config.max_conns {
                    ServerMetrics::inc(&state.metrics.connections_rejected);
                    use std::io::Write;
                    let _ = stream.write_all(b"BUSY\n");
                    continue;
                }
                ServerMetrics::inc(&state.metrics.connections_accepted);
                ServerMetrics::inc(&state.metrics.connections_open);
                let conn_state = Arc::clone(state);
                let pool = pool.clone();
                let spawned = std::thread::Builder::new()
                    .name("ceci-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, &conn_state, &pool);
                        ServerMetrics::dec(&conn_state.metrics.connections_open);
                    });
                if spawned.is_err() {
                    ServerMetrics::dec(&state.metrics.connections_open);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                if state.stopping.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Is this IO error a socket read/write timeout (`TimedOut` on most
/// platforms, `WouldBlock` on some)?
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

fn serve_connection(
    stream: TcpStream,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    if state.config.io_timeout_ms > 0 {
        let t = Some(Duration::from_millis(state.config.io_timeout_ms));
        stream.set_read_timeout(t)?;
        stream.set_write_timeout(t)?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer: SharedWriter = ConnSink::direct(stream);
    loop {
        let mut buf = String::new();
        // Cap the line length: an unterminated flood is a protocol
        // violation, not a request worth buffering without bound.
        match (&mut reader).take(MAX_LINE as u64 + 1).read_line(&mut buf) {
            Ok(0) => return Ok(()),
            Ok(_) if buf.len() > MAX_LINE && !buf.ends_with('\n') => {
                ServerMetrics::inc(&state.metrics.errors);
                let _ = respond(
                    &writer,
                    &[ErrorCode::Parse
                        .line(format!("request line exceeds {MAX_LINE} bytes; closing"))],
                );
                return Ok(());
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes on the wire: a typed parse error, not a
                // dropped connection (read_line consumed through the
                // newline, so the stream stays line-synchronized).
                ServerMetrics::inc(&state.metrics.errors);
                respond(
                    &writer,
                    &[ErrorCode::Parse.line("request line is not valid UTF-8")],
                )?;
                continue;
            }
            Err(e) if is_timeout(&e) => {
                // An idle connection that REGISTERed a continuous query is
                // legitimately waiting for pushed events: keep it open as
                // long as nothing was half-read. Anything else — a partial
                // line (stalled peer mid-request) or plain idleness — gets
                // a typed timeout and the thread back.
                if buf.is_empty() && state.writer_has_registration(&writer) {
                    continue;
                }
                ServerMetrics::inc(&state.metrics.timeouts);
                let _ = respond(
                    &writer,
                    &[ErrorCode::Timeout.line(format!(
                        "no complete request within {}ms; closing connection",
                        state.config.io_timeout_ms
                    ))],
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let line = buf.trim_end_matches(['\r', '\n']);
        let request = match parse_request(line) {
            Ok(None) => continue,
            Ok(Some(r)) => r,
            Err(e) => {
                ServerMetrics::inc(&state.metrics.errors);
                respond(&writer, &[ErrorCode::Parse.line(e)])?;
                continue;
            }
        };
        ServerMetrics::inc(&state.metrics.requests);
        let quit = matches!(request, Request::Quit);
        let lines = dispatch(request, state, pool, &writer);
        respond(&writer, &lines)?;
        if quit {
            return Ok(());
        }
    }
}

/// Writes one whole response (or event) atomically so concurrent `EVENT`
/// pushes never interleave inside it.
fn respond(writer: &SharedWriter, lines: &[String]) -> std::io::Result<()> {
    writer.write_lines(lines)
}

/// A routed data-plane job: runs on a pool worker with the shared state and
/// the measured queue wait, returns the response lines.
pub(crate) type DataJob = Box<dyn FnOnce(&Arc<ServerState>, Duration) -> Vec<String> + Send>;

/// Where a request executes: inline on the calling thread (control plane)
/// or on the worker pool (data plane). Both serving modes share this
/// routing, which is what keeps their semantics identical.
pub(crate) enum Routed {
    /// Already-computed response lines.
    Inline(Vec<String>),
    /// A job for the bounded pool (admission control applies).
    Data(DataJob),
}

/// Routes a request: control plane executes inline and returns its lines,
/// data plane becomes a pool job. `writer` is this connection's response
/// sink; `REGISTER` captures it so later mutation batches can push
/// `EVENT DELTA` lines back here.
pub(crate) fn route(request: Request, state: &Arc<ServerState>, writer: &SharedWriter) -> Routed {
    match request {
        Request::Ping => Routed::Inline(vec!["OK PONG".to_string()]),
        Request::Quit => Routed::Inline(vec!["OK BYE".to_string()]),
        Request::Stats { prom } => Routed::Inline(exec_stats(state, prom)),
        Request::Load {
            name,
            path,
            edge_list,
            directed,
        } => Routed::Inline(exec_load(state, &name, &path, edge_list, directed)),
        Request::Chaos { command } => route_chaos(command, state),
        Request::Prepare { .. } | Request::Exec { .. } => {
            ServerMetrics::inc(&state.metrics.errors);
            Routed::Inline(vec![ErrorCode::Shard.line(
                "this is a ceci-serve query daemon; PREPARE/EXEC are served by ceci-shard",
            )])
        }
        data_plane => {
            let sink = Arc::clone(writer);
            Routed::Data(Box::new(move |job_state, queue_wait| match data_plane {
                Request::Match {
                    graph,
                    query_path,
                    limit,
                    deadline_ms,
                    workers,
                    raw,
                    exact,
                } => exec_match(
                    job_state,
                    &graph,
                    &query_path,
                    limit,
                    deadline_ms,
                    workers,
                    raw,
                    exact,
                    queue_wait,
                ),
                Request::Estimate {
                    graph,
                    query_path,
                    walks,
                } => exec_estimate(job_state, &graph, &query_path, walks),
                Request::Explain {
                    graph,
                    query_path,
                    analyze,
                } => exec_explain(job_state, &graph, &query_path, analyze),
                Request::Mutate { graph, adds, dels } => {
                    exec_mutate(job_state, &graph, &adds, &dels)
                }
                Request::BatchFile { graph, path } => exec_batch_file(job_state, &graph, &path),
                Request::Register {
                    name,
                    graph,
                    query_path,
                } => exec_register(job_state, &name, &graph, &query_path, sink),
                Request::Unregister { name } => exec_unregister(job_state, &name),
                Request::Sleep { ms } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    vec![format!("OK SLEPT {ms}")]
                }
                _ => unreachable!("control-plane request reached the pool"),
            }))
        }
    }
}

/// Threaded-mode dispatch: route, then run data-plane jobs synchronously
/// through the pool (the connection thread blocks on the response).
fn dispatch(
    request: Request,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    writer: &SharedWriter,
) -> Vec<String> {
    match route(request, state, writer) {
        Routed::Inline(lines) => lines,
        Routed::Data(job) => submit_to_pool(state, pool, job),
    }
}

/// Submits a data-plane job and waits for its response. A worker that
/// panics mid-job fires the [`Completion`] panic path during unwind; the
/// supervisor respawns the worker and this side answers a *typed* error
/// instead of hanging or leaking a raw string.
///
/// The job closure receives the measured queue wait (admission to execution
/// start) so request handlers can attribute it in their `service.request`
/// span without re-deriving it.
fn submit_to_pool(state: &Arc<ServerState>, pool: &PoolHandle, run: DataJob) -> Vec<String> {
    let (tx, rx) = mpsc::channel::<Vec<String>>();
    let job_state = Arc::clone(state);
    let panic_state = Arc::clone(state);
    let panic_tx = tx.clone();
    let submitted = Instant::now();
    let admitted = pool.submit(Box::new(move || {
        // Armed only once the job runs: a rejected submission drops this
        // closure un-run and must not fire the panic path.
        let completion = Completion::new(
            move |lines| {
                let _ = tx.send(lines);
            },
            move || {
                ServerMetrics::inc(&panic_state.metrics.worker_drops);
                ServerMetrics::inc(&panic_state.metrics.errors);
                let _ = panic_tx.send(vec![ErrorCode::WorkerDropped
                    .line("worker panicked while handling this request (worker respawned)")]);
            },
        );
        let queue_wait = submitted.elapsed();
        // `CHAOS STALL` slows every data-plane job (0 = disarmed).
        let stall = job_state.chaos_stall_ms.load(Ordering::SeqCst);
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        let lines = run(&job_state, queue_wait);
        completion.deliver(lines);
    }));
    match admitted {
        Admission::Rejected => {
            ServerMetrics::inc(&state.metrics.rejected_busy);
            vec!["BUSY".to_string()]
        }
        // The Completion guard guarantees a send on both the normal and
        // the unwind path; recv error is a structural backstop only.
        Admission::Accepted => rx.recv().unwrap_or_else(|_| {
            ServerMetrics::inc(&state.metrics.errors);
            vec![ErrorCode::WorkerDropped
                .line("worker dropped this request without responding (pool shutting down)")]
        }),
    }
}

/// Routes a `CHAOS` command (chaos mode only). `PANIC` and `DELAY` become
/// data-plane jobs so they exercise the same pool failure paths a panicking
/// `MATCH` would — in both serving modes.
fn route_chaos(command: ChaosCommand, state: &Arc<ServerState>) -> Routed {
    if !state.config.chaos {
        ServerMetrics::inc(&state.metrics.errors);
        return Routed::Inline(vec![ErrorCode::ChaosDisabled
            .line("start the server with --chaos to enable fault injection")]);
    }
    ServerMetrics::inc(&state.metrics.chaos_injected);
    match command {
        ChaosCommand::BuildPanic => {
            state.build_panic_armed.store(true, Ordering::SeqCst);
            Routed::Inline(vec!["OK CHAOS armed=BUILDPANIC".to_string()])
        }
        ChaosCommand::BuildDelay { ms } => {
            state.build_delay_ms.store(ms, Ordering::SeqCst);
            Routed::Inline(vec![format!("OK CHAOS armed=BUILDDELAY ms={ms}")])
        }
        ChaosCommand::Panic => Routed::Data(Box::new(|_, _| {
            panic!("injected CHAOS PANIC in pool worker")
        })),
        ChaosCommand::Delay { ms } => Routed::Data(Box::new(move |_, _| {
            std::thread::sleep(Duration::from_millis(ms));
            vec![format!("OK CHAOS delayed_ms={ms}")]
        })),
        ChaosCommand::Exit { after_ms } => {
            // Answer first (the spawned thread exits the whole process);
            // the deterministic stand-in for kill -9.
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(after_ms));
                std::process::exit(42);
            });
            Routed::Inline(vec![format!("OK CHAOS armed=EXIT after_ms={after_ms}")])
        }
        ChaosCommand::Stall { ms } => {
            state.chaos_stall_ms.store(ms, Ordering::SeqCst);
            Routed::Inline(vec![format!("OK CHAOS armed=STALL ms={ms}")])
        }
    }
}

fn exec_stats(state: &ServerState, prom: bool) -> Vec<String> {
    if prom {
        let mut lines: Vec<String> = render_prometheus(state)
            .lines()
            .map(str::to_string)
            .collect();
        lines.push("OK STATS".to_string());
        return lines;
    }
    let extra = [
        ("graphs_loaded", state.registry.len() as u64),
        ("cache_entries", state.cache.len() as u64),
        ("cache_bytes", state.cache.bytes() as u64),
        (
            "cache_quarantined_keys",
            state.cache.quarantined_len() as u64,
        ),
        ("trace_spans", state.tracer.len() as u64),
        ("frontier_entries", state.frontiers.len() as u64),
        ("continuous_registrations", state.continuous_len() as u64),
        (
            "shards_configured",
            state.shards.as_ref().map_or(0, |s| s.len()) as u64,
        ),
        (
            "shards_alive",
            state.shards.as_ref().map_or(0, |s| s.alive()) as u64,
        ),
    ];
    let mut lines = state.metrics.render(&extra);
    // Per-shard status lines (coordinator mode): one `SHARD` payload line
    // per configured shard, after the sorted STAT rows.
    if let Some(shards) = state.shards.as_ref() {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        for (i, s) in shards.shards.iter().enumerate() {
            let liveness = match s.liveness() {
                ShardLiveness::Unknown => "unknown",
                ShardLiveness::Alive => "alive",
                ShardLiveness::Dead => "dead",
            };
            lines.push(format!(
                "SHARD {i} addr={} state={liveness} reconnects={} rescatters={} \
                 executed={} commits_rejected={}",
                s.addr,
                g(&s.reconnects),
                g(&s.rescatters),
                g(&s.executed),
                g(&s.commits_rejected),
            ));
        }
    }
    lines.push("OK STATS".to_string());
    lines
}

/// Renders the full metric surface in Prometheus text-exposition format
/// 0.0.4 (the `STATS PROM` payload). The output always passes
/// [`ceci_trace::prom::validate`]; the integration tests hold it to that.
pub fn render_prometheus(state: &ServerState) -> String {
    let m = &state.metrics;
    let g = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let mut w = PromWriter::new();
    let counters: [(&str, &str, u64); 35] = [
        (
            "ceci_requests_total",
            "Request lines accepted (parse successes)",
            g(&m.requests),
        ),
        (
            "ceci_match_requests_total",
            "MATCH requests admitted",
            g(&m.match_requests),
        ),
        (
            "ceci_load_requests_total",
            "LOAD requests served",
            g(&m.load_requests),
        ),
        (
            "ceci_rejected_busy_total",
            "Requests rejected BUSY by admission control",
            g(&m.rejected_busy),
        ),
        (
            "ceci_deadline_exceeded_total",
            "MATCH requests that hit their deadline",
            g(&m.deadline_exceeded),
        ),
        ("ceci_errors_total", "Requests answered ERR", g(&m.errors)),
        (
            "ceci_cache_hits_total",
            "Index-cache hits",
            g(&m.cache_hits),
        ),
        (
            "ceci_cache_misses_total",
            "Index-cache misses (CECI built)",
            g(&m.cache_misses),
        ),
        (
            "ceci_cache_evictions_total",
            "Cache entries evicted under the byte budget",
            g(&m.cache_evictions),
        ),
        (
            "ceci_cache_collisions_total",
            "Canonical-hash collisions detected by verification",
            g(&m.cache_collisions),
        ),
        (
            "ceci_worker_drops_total",
            "Data-plane jobs whose worker panicked mid-request",
            g(&m.worker_drops),
        ),
        (
            "ceci_panics_caught_total",
            "Job panics caught by pool supervisors",
            g(&m.panics_caught),
        ),
        (
            "ceci_cache_quarantined_total",
            "Index builds that panicked and were quarantined",
            g(&m.cache_quarantined),
        ),
        (
            "ceci_quarantine_hits_total",
            "Requests refused on a quarantined cache key",
            g(&m.quarantine_hits),
        ),
        (
            "ceci_chaos_injected_total",
            "CHAOS commands executed",
            g(&m.chaos_injected),
        ),
        (
            "ceci_embeddings_returned_total",
            "Embeddings returned across MATCH responses",
            g(&m.embeddings_returned),
        ),
        (
            "ceci_filter_rejected_total",
            "MATCH requests answered count=0 by the label-pair admission filter",
            g(&m.filter_rejected),
        ),
        (
            "ceci_cache_singleflight_waits_total",
            "MATCH requests that waited on another request's in-flight build",
            g(&m.singleflight_waits),
        ),
        (
            "ceci_batch_frontier_builds_total",
            "Shared-prefix frontiers built by batch leaders",
            g(&m.batch_frontier_builds),
        ),
        (
            "ceci_batch_frontier_hits_total",
            "MATCH requests that reused a shared-prefix frontier",
            g(&m.batch_frontier_hits),
        ),
        (
            "ceci_mutation_batches_total",
            "Mutation batches applied (>=1 net edge change)",
            g(&m.mutation_batches),
        ),
        (
            "ceci_edges_added_total",
            "Net edges added by mutation batches",
            g(&m.edges_added),
        ),
        (
            "ceci_edges_deleted_total",
            "Net edges deleted by mutation batches",
            g(&m.edges_deleted),
        ),
        (
            "ceci_compactions_total",
            "Delta-overlay compactions into a fresh base CSR",
            g(&m.compactions),
        ),
        (
            "ceci_index_repairs_total",
            "Stale cached indexes repaired from the dirty log",
            g(&m.index_repairs),
        ),
        (
            "ceci_index_repair_fallbacks_total",
            "Stale cached indexes that fell back to a full rebuild",
            g(&m.index_repair_fallbacks),
        ),
        (
            "ceci_continuous_events_total",
            "Continuous-query delta events emitted",
            g(&m.continuous_events),
        ),
        (
            "ceci_adaptive_replans_total",
            "Adaptive plan choices where a non-default candidate won",
            g(&m.adaptive_replans),
        ),
        (
            "ceci_approx_answers_total",
            "Deadline-infeasible MATCH requests answered mode=APPROX",
            g(&m.approx_answers),
        ),
        (
            "ceci_infeasible_rejects_total",
            "Deadline-infeasible MATCH requests refused E_INFEASIBLE",
            g(&m.infeasible_rejects),
        ),
        (
            "ceci_io_timeouts_total",
            "Connections closed on a socket read/write timeout",
            g(&m.timeouts),
        ),
        (
            "ceci_connections_accepted_total",
            "Client connections accepted",
            g(&m.connections_accepted),
        ),
        (
            "ceci_connections_rejected_total",
            "Connections refused BUSY at the max-conns cap",
            g(&m.connections_rejected),
        ),
        (
            "ceci_event_push_failures_total",
            "EVENT pushes that failed on a dead subscriber connection",
            g(&m.event_push_failures),
        ),
        (
            "ceci_slow_reader_disconnects_total",
            "Connections dropped after overflowing their write queue",
            g(&m.slow_reader_disconnects),
        ),
    ];
    for (name, help, value) in counters {
        w.counter(name, help, value);
    }
    // Coordinator-mode shard surface: aggregate counters (per-shard detail
    // lives in the STATS `SHARD` lines; PromWriter has no label support).
    if let Some(shards) = state.shards.as_ref() {
        let sum = |f: &dyn Fn(&crate::coord::ShardStatus) -> u64| -> u64 {
            shards.shards.iter().map(f).sum()
        };
        w.gauge(
            "ceci_shards_configured",
            "Shard processes configured on this coordinator",
            shards.len() as u64,
        );
        w.gauge(
            "ceci_shards_alive",
            "Shards whose last probe or RPC succeeded",
            shards.alive() as u64,
        );
        w.counter(
            "ceci_shard_reconnects_total",
            "Successful shard reconnects after a failure",
            sum(&|s| s.reconnects.load(Ordering::Relaxed)),
        );
        w.counter(
            "ceci_shard_rescatters_total",
            "Re-scatter events (a shard declared dead mid-query)",
            sum(&|s| s.rescatters.load(Ordering::Relaxed)),
        );
        w.counter(
            "ceci_shard_commits_total",
            "Pivot counts committed via shard RPCs",
            sum(&|s| s.executed.load(Ordering::Relaxed)),
        );
        w.counter(
            "ceci_shard_commits_rejected_total",
            "Shard commits rejected as stale or duplicate",
            sum(&|s| s.commits_rejected.load(Ordering::Relaxed)),
        );
    }
    w.gauge(
        "ceci_graphs_loaded",
        "Graphs currently loaded in the registry",
        state.registry.len() as u64,
    );
    w.gauge(
        "ceci_cache_entries",
        "Frozen indexes currently cached",
        state.cache.len() as u64,
    );
    w.gauge(
        "ceci_cache_bytes",
        "Bytes of frozen index currently cached",
        state.cache.bytes() as u64,
    );
    w.gauge(
        "ceci_cache_quarantined_keys",
        "Cache keys currently quarantined",
        state.cache.quarantined_len() as u64,
    );
    w.gauge(
        "ceci_trace_spans",
        "Spans in the service tracer store",
        state.tracer.len() as u64,
    );
    w.gauge(
        "ceci_frontier_entries",
        "Shared-prefix frontiers currently published",
        state.frontiers.len() as u64,
    );
    w.gauge(
        "ceci_continuous_registrations",
        "Continuous queries currently registered",
        state.continuous_len() as u64,
    );
    w.gauge(
        "ceci_connections_open",
        "Client connections currently open",
        m.connections_open.load(Ordering::Relaxed),
    );
    for (hist, name, help) in [
        (
            &m.match_latency,
            "ceci_match_latency_us",
            "End-to-end MATCH latency (admission to response), microseconds",
        ),
        (
            &m.build_latency,
            "ceci_build_latency_us",
            "CECI build time on cache misses, microseconds",
        ),
        (
            &m.build_filter_latency,
            "ceci_build_filter_us",
            "BFS-filter phase time within builds (Algorithm 1), microseconds",
        ),
        (
            &m.build_refine_latency,
            "ceci_build_refine_us",
            "Reverse-BFS refinement phase time within builds (Algorithm 2), microseconds",
        ),
        (
            &m.index_repair_latency,
            "ceci_index_repair_us",
            "Stale-index repair time (patch + re-freeze), microseconds",
        ),
        (
            &m.plan_score_latency,
            "ceci_plan_score_us",
            "Adaptive planner portfolio scoring time per cache-miss build, microseconds",
        ),
    ] {
        let (cum, sum, count) = hist.cumulative_us();
        w.histogram(name, help, &cum, sum, count);
    }
    w.finish()
}

fn exec_load(
    state: &ServerState,
    name: &str,
    path: &str,
    edge_list: bool,
    directed: bool,
) -> Vec<String> {
    let loaded = if edge_list {
        graph_io::load_edge_list(path, directed)
    } else {
        graph_io::load_labeled(path)
    };
    match loaded {
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            vec![ErrorCode::Load.line(format!("load failed: {e}"))]
        }
        Ok(mut graph) => {
            // The label-pair index powers the admission filter for every
            // later MATCH against this graph; build it once per LOAD epoch.
            graph.build_label_pair_index();
            let (vertices, edges) = (graph.num_vertices(), graph.num_edges());
            let (entry, displaced) = state.registry.insert(name, graph);
            if let Some(old_epoch) = displaced {
                state.cache.evict_epoch(old_epoch);
                state.frontiers.evict_epoch(old_epoch);
            }
            // Continuous queries are pinned to the replaced entry's epoch;
            // their totals are meaningless against the new graph.
            state.continuous.lock().retain(|_, cq| cq.graph != name);
            ServerMetrics::inc(&state.metrics.load_requests);
            vec![format!(
                "OK LOADED name={name} vertices={vertices} edges={edges} epoch={}",
                entry.epoch
            )]
        }
    }
}

/// Loads + validates a query pattern file.
fn load_query(path: &str) -> Result<QueryGraph, String> {
    let pattern = graph_io::load_labeled(path).map_err(|e| format!("query load failed: {e}"))?;
    QueryGraph::from_graph(&pattern).map_err(|e| format!("invalid query: {e}"))
}

/// A successful cache-miss build: the plan, the frozen index, (when stream
/// repair is on) the maintainable base index kept for future patches, and
/// (when adaptive planning is on) the planner's decision record.
type BuiltIndex = (
    Arc<QueryPlan>,
    Arc<Ceci>,
    Option<Arc<StreamIndex>>,
    Option<PlanChoice>,
);

/// Runs the (panic-prone) plan + CECI build under `catch_unwind`, honoring
/// the one-shot chaos levers (`BUILDDELAY` sleeps first, then `BUILDPANIC`
/// fires, so the two compose). `Err(())` means the build panicked; the
/// caller quarantines the key.
///
/// With [`ServeConfig::adaptive`] (the default) the plan comes from the
/// cost-model portfolio ([`plan_with_options`]): a pilot index over sampled
/// pivots scores BFS/EdgeRank/PathRank orders across the top roots and the
/// cheapest estimated intermediate-result volume wins. Scoring time lands
/// in `plan_score_latency`; a non-default winner bumps `adaptive_replans`.
fn run_build(state: &ServerState, graph: &Graph, query: QueryGraph) -> Result<BuiltIndex, ()> {
    let delay_ms = state.build_delay_ms.swap(0, Ordering::SeqCst);
    let armed = state.build_panic_armed.swap(false, Ordering::SeqCst);
    let build_threads = state.config.build_threads.max(1);
    let keep_stream = state.config.stream_repair;
    let adaptive = state.config.adaptive;
    let max_workers = state.config.max_match_workers.max(1);
    let built = catch_unwind(AssertUnwindSafe(move || {
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if armed {
            panic!("injected CHAOS BUILDPANIC during index build");
        }
        let (plan, choice) = if adaptive {
            plan_with_options(
                query,
                graph,
                &PlanOptions {
                    order: OrderStrategy::Adaptive,
                    ..Default::default()
                },
                &AdaptiveOptions {
                    max_workers,
                    ..Default::default()
                },
            )
        } else {
            (QueryPlan::new(query, graph), None)
        };
        let plan = Arc::new(plan);
        let ceci = Arc::new(Ceci::build_with(
            graph,
            &plan,
            ceci_core::BuildOptions {
                threads: build_threads,
                ..Default::default()
            },
        ));
        // The maintainable base tables ride along so a later mutation can
        // repair this entry instead of rebuilding it.
        let stream = keep_stream.then(|| Arc::new(StreamIndex::build(graph, &plan)));
        (plan, ceci, stream, choice)
    }))
    .map_err(|_| ())?;
    if let Some(choice) = &built.3 {
        state.metrics.plan_score_latency.record(choice.score_time);
        if choice.replanned {
            ServerMetrics::inc(&state.metrics.adaptive_replans);
        }
    }
    Ok(built)
}

/// Attempts to repair a stale cached entry in place: patch its retained
/// stream tables from the graph's dirty log against the request's snapshot,
/// then re-freeze. `None` means repair is not possible (repair disabled, no
/// stream tables retained, the dirty log no longer covers the gap, or the
/// entry is from the *future* relative to this snapshot) and the caller
/// must fall back to a full rebuild.
fn repair_entry(
    state: &ServerState,
    entry: &GraphEntry,
    graph: &Graph,
    sub_epoch: u64,
    old: &CachedIndex,
) -> Option<(CachedIndex, Duration)> {
    if !state.config.stream_repair || old.sub_epoch > sub_epoch {
        return None;
    }
    let stream = old.stream.as_ref()?;
    let endpoints = entry.dirty_endpoints_since(old.sub_epoch)?;
    let plan = Arc::clone(&old.plan);
    let t0 = Instant::now();
    // Repair runs the same (panic-prone) index code paths a build does;
    // contain it the same way and fall back to a rebuild on unwind.
    let (patched, ceci, stats) = catch_unwind(AssertUnwindSafe(|| {
        let mut patched = (**stream).clone();
        let stats = patched.patch(graph, &plan, &endpoints);
        let ceci = Arc::new(patched.materialize(graph, &plan));
        (patched, ceci, stats)
    }))
    .ok()?;
    let repair = t0.elapsed();
    state.metrics.index_repair_latency.record(repair);
    ServerMetrics::inc(&state.metrics.index_repairs);
    if state.tracer.enabled() {
        let dur = repair.as_nanos() as u64;
        let end = state.tracer.now_ns();
        state.tracer.span(
            "service.repair",
            "service",
            0,
            0,
            end.saturating_sub(dur),
            dur.max(1),
            vec![
                ("dirty_vertices", stats.dirty_vertices as u64),
                ("keys_recomputed", stats.keys_recomputed as u64),
                ("keys_added", stats.keys_added as u64),
                ("keys_removed", stats.keys_removed as u64),
                ("from_sub_epoch", old.sub_epoch),
                ("to_sub_epoch", sub_epoch),
            ],
        );
    }
    let bytes = ceci.size_bytes() + patched.size_bytes();
    // The plan is unchanged by a repair, so the planner's decision record
    // carries over; execution feedback does NOT — it was measured against
    // the pre-mutation candidate sets, and the repaired entry re-profiles
    // on its next exact run.
    Some((
        CachedIndex {
            canonical: old.canonical.clone(),
            plan,
            ceci,
            bytes,
            sub_epoch,
            stream: Some(Arc::new(patched)),
            choice: old.choice.clone(),
            feedback: Mutex::new(None),
        },
        repair,
    ))
}

/// Records build latency and its phase split (filter = Algorithm 1,
/// refine = Algorithm 2) so serve-side build regressions show in STATS
/// without a profiler.
fn record_build(state: &ServerState, ceci: &Ceci, build: Duration) {
    state.metrics.build_latency.record(build);
    let stats = ceci.stats();
    state.metrics.build_filter_latency.record(stats.filter_time);
    state.metrics.build_refine_latency.record(stats.refine_time);
}

/// Quarantines a key after a panicked build and formats the `ERR` response.
fn quarantine_after_panic(
    state: &ServerState,
    graph_epoch: u64,
    canonical: &CanonicalQuery,
) -> Vec<String> {
    state.cache.quarantine(graph_epoch, canonical);
    ServerMetrics::inc(&state.metrics.cache_quarantined);
    ServerMetrics::inc(&state.metrics.errors);
    vec![ErrorCode::BuildPanic.line("index build panicked; the cache key is quarantined")]
}

/// Builds without touching the cache — the collision path (an entry or
/// in-flight build exists under this hash for a *different* canonical
/// form, so the result must not be inserted or shared).
fn build_solo(
    state: &ServerState,
    graph_epoch: u64,
    sub_epoch: u64,
    graph: &Graph,
    query: QueryGraph,
    canonical: CanonicalQuery,
) -> Result<(Arc<CachedIndex>, &'static str, Duration), Vec<String>> {
    let t0 = Instant::now();
    let (plan, ceci, stream, choice) = match run_build(state, graph, query) {
        Ok(built) => built,
        Err(()) => return Err(quarantine_after_panic(state, graph_epoch, &canonical)),
    };
    let build = t0.elapsed();
    record_build(state, &ceci, build);
    let bytes = ceci.size_bytes() + stream.as_ref().map_or(0, |s| s.size_bytes());
    Ok((
        Arc::new(CachedIndex {
            canonical,
            plan,
            ceci,
            bytes,
            sub_epoch,
            stream,
            choice,
            feedback: Mutex::new(None),
        }),
        "MISS",
        build,
    ))
}

/// Probes the cache; on miss builds plan + CECI (outside any lock) and
/// inserts. Returns the entry, whether it was a hit, and the build time —
/// or the `ERR` response when the key is quarantined or the build panics.
///
/// With [`ServeConfig::single_flight`] (the default), concurrent misses on
/// the same `(epoch, canonical)` key are deduplicated: exactly one request
/// leads the build, the rest wait on its flight gate and share the result
/// (`cache_singleflight_waits` counts them). A panicked leader quarantines
/// the key and fails its waiters with `E_QUARANTINED`.
///
/// The build runs under `catch_unwind`: a panicking build (bad interaction
/// between a specific query and graph — or an injected `CHAOS BUILDPANIC`)
/// answers `ERR E_BUILD_PANIC` and *quarantines* the cache key, so retries
/// of the same poisonous request fail fast with `E_QUARANTINED` instead of
/// burning a worker per attempt. Re-`LOAD`ing the graph clears the mark.
fn index_for(
    state: &ServerState,
    entry: &GraphEntry,
    graph: &Graph,
    sub_epoch: u64,
    query: QueryGraph,
) -> Result<(Arc<CachedIndex>, &'static str, Duration), Vec<String>> {
    let graph_epoch = entry.epoch;
    let canonical = CanonicalQuery::of(&query);
    if state.config.single_flight {
        return index_for_single_flight(state, entry, graph, sub_epoch, query, canonical);
    }
    let (probe, cached) = state.cache.get_at(graph_epoch, sub_epoch, &canonical);
    match probe {
        Probe::Hit => {
            ServerMetrics::inc(&state.metrics.cache_hits);
            return Ok((cached.expect("hit without entry"), "HIT", Duration::ZERO));
        }
        Probe::Quarantined => {
            ServerMetrics::inc(&state.metrics.quarantine_hits);
            ServerMetrics::inc(&state.metrics.errors);
            return Err(vec![ErrorCode::Quarantined.line(
                "index build for this (graph, query) previously panicked; \
                 re-LOAD the graph to clear the quarantine",
            )]);
        }
        Probe::Stale => {
            let old = cached.expect("stale probe without entry");
            if let Some((repaired, repair)) = repair_entry(state, entry, graph, sub_epoch, &old) {
                let shared = Arc::new(repaired);
                let evicted = state.cache.insert_arc(graph_epoch, Arc::clone(&shared));
                ServerMetrics::add(&state.metrics.cache_evictions, evicted);
                return Ok((shared, "REPAIRED", repair));
            }
            // Unrepairable: pay the full rebuild, counted as a miss.
            ServerMetrics::inc(&state.metrics.index_repair_fallbacks);
            ServerMetrics::inc(&state.metrics.cache_misses);
        }
        Probe::Miss => ServerMetrics::inc(&state.metrics.cache_misses),
        Probe::Collision => {
            // Verified mismatch: never serve it; count both ways so the
            // operator can see collisions are happening.
            ServerMetrics::inc(&state.metrics.cache_collisions);
            ServerMetrics::inc(&state.metrics.cache_misses);
        }
    }
    let t0 = Instant::now();
    let (plan, ceci, stream, choice) = match run_build(state, graph, query) {
        Ok(built) => built,
        Err(()) => return Err(quarantine_after_panic(state, graph_epoch, &canonical)),
    };
    let build = t0.elapsed();
    record_build(state, &ceci, build);
    let shared = Arc::new(CachedIndex {
        canonical,
        plan,
        ceci: Arc::clone(&ceci),
        bytes: ceci.size_bytes() + stream.as_ref().map_or(0, |s| s.size_bytes()),
        sub_epoch,
        stream,
        choice,
        feedback: Mutex::new(None),
    });
    // Collisions keep the *old* entry (LRU decides who survives budget
    // pressure); overwriting would thrash between the two queries.
    if probe != Probe::Collision {
        let evicted = state.cache.insert_arc(graph_epoch, Arc::clone(&shared));
        ServerMetrics::add(&state.metrics.cache_evictions, evicted);
    }
    Ok((shared, "MISS", build))
}

/// The leader side of a single-flight build: run it, publish through the
/// guard (or quarantine + fail), and sync the eviction counter.
fn finish_lead(
    state: &ServerState,
    graph_epoch: u64,
    sub_epoch: u64,
    graph: &Graph,
    query: QueryGraph,
    canonical: CanonicalQuery,
    guard: crate::cache::FlightGuard<'_>,
) -> Result<(Arc<CachedIndex>, &'static str, Duration), Vec<String>> {
    let t0 = Instant::now();
    match run_build(state, graph, query) {
        Err(()) => {
            // Quarantine *before* releasing the gate so waiters and
            // later probes agree on the verdict.
            let lines = quarantine_after_panic(state, graph_epoch, &canonical);
            guard.fail();
            Err(lines)
        }
        Ok((plan, ceci, stream, choice)) => {
            let build = t0.elapsed();
            record_build(state, &ceci, build);
            let bytes = ceci.size_bytes() + stream.as_ref().map_or(0, |s| s.size_bytes());
            let entry = guard.complete(CachedIndex {
                canonical,
                plan,
                ceci,
                bytes,
                sub_epoch,
                stream,
                choice,
                feedback: Mutex::new(None),
            });
            // `complete` inserts internally; sync the server-level
            // eviction counter to the cache's authoritative one.
            state
                .metrics
                .cache_evictions
                .store(state.cache.evictions(), Ordering::Relaxed);
            Ok((entry, "MISS", build))
        }
    }
}

/// The single-flight variant of [`index_for`]: misses are arbitrated by
/// [`IndexCache::begin_at`] into one leader and N−1 waiters; a stale entry
/// elects its leader into the *repair* path first.
fn index_for_single_flight(
    state: &ServerState,
    entry: &GraphEntry,
    graph: &Graph,
    sub_epoch: u64,
    query: QueryGraph,
    canonical: CanonicalQuery,
) -> Result<(Arc<CachedIndex>, &'static str, Duration), Vec<String>> {
    let graph_epoch = entry.epoch;
    match state.cache.begin_at(graph_epoch, sub_epoch, &canonical) {
        FlightProbe::Hit(entry) => {
            ServerMetrics::inc(&state.metrics.cache_hits);
            Ok((entry, "HIT", Duration::ZERO))
        }
        FlightProbe::Quarantined => {
            ServerMetrics::inc(&state.metrics.quarantine_hits);
            ServerMetrics::inc(&state.metrics.errors);
            Err(vec![ErrorCode::Quarantined.line(
                "index build for this (graph, query) previously panicked; \
                 re-LOAD the graph to clear the quarantine",
            )])
        }
        FlightProbe::Collision => {
            ServerMetrics::inc(&state.metrics.cache_collisions);
            ServerMetrics::inc(&state.metrics.cache_misses);
            build_solo(state, graph_epoch, sub_epoch, graph, query, canonical)
        }
        FlightProbe::Lead(guard) => {
            ServerMetrics::inc(&state.metrics.cache_misses);
            finish_lead(
                state,
                graph_epoch,
                sub_epoch,
                graph,
                query,
                canonical,
                guard,
            )
        }
        FlightProbe::Stale(old, guard) => {
            if let Some((repaired, repair)) = repair_entry(state, entry, graph, sub_epoch, &old) {
                let shared = guard.complete(repaired);
                state
                    .metrics
                    .cache_evictions
                    .store(state.cache.evictions(), Ordering::Relaxed);
                return Ok((shared, "REPAIRED", repair));
            }
            ServerMetrics::inc(&state.metrics.index_repair_fallbacks);
            ServerMetrics::inc(&state.metrics.cache_misses);
            finish_lead(
                state,
                graph_epoch,
                sub_epoch,
                graph,
                query,
                canonical,
                guard,
            )
        }
        FlightProbe::Wait(flight) => {
            ServerMetrics::inc(&state.metrics.singleflight_waits);
            match flight.wait() {
                FlightWait::Ready(flown) => {
                    if flown.canonical == canonical && flown.sub_epoch == sub_epoch {
                        ServerMetrics::inc(&state.metrics.cache_hits);
                        Ok((flown, "HIT", Duration::ZERO))
                    } else {
                        // A different canonical form under this 64-bit hash
                        // (collision), or the leader ran against a different
                        // snapshot: either way, not our index.
                        if flown.canonical != canonical {
                            ServerMetrics::inc(&state.metrics.cache_collisions);
                        }
                        ServerMetrics::inc(&state.metrics.cache_misses);
                        build_solo(state, graph_epoch, sub_epoch, graph, query, canonical)
                    }
                }
                FlightWait::Failed => {
                    ServerMetrics::inc(&state.metrics.quarantine_hits);
                    ServerMetrics::inc(&state.metrics.errors);
                    Err(vec![ErrorCode::Quarantined.line(
                        "index build for this (graph, query) panicked in a \
                         concurrent request; re-LOAD the graph to clear the \
                         quarantine",
                    )])
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_match(
    state: &ServerState,
    graph_name: &str,
    query_path: &str,
    limit: Option<u64>,
    deadline_ms: Option<u64>,
    workers: Option<usize>,
    raw: bool,
    exact: bool,
    queue_wait: Duration,
) -> Vec<String> {
    let t_start = Instant::now();
    ServerMetrics::inc(&state.metrics.match_requests);
    let Some(entry) = state.registry.get(graph_name) else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::UnknownGraph.line(format!("unknown graph {graph_name:?}"))];
    };
    // One consistent (snapshot, sub-epoch) pair for the whole request:
    // concurrent mutations publish new snapshots without touching this one.
    let (graph, sub_epoch) = entry.snapshot();
    let query = match load_query(query_path) {
        Ok(q) => q,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Query.line(e)];
        }
    };
    // Label-pair admission filter: a rejection is a *proof* of zero
    // embeddings, answered in O(query edges) before any cache probe,
    // index build, or enumeration.
    if state.config.admission_filter && !raw {
        let verdict = admission_check(&query, &graph);
        if verdict.rejected() {
            ServerMetrics::inc(&state.metrics.filter_rejected);
            let total = t_start.elapsed();
            state.metrics.match_latency.record(queue_wait + total);
            return vec![format!(
                "OK MATCH count=0 status=OK filter=REJECTED cache=NONE \
                 build_us=0 enum_us=0 total_us={}",
                total.as_micros(),
            )];
        }
    }
    // Coordinator mode: plain count-only requests scatter across the shard
    // fleet. The plan is the *fixed* deterministic one (`QueryPlan::new`,
    // BFS order) — shards replay it from the PREPARE line, so coordinator
    // and shards agree bit-for-bit on candidates, order, and symmetry
    // constraints. Requests with LIMIT/DEADLINE/WORKERS keep the local
    // path: those knobs shape enumeration in ways a scatter cannot
    // reproduce deterministically.
    if let Some(shards) = state.shards() {
        if limit.is_none() && deadline_ms.is_none() && workers.is_none() {
            let plan = QueryPlan::new(query, &graph);
            let handle = format!("{graph_name}@{sub_epoch}:{query_path}");
            let report = coord::scatter_match(
                &graph,
                &plan,
                query_path,
                &handle,
                shards,
                &state.coord_config(),
            );
            let total = t_start.elapsed();
            state.metrics.match_latency.record(queue_wait + total);
            return vec![format!(
                "OK MATCH count={} status=OK mode=SHARDED shards={} \
                 shard_commits={} local_fallback={} rescatters={} \
                 stale_rejected={} reconnects={} total_us={}",
                report.total,
                shards.len(),
                report.shard_commits,
                report.local_fallback,
                report.rescatters,
                report.stale_rejected,
                report.reconnects,
                total.as_micros(),
            )];
        }
    }

    // The deadline clock starts when execution starts, not at submission:
    // queue wait is already bounded by admission control.
    let cancel = deadline_ms.map(|ms| CancelToken::after(Duration::from_millis(ms)));

    let t_index = Instant::now();
    let (index, cache_tag, build) = match index_for(state, &entry, &graph, sub_epoch, query) {
        Ok(built) => built,
        Err(lines) => return lines,
    };
    let index_time = t_index.elapsed();

    // Worker count: explicit `WORKERS` wins, then the adaptive planner's
    // recommendation (sized from estimated volume), then the server default.
    let requested = workers.unwrap_or_else(|| match index.choice.as_ref() {
        Some(choice) if !raw => choice.workers.max(state.config.default_match_workers),
        _ => state.config.default_match_workers,
    });
    let match_workers = requested.clamp(1, state.config.max_match_workers.max(1));

    // Deadline-aware admission: when the planner's cost estimate (calibrated
    // by observed feedback when available) says the exact enumeration cannot
    // finish inside the deadline, degrade to an estimator answer — or refuse
    // outright — *before* occupying the worker for the full deadline.
    // `RAW` and `EXACT` both opt out and run the pre-adaptive exact path.
    if !raw && !exact {
        if let (Some(ms), Some(choice)) = (deadline_ms, index.choice.as_ref()) {
            let ns_per_unit = lock_recover(&index.feedback)
                .as_ref()
                .map_or(DEFAULT_NS_PER_UNIT, |f| f.ns_per_unit);
            let deadline = Duration::from_millis(ms);
            match admit(&choice.cost, deadline, ns_per_unit, match_workers) {
                DeadlineVerdict::Exact => {}
                DeadlineVerdict::Approx => {
                    let est = estimate_embeddings(
                        &graph,
                        &index.plan,
                        &index.ceci,
                        &EstimateOptions::default(),
                    );
                    ServerMetrics::inc(&state.metrics.approx_answers);
                    let (lo, hi) = est.ci95();
                    let total = t_start.elapsed();
                    state.metrics.match_latency.record(queue_wait + total);
                    return vec![format!(
                        "OK MATCH count={} status=OK mode=APPROX mean={:.1} \
                         std_error={:.1} ci95_lo={:.1} ci95_hi={:.1} walks={} \
                         cache={cache_tag} build_us={} enum_us=0 total_us={}",
                        est.mean.round() as u64,
                        est.mean,
                        est.std_error,
                        lo,
                        hi,
                        est.walks,
                        build.as_micros(),
                        total.as_micros(),
                    )];
                }
                DeadlineVerdict::Infeasible => {
                    ServerMetrics::inc(&state.metrics.infeasible_rejects);
                    ServerMetrics::inc(&state.metrics.errors);
                    return vec![ErrorCode::Infeasible.line(format!(
                        "estimated intermediate volume {:.0} cannot finish \
                         inside {ms}ms and the estimate is too noisy for an \
                         APPROX answer; retry with EXACT, a larger DEADLINE, \
                         or use ESTIMATE",
                        choice.cost.volume(),
                    ))];
                }
            }
        }
    }

    // Shared-prefix batched execution: eligible requests (count-only,
    // single-threaded, no deadline) fork their enumeration from a cached
    // frontier of the matching-order prefix, shared with every concurrent
    // query of the same prefix shape. Ineligible or `Solo` (signature
    // collision) requests fall through to the unbatched path.
    let mut batch_tag: Option<&'static str> = None;
    let t_enum = Instant::now();
    let (total_embeddings, cancelled) = 'run: {
        if state.config.batching
            && !raw
            && limit.is_none()
            && deadline_ms.is_none()
            && match_workers == 1
        {
            if let Some(spec) = PrefixSpec::from_plan(&index.plan, state.config.batch_prefix_depth)
            {
                let frontier =
                    match state
                        .frontiers
                        .get_or_build(entry.epoch, sub_epoch, &spec, || {
                            spec.build_frontier(&graph)
                        }) {
                        FrontierOutcome::Built(f) => {
                            ServerMetrics::inc(&state.metrics.batch_frontier_builds);
                            batch_tag = Some("LEAD");
                            Some(f)
                        }
                        FrontierOutcome::Shared(f) => {
                            ServerMetrics::inc(&state.metrics.batch_frontier_hits);
                            batch_tag = Some("SHARED");
                            Some(f)
                        }
                        FrontierOutcome::Solo => None,
                    };
                if let Some(f) = frontier {
                    let mut sink = CountSink::unbounded();
                    enumerate_from_frontier(
                        &graph,
                        &index.plan,
                        &index.ceci,
                        EnumOptions {
                            prune_redundant: state.config.prune_redundant,
                            ..EnumOptions::default()
                        },
                        &f.frontier,
                        &mut sink,
                    );
                    break 'run (sink.count(), false);
                }
            }
        }
        // Adaptive execution (skipped for RAW): the planner's estimated
        // branch profile picks the work-distribution strategy; kernel pins
        // observed from a prior profiled run of this cached index choose the
        // intersection kernel per depth. The first unconstrained exact run
        // profiles itself to populate that feedback. All of it only changes
        // *how* intersections are computed and work is split — counts stay
        // bit-identical to the fixed path.
        let pins: Option<Vec<Kernel>> = if raw {
            None
        } else {
            lock_recover(&index.feedback)
                .as_ref()
                .map(|f| f.depth_kernels.clone())
        };
        let need_feedback = !raw
            && state.config.adaptive
            && index.choice.is_some()
            && pins.is_none()
            && limit.is_none();
        let mut options = ParallelOptions {
            workers: match_workers,
            limit,
            prune_redundant: state.config.prune_redundant && !raw,
            profile: need_feedback,
            ..Default::default()
        };
        if let Some(choice) = index.choice.as_ref() {
            if !raw {
                options.strategy = choice.strategy;
            }
        }
        let result = enumerate_parallel_pinned(
            &graph,
            &index.plan,
            &index.ceci,
            &options,
            cancel.clone(),
            pins.as_deref(),
        );
        if need_feedback && !result.cancelled {
            if let Some(profile) = &result.profile {
                let mut slot = lock_recover(&index.feedback);
                if slot.is_none() {
                    *slot = Some(PlanFeedback {
                        depth_kernels: kernels_from_profile(profile),
                        ns_per_unit: ns_per_unit_from_profile(profile)
                            .unwrap_or(DEFAULT_NS_PER_UNIT),
                    });
                }
            }
        }
        (result.total_embeddings, result.cancelled)
    };
    let enum_time = t_enum.elapsed();

    let status = if cancelled {
        ServerMetrics::inc(&state.metrics.deadline_exceeded);
        MatchStatus::DeadlineExceeded
    } else {
        MatchStatus::Ok
    };
    let count = match limit {
        Some(k) => total_embeddings.min(k),
        None => total_embeddings,
    };
    ServerMetrics::add(&state.metrics.embeddings_returned, count);
    let total = t_start.elapsed();
    // `match_latency` is documented as admission-to-response: queue wait
    // after admission counts (it was previously silently excluded).
    state.metrics.match_latency.record(queue_wait + total);
    let mut line = format!(
        "OK MATCH count={count} status={} cache={cache_tag} build_us={} enum_us={} total_us={}",
        status.as_str(),
        build.as_micros(),
        enum_time.as_micros(),
        total.as_micros(),
    );
    if let Some(tag) = batch_tag {
        line.push_str(" batch=");
        line.push_str(tag);
    }
    let lines = vec![line];
    if state.tracer.enabled() {
        record_request_spans(
            &state.tracer,
            RequestTiming {
                queue_wait,
                index_time,
                build,
                enum_time,
                total: t_start.elapsed(),
            },
            &[
                ("embeddings", count),
                ("cache_hit", (cache_tag == "HIT") as u64),
                ("deadline_exceeded", cancelled as u64),
                ("workers", match_workers as u64),
                ("batched", batch_tag.is_some() as u64),
            ],
        );
    }
    lines
}

/// Answers `ESTIMATE <graph> <query-path> [WALKS <n>]`: runs the
/// random-walk cardinality estimator over the (cached) index and reports
/// mean, standard error, and 95% confidence interval without enumerating.
/// Shares the index cache with MATCH, so estimating then matching pays one
/// build.
fn exec_estimate(
    state: &ServerState,
    graph_name: &str,
    query_path: &str,
    walks: Option<u64>,
) -> Vec<String> {
    let t_start = Instant::now();
    let Some(entry) = state.registry.get(graph_name) else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::UnknownGraph.line(format!("unknown graph {graph_name:?}"))];
    };
    let (graph, sub_epoch) = entry.snapshot();
    let query = match load_query(query_path) {
        Ok(q) => q,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Query.line(e)];
        }
    };
    // The label-pair filter proves zero without touching the index; answer
    // the degenerate exact-zero estimate directly.
    if state.config.admission_filter && admission_check(&query, &graph).rejected() {
        ServerMetrics::inc(&state.metrics.filter_rejected);
        return vec![format!(
            "OK ESTIMATE mean=0.0 std_error=0.0 ci95_lo=0.0 ci95_hi=0.0 \
             walks=0 exact_zero=1 cache=NONE total_us={}",
            t_start.elapsed().as_micros(),
        )];
    }
    let (index, cache_tag, _build) = match index_for(state, &entry, &graph, sub_epoch, query) {
        Ok(built) => built,
        Err(lines) => return lines,
    };
    let mut opts = EstimateOptions::default();
    if let Some(w) = walks {
        opts.walks = w.max(1);
    }
    let est = estimate_embeddings(&graph, &index.plan, &index.ceci, &opts);
    let (lo, hi) = est.ci95();
    vec![format!(
        "OK ESTIMATE mean={:.1} std_error={:.1} ci95_lo={:.1} ci95_hi={:.1} \
         walks={} exact_zero={} cache={cache_tag} total_us={}",
        est.mean,
        est.std_error,
        lo,
        hi,
        est.walks,
        est.exact_zero as u8,
        t_start.elapsed().as_micros(),
    )]
}

/// Stage durations of one data-plane request, measured on the worker.
struct RequestTiming {
    /// Admission to execution start.
    queue_wait: Duration,
    /// Cache probe + (on miss) build — the whole `index_for` call.
    index_time: Duration,
    /// Build portion of `index_time` (zero on a cache hit).
    build: Duration,
    /// Enumeration wall time.
    enum_time: Duration,
    /// Execution start to response-lines-ready.
    total: Duration,
}

/// Records one `service.request` span with its stage children
/// (`service.queue` → `service.cache_probe` → `service.build` →
/// `service.enumerate` → `service.serialize`) ending at the tracer's
/// current clock.
fn record_request_spans(tracer: &Tracer, t: RequestTiming, args: &[(&'static str, u64)]) {
    let ns = |d: Duration| d.as_nanos() as u64;
    let end = tracer.now_ns();
    let total = ns(t.queue_wait) + ns(t.total);
    let start = end.saturating_sub(total);
    let req = tracer.span(
        "service.request",
        "service",
        0,
        0,
        start,
        total.max(1),
        args.to_vec(),
    );
    let mut cursor = start;
    let probe = ns(t.index_time).saturating_sub(ns(t.build));
    // Everything between the measured stages (registry lookup, query-file
    // load, response formatting) lands in `serialize` — the closing stage.
    let serialize = ns(t.total)
        .saturating_sub(ns(t.index_time))
        .saturating_sub(ns(t.enum_time));
    for (name, dur) in [
        ("service.queue", ns(t.queue_wait)),
        ("service.cache_probe", probe),
        ("service.build", ns(t.build)),
        ("service.enumerate", ns(t.enum_time)),
        ("service.serialize", serialize),
    ] {
        tracer.span(name, "service", req, 0, cursor, dur, Vec::new());
        cursor += dur;
    }
}

fn exec_explain(
    state: &ServerState,
    graph_name: &str,
    query_path: &str,
    analyze: bool,
) -> Vec<String> {
    let Some(entry) = state.registry.get(graph_name) else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::UnknownGraph.line(format!("unknown graph {graph_name:?}"))];
    };
    let (graph, sub_epoch) = entry.snapshot();
    let query = match load_query(query_path) {
        Ok(q) => q,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Query.line(e)];
        }
    };
    let (index, cache_tag, _build) = match index_for(state, &entry, &graph, sub_epoch, query) {
        Ok(built) => built,
        Err(lines) => return lines,
    };
    let report = ceci_core::explain_plan(&index.plan, &graph);
    let mut lines: Vec<String> = report.lines().map(|l| format!("| {l}")).collect();
    lines.push(format!("| index: bytes={} cache={cache_tag}", index.bytes));
    // Plan-choice section: which candidate orders the adaptive planner
    // scored, the winner's estimated cost, and the execution decision.
    if let Some(choice) = index.choice.as_ref() {
        for l in explain_choice(choice).lines() {
            lines.push(format!("| {l}"));
        }
    }
    if analyze {
        // EXPLAIN ANALYZE: run the enumeration with a per-depth profile
        // attached and append the profile table. Single worker so the
        // per-depth rows describe one deterministic recursion.
        let options = ParallelOptions {
            workers: 1,
            profile: true,
            ..Default::default()
        };
        let result =
            enumerate_parallel_cancellable(&graph, &index.plan, &index.ceci, &options, None);
        // `profile: true` was requested, but degrade gracefully if the
        // enumerator returned none rather than panicking the worker.
        if let Some(profile) = result.profile.as_ref() {
            let table = ceci_core::explain_profile(&index.plan, profile, &result.counters);
            for l in table.lines() {
                lines.push(format!("| {l}"));
            }
            // Estimated vs actual per-depth volumes (q-error column): how
            // well the planner's cost model predicted this execution.
            if let Some(choice) = index.choice.as_ref() {
                for l in explain_estimates(&index.plan, &choice.cost, profile).lines() {
                    lines.push(format!("| {l}"));
                }
            }
        } else {
            lines.push("| profile: unavailable for this run".to_string());
        }
    }
    lines.push("OK EXPLAIN".to_string());
    lines
}

/// Applies one mutation batch to a loaded graph and notifies every
/// continuous query registered on it.
///
/// The continuous-query lock is taken *before* the batch is applied and
/// held through notification, so concurrent mutation requests notify in
/// strict sub-epoch order — each registration's stream tables are patched
/// batch by batch against the exact snapshot pair the delta identity needs.
fn exec_mutate(
    state: &ServerState,
    graph_name: &str,
    adds: &[(u32, u32)],
    dels: &[(u32, u32)],
) -> Vec<String> {
    let to_vids = |pairs: &[(u32, u32)]| -> Vec<(VertexId, VertexId)> {
        pairs.iter().map(|&(a, b)| (vid(a), vid(b))).collect()
    };
    exec_mutate_vids(state, graph_name, &to_vids(adds), &to_vids(dels))
}

fn exec_mutate_vids(
    state: &ServerState,
    graph_name: &str,
    adds: &[(VertexId, VertexId)],
    dels: &[(VertexId, VertexId)],
) -> Vec<String> {
    let Some(entry) = state.registry.get(graph_name) else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::UnknownGraph.line(format!("unknown graph {graph_name:?}"))];
    };
    let mut continuous = state.continuous.lock();
    let outcome = match entry.apply_batch(
        adds,
        dels,
        state.config.compact_threshold,
        state.config.dirty_log_cap,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Mutation.line(e)];
        }
    };
    if outcome.applied() > 0 {
        ServerMetrics::inc(&state.metrics.mutation_batches);
        ServerMetrics::add(&state.metrics.edges_added, outcome.added.len() as u64);
        ServerMetrics::add(&state.metrics.edges_deleted, outcome.deleted.len() as u64);
        if outcome.compacted {
            ServerMetrics::inc(&state.metrics.compactions);
        }
        let mut dead: Vec<String> = Vec::new();
        for (name, cq) in continuous.iter_mut() {
            if cq.graph != graph_name || cq.epoch != entry.epoch {
                continue;
            }
            debug_assert_eq!(
                cq.sub_epoch + 1,
                outcome.sub_epoch,
                "in-order notification is guaranteed by the continuous lock"
            );
            // Patch the live tables to the new snapshot and compute the
            // embedding delta (new − retired) — contained like a build.
            let delta = catch_unwind(AssertUnwindSafe(|| {
                cq.stream
                    .patch(&outcome.new_graph, &cq.plan, &outcome.endpoints);
                batch_delta(
                    &outcome.old_graph,
                    &outcome.new_graph,
                    &cq.plan,
                    &outcome.added,
                    &outcome.deleted,
                )
            }));
            let Ok(delta) = delta else {
                // The tables may be half-patched; the registration is no
                // longer trustworthy.
                dead.push(name.clone());
                continue;
            };
            cq.total = delta.apply_to(cq.total);
            cq.sub_epoch = outcome.sub_epoch;
            let event = format!(
                "EVENT DELTA query={name} graph={graph_name} batch={} new={} retired={} total={}",
                outcome.sub_epoch, delta.new_matches, delta.retired_matches, cq.total,
            );
            if respond(&cq.sink, &[event]).is_err() {
                // The registering connection is gone (socket error, closed,
                // or its write queue overflowed): auto-unregister so dead
                // subscribers don't accumulate, and record the failure.
                ServerMetrics::inc(&state.metrics.event_push_failures);
                dead.push(name.clone());
            } else {
                ServerMetrics::inc(&state.metrics.continuous_events);
            }
        }
        for name in dead {
            continuous.remove(&name);
        }
    }
    vec![format!(
        "OK MUTATED graph={graph_name} added={} deleted={} sub_epoch={} pending={} compacted={}",
        outcome.added.len(),
        outcome.deleted.len(),
        outcome.sub_epoch,
        outcome.pending,
        outcome.compacted as u8,
    )]
}

/// `BATCH <graph> FILE <path>`: reads a SNAP temporal edge list server-side
/// and applies every edge as one batch of additions (timestamps order the
/// file; the whole file is one batch boundary here — `repro stream` slices
/// files into per-timestamp batches client-side when finer boundaries are
/// wanted).
fn exec_batch_file(state: &ServerState, graph_name: &str, path: &str) -> Vec<String> {
    let edges = match graph_io::load_temporal(path) {
        Ok(edges) => edges,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Mutation.line(format!("batch file load failed: {e}"))];
        }
    };
    let adds: Vec<(VertexId, VertexId)> = edges.iter().map(|e| (e.src, e.dst)).collect();
    exec_mutate_vids(state, graph_name, &adds, &[])
}

/// `REGISTER <name> <graph> <query-path>`: builds the continuous query's
/// live index against the graph's current snapshot and records the initial
/// embedding total. Holding the continuous lock across the snapshot+build
/// keeps the registration's sub-epoch exactly in step with the mutation
/// notifier (a batch can never slip between the snapshot and the insert).
fn exec_register(
    state: &ServerState,
    name: &str,
    graph_name: &str,
    query_path: &str,
    sink: SharedWriter,
) -> Vec<String> {
    let Some(entry) = state.registry.get(graph_name) else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::UnknownGraph.line(format!("unknown graph {graph_name:?}"))];
    };
    let query = match load_query(query_path) {
        Ok(q) => q,
        Err(e) => {
            ServerMetrics::inc(&state.metrics.errors);
            return vec![ErrorCode::Query.line(e)];
        }
    };
    let mut continuous = state.continuous.lock();
    let (graph, sub_epoch) = entry.snapshot();
    let built = catch_unwind(AssertUnwindSafe(|| {
        let plan = Arc::new(QueryPlan::new(query, &graph));
        let stream = StreamIndex::build(&graph, &plan);
        let ceci = stream.materialize(&graph, &plan);
        let total = count_embeddings(&graph, &plan, &ceci);
        (plan, stream, total)
    }));
    let Ok((plan, stream, total)) = built else {
        ServerMetrics::inc(&state.metrics.errors);
        return vec![ErrorCode::Register.line("index build for the continuous query panicked")];
    };
    continuous.insert(
        name.to_string(),
        ContinuousQuery {
            graph: graph_name.to_string(),
            epoch: entry.epoch,
            sub_epoch,
            plan,
            stream,
            total,
            sink,
        },
    );
    vec![format!(
        "OK REGISTERED name={name} graph={graph_name} total={total} sub_epoch={sub_epoch}"
    )]
}

/// `UNREGISTER <name>`: drops a continuous-query registration.
fn exec_unregister(state: &ServerState, name: &str) -> Vec<String> {
    let removed = state.continuous.lock().remove(name);
    match removed {
        Some(_) => vec![format!("OK UNREGISTERED name={name}")],
        None => {
            ServerMetrics::inc(&state.metrics.errors);
            vec![ErrorCode::Register.line(format!("unknown registration {name:?}"))]
        }
    }
}
