//! The frozen-index cache: memoizes built CECI structures across requests.
//!
//! Keyed by `(graph epoch, canonical query hash)` and *stamped* with the
//! graph's mutation sub-epoch. The canonical hash
//! ([`ceci_query::canonical_hash`]) is isomorphism-invariant, so any
//! presentation of the same query pattern hits the same entry — sound for
//! count-returning `MATCH`, because isomorphic queries have identical
//! embedding counts in the same data graph. Hits additionally verify the
//! full canonical *form* (not just the 64-bit hash), so a hash collision
//! is counted (`cache_collisions`) and treated as a miss rather than ever
//! serving the wrong index.
//!
//! Entries are immutable `Arc`s (plan + frozen CECI), accounted by
//! [`Ceci::size_bytes`], and evicted LRU-first when the configured byte
//! budget is exceeded. Replacing a graph (`LOAD` over an existing name)
//! eagerly sweeps every entry built against the displaced epoch.
//!
//! ## Quarantine
//!
//! When an index *build* panics, the cache key it would have filled is
//! quarantined: later probes answer [`Probe::Quarantined`] instead of
//! rebuilding, so a query that deterministically crashes the builder cannot
//! melt the server by crashing a worker per request. Quarantine is scoped
//! to the `(epoch, hash)` key — re-`LOAD`ing the graph bumps the epoch and
//! naturally clears it (and `evict_epoch` sweeps the old epoch's marks).
//!
//! ## Staleness and repair
//!
//! Streaming mutations (`ADDEDGE`/`DELEDGE`/`BATCH`) do not bump the epoch;
//! they bump the entry's *sub-epoch*. A probe whose sub-epoch differs from
//! the cached entry's answers [`Probe::Stale`] (or
//! [`FlightProbe::Stale`] under single-flight), removes the outdated slot,
//! and hands the old entry back so the caller can *repair* it — patch the
//! retained [`StreamIndex`] from the graph's dirty log and re-freeze —
//! instead of rebuilding from scratch.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ceci_core::{Ceci, Kernel, PlanChoice};
use ceci_query::{CanonicalQuery, QueryPlan};
use ceci_stream::StreamIndex;

/// Execution feedback observed from a prior exact run of a cached index:
/// the per-depth intersection kernels the depth profile picked and the
/// measured cost-unit rate. Stored beside the index so later requests on
/// the same `(epoch, canonical)` key pin kernels and calibrate deadline
/// admission from real observations instead of static defaults. Scoped to
/// the cache entry, so `LOAD` epochs and stream sub-epoch bumps retire it
/// together with the index it was measured on.
#[derive(Clone, Debug)]
pub struct PlanFeedback {
    /// Intersection kernel pinned per enumeration depth
    /// ([`ceci_core::kernels_from_profile`]).
    pub depth_kernels: Vec<Kernel>,
    /// Observed nanoseconds per cost-model volume unit
    /// ([`ceci_core::ns_per_unit_from_profile`]).
    pub ns_per_unit: f64,
}

/// One cached, frozen index: everything needed to answer a `MATCH` without
/// re-planning or re-filtering.
#[derive(Debug)]
pub struct CachedIndex {
    /// Full canonical form, verified on every hit (collision guard).
    pub canonical: CanonicalQuery,
    /// The matching plan the index was built for.
    pub plan: Arc<QueryPlan>,
    /// The frozen candidate index.
    pub ceci: Arc<Ceci>,
    /// Bytes charged against the cache budget.
    pub bytes: usize,
    /// Mutation sub-epoch of the snapshot the index was built against.
    pub sub_epoch: u64,
    /// The maintainable base tables the frozen index was materialized from;
    /// `None` when stream repair is disabled (stale entries then rebuild).
    pub stream: Option<Arc<StreamIndex>>,
    /// The adaptive planner's decision record (portfolio, winning cost
    /// estimate, strategy/worker recommendation); `None` when the index was
    /// planned with a fixed strategy (`--no-adaptive`).
    pub choice: Option<PlanChoice>,
    /// Observed-execution feedback, populated after the first profiled
    /// exact run; later runs pin its kernels and admission rate.
    pub feedback: Mutex<Option<PlanFeedback>>,
}

#[derive(Debug)]
struct Slot {
    entry: Arc<CachedIndex>,
    /// Logical LRU stamp (monotone per-cache counter, not wall time).
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheMap {
    slots: HashMap<(u64, u64), Slot>,
    bytes: usize,
    /// Keys whose build panicked; probes answer [`Probe::Quarantined`].
    quarantined: HashSet<(u64, u64)>,
    /// Keys with a build currently in flight (single-flight gates).
    flights: HashMap<(u64, u64), Arc<Flight>>,
}

/// A single-flight gate: one leader builds, every concurrent misser on the
/// same `(epoch, hash)` blocks on the gate instead of duplicating the build.
#[derive(Debug)]
pub struct Flight {
    state: Mutex<Option<FlightWait>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightWait) {
        let mut st = self.state.lock().expect("flight lock poisoned");
        if st.is_none() {
            *st = Some(outcome);
        }
        self.cv.notify_all();
    }

    /// Blocks until the leader publishes an outcome.
    pub fn wait(&self) -> FlightWait {
        let mut st = self.state.lock().expect("flight lock poisoned");
        loop {
            if let Some(outcome) = st.clone() {
                return outcome;
            }
            st = self.cv.wait(st).expect("flight lock poisoned");
        }
    }
}

/// What a single-flight waiter observes when the leader finishes.
#[derive(Clone, Debug)]
pub enum FlightWait {
    /// The leader's build completed; the entry is ready (and cached when
    /// the budget allowed). The waiter must still verify the canonical
    /// *form* against its own query — a 64-bit hash collision between two
    /// concurrent queries would otherwise serve the wrong index.
    Ready(Arc<CachedIndex>),
    /// The leader's build panicked; the key is quarantined. Waiters answer
    /// `ERR E_QUARANTINED` without attempting their own build.
    Failed,
}

/// Outcome of [`IndexCache::begin`]: a cache probe that additionally
/// arbitrates concurrent misses into one leader and N−1 waiters.
pub enum FlightProbe<'a> {
    /// Verified hit.
    Hit(Arc<CachedIndex>),
    /// Key quarantined by an earlier panicked build.
    Quarantined,
    /// Hash collision with a cached entry of a different canonical form;
    /// the caller builds solo and must not insert.
    Collision,
    /// This caller is the build leader: build, then [`FlightGuard::complete`]
    /// or [`FlightGuard::fail`]. Dropping the guard without either fails
    /// the flight (unwind safety net).
    Lead(FlightGuard<'a>),
    /// This caller is the build leader *and* an outdated entry for the same
    /// canonical form was found (and removed): repair it forward instead of
    /// rebuilding when its retained stream tables allow, then `complete` as
    /// usual.
    Stale(Arc<CachedIndex>, FlightGuard<'a>),
    /// Another caller is already building this key; `wait()` blocks until
    /// its outcome.
    Wait(Arc<Flight>),
}

/// Leader-side handle of a single-flight build. Exactly one exists per
/// in-flight key; completing or dropping it releases the gate.
pub struct FlightGuard<'a> {
    cache: &'a IndexCache,
    epoch: u64,
    key: (u64, u64),
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard<'_> {
    /// Publishes a completed build: caches it (budget permitting), wakes
    /// every waiter with the entry, and releases the gate. Returns the
    /// shared entry for the leader's own use.
    pub fn complete(mut self, entry: CachedIndex) -> Arc<CachedIndex> {
        let entry = Arc::new(entry);
        self.cache.insert_arc(self.epoch, Arc::clone(&entry));
        self.release(FlightWait::Ready(Arc::clone(&entry)));
        entry
    }

    /// Publishes a failed build (the caller is responsible for quarantining
    /// the key first so waiters and later probes agree on the verdict).
    pub fn fail(mut self) {
        self.release(FlightWait::Failed);
    }

    fn release(&mut self, outcome: FlightWait) {
        self.published = true;
        {
            let mut map = self.cache.map.lock().expect("cache lock poisoned");
            map.flights.remove(&self.key);
        }
        self.flight.publish(outcome);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            // Leader unwound without publishing: fail the waiters rather
            // than leaving them blocked forever.
            self.release(FlightWait::Failed);
        }
    }
}

/// Outcome of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Entry found and canonical form verified.
    Hit,
    /// No entry under this key.
    Miss,
    /// Entry found but the canonical form differed (64-bit hash collision);
    /// treated as a miss.
    Collision,
    /// Entry found for the right canonical form but built against a
    /// different mutation sub-epoch; the slot was removed and the outdated
    /// entry returned for repair.
    Stale,
    /// The key is quarantined (its build panicked earlier); the caller must
    /// not rebuild — answer `ERR E_QUARANTINED`.
    Quarantined,
}

/// A byte-budgeted, LRU-evicting map from `(epoch, canonical hash)` to
/// frozen indexes. All operations take one short mutex; the expensive work
/// (CECI build) happens outside the lock and is inserted after the fact.
#[derive(Debug)]
pub struct IndexCache {
    map: Mutex<CacheMap>,
    budget_bytes: usize,
    clock: AtomicU64,
    /// Evictions performed over the cache's lifetime.
    evictions: AtomicU64,
}

impl IndexCache {
    /// Creates a cache bounded by `budget_bytes` (0 disables caching).
    pub fn new(budget_bytes: usize) -> Self {
        IndexCache {
            map: Mutex::new(CacheMap::default()),
            budget_bytes,
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Probes for `(epoch, canonical)` at mutation sub-epoch 0 (the state
    /// right after `LOAD`). See [`IndexCache::get_at`].
    pub fn get(&self, epoch: u64, canonical: &CanonicalQuery) -> (Probe, Option<Arc<CachedIndex>>) {
        self.get_at(epoch, 0, canonical)
    }

    /// Probes for `(epoch, canonical)` against the graph's current mutation
    /// `sub_epoch`. On a verified hit the entry's LRU stamp is refreshed and
    /// the entry returned. An entry of the right canonical form but a
    /// different sub-epoch is removed from the cache and returned under
    /// [`Probe::Stale`] so the caller can repair (or rebuild) it.
    pub fn get_at(
        &self,
        epoch: u64,
        sub_epoch: u64,
        canonical: &CanonicalQuery,
    ) -> (Probe, Option<Arc<CachedIndex>>) {
        let stamp = self.tick();
        let key = (epoch, canonical.hash());
        let mut map = self.map.lock().expect("cache lock poisoned");
        if map.quarantined.contains(&key) {
            return (Probe::Quarantined, None);
        }
        match map.slots.get_mut(&key) {
            None => (Probe::Miss, None),
            Some(slot) if slot.entry.canonical == *canonical => {
                if slot.entry.sub_epoch == sub_epoch {
                    slot.last_used = stamp;
                    (Probe::Hit, Some(Arc::clone(&slot.entry)))
                } else {
                    let slot = map.slots.remove(&key).expect("slot vanished");
                    map.bytes -= slot.entry.bytes;
                    (Probe::Stale, Some(slot.entry))
                }
            }
            Some(_) => (Probe::Collision, None),
        }
    }

    /// Quarantines `(epoch, hash)` after a panicked build. Idempotent;
    /// returns `true` the first time the key is marked. Any stale entry
    /// under the key is dropped (it predates the panic and may be suspect).
    pub fn quarantine(&self, epoch: u64, canonical: &CanonicalQuery) -> bool {
        let key = (epoch, canonical.hash());
        let mut map = self.map.lock().expect("cache lock poisoned");
        if let Some(slot) = map.slots.remove(&key) {
            map.bytes -= slot.entry.bytes;
        }
        map.quarantined.insert(key)
    }

    /// Number of quarantined keys.
    pub fn quarantined_len(&self) -> usize {
        self.map
            .lock()
            .expect("cache lock poisoned")
            .quarantined
            .len()
    }

    /// Single-flight probe at mutation sub-epoch 0. See
    /// [`IndexCache::begin_at`].
    pub fn begin(&self, epoch: u64, canonical: &CanonicalQuery) -> FlightProbe<'_> {
        self.begin_at(epoch, 0, canonical)
    }

    /// Probes for `(epoch, canonical)` at the graph's current mutation
    /// `sub_epoch` with single-flight arbitration: a verified hit returns
    /// the entry, a quarantined key or collision is reported, and a miss is
    /// split into exactly one [`FlightProbe::Lead`] (the caller that must
    /// build) with every concurrent misser on the same key receiving
    /// [`FlightProbe::Wait`]. An entry of the right form but a different
    /// sub-epoch is removed and handed to the leader as
    /// [`FlightProbe::Stale`] for repair; concurrent missers wait on the
    /// repair exactly as they would on a build.
    pub fn begin_at(
        &self,
        epoch: u64,
        sub_epoch: u64,
        canonical: &CanonicalQuery,
    ) -> FlightProbe<'_> {
        let stamp = self.tick();
        let key = (epoch, canonical.hash());
        let mut map = self.map.lock().expect("cache lock poisoned");
        if map.quarantined.contains(&key) {
            return FlightProbe::Quarantined;
        }
        let mut stale = None;
        match map.slots.get_mut(&key) {
            Some(slot) if slot.entry.canonical == *canonical => {
                if slot.entry.sub_epoch == sub_epoch {
                    slot.last_used = stamp;
                    return FlightProbe::Hit(Arc::clone(&slot.entry));
                }
                let slot = map.slots.remove(&key).expect("slot vanished");
                map.bytes -= slot.entry.bytes;
                stale = Some(slot.entry);
            }
            Some(_) => return FlightProbe::Collision,
            None => {}
        }
        if let Some(flight) = map.flights.get(&key) {
            return FlightProbe::Wait(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        map.flights.insert(key, Arc::clone(&flight));
        let guard = FlightGuard {
            cache: self,
            epoch,
            key,
            flight,
            published: false,
        };
        match stale {
            Some(entry) => FlightProbe::Stale(entry, guard),
            None => FlightProbe::Lead(guard),
        }
    }

    /// Inserts an entry built outside the lock, then evicts LRU-first until
    /// the byte budget holds. Entries larger than the whole budget are not
    /// cached at all. Returns the number of entries evicted.
    pub fn insert(&self, epoch: u64, entry: CachedIndex) -> u64 {
        self.insert_arc(epoch, Arc::new(entry))
    }

    pub(crate) fn insert_arc(&self, epoch: u64, entry: Arc<CachedIndex>) -> u64 {
        // A zero budget disables caching entirely — including zero-byte
        // entries, which would otherwise slip past the size check and leave
        // phantom slots a "disabled" cache is documented not to hold.
        if self.budget_bytes == 0 || entry.bytes > self.budget_bytes {
            return 0; // would evict everything and still not fit
        }
        let stamp = self.tick();
        let key = (epoch, entry.canonical.hash());
        let bytes = entry.bytes;
        let mut map = self.map.lock().expect("cache lock poisoned");
        if map.quarantined.contains(&key) {
            // A concurrent build panicked and poisoned this key after we
            // started building; do not resurrect it.
            return 0;
        }
        if let Some(old) = map.slots.insert(
            key,
            Slot {
                entry,
                last_used: stamp,
            },
        ) {
            map.bytes -= old.entry.bytes;
        }
        map.bytes += bytes;
        let mut evicted = 0;
        while map.bytes > self.budget_bytes {
            // LRU victim — never the entry we just inserted unless it is the
            // only one left (guarded by the budget check above).
            let victim = map
                .slots
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let slot = map.slots.remove(&k).expect("victim vanished");
                    map.bytes -= slot.entry.bytes;
                    evicted += 1;
                }
                None => break,
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drops every entry built against `epoch` (graph replaced). Returns the
    /// number of entries removed (not counted as evictions).
    pub fn evict_epoch(&self, epoch: u64) -> usize {
        let mut map = self.map.lock().expect("cache lock poisoned");
        let keys: Vec<(u64, u64)> = map
            .slots
            .keys()
            .filter(|(e, _)| *e == epoch)
            .copied()
            .collect();
        for k in &keys {
            let slot = map.slots.remove(k).expect("key vanished");
            map.bytes -= slot.entry.bytes;
        }
        // The epoch is gone; its quarantine marks are meaningless now.
        map.quarantined.retain(|(e, _)| *e != epoch);
        keys.len()
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock poisoned").slots.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.map.lock().expect("cache lock poisoned").bytes
    }

    /// Lifetime eviction count (budget pressure only).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::Ceci;
    use ceci_graph::{GraphBuilder, LabelId};
    use ceci_query::QueryGraph;

    /// Builds a real (tiny) plan+index pair so entries are representative,
    /// with a synthetic byte size to exercise the budget deterministically.
    fn entry(label: u32, bytes: usize) -> CachedIndex {
        let mut b = GraphBuilder::new();
        let x = b.add_vertex(LabelId(label));
        let y = b.add_vertex(LabelId(label));
        b.add_edge(x, y);
        let graph = b.build();
        let mut qb = GraphBuilder::new();
        let qx = qb.add_vertex(LabelId(label));
        let qy = qb.add_vertex(LabelId(label));
        qb.add_edge(qx, qy);
        let qg = qb.build();
        let query = QueryGraph::from_graph(&qg).unwrap();
        let canonical = CanonicalQuery::of(&query);
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        CachedIndex {
            canonical,
            plan: Arc::new(plan),
            ceci: Arc::new(ceci),
            bytes,
            sub_epoch: 0,
            stream: None,
            choice: None,
            feedback: Mutex::new(None),
        }
    }

    /// Like [`entry`] but stamped with a mutation sub-epoch.
    fn entry_at(label: u32, bytes: usize, sub_epoch: u64) -> CachedIndex {
        CachedIndex {
            sub_epoch,
            ..entry(label, bytes)
        }
    }

    #[test]
    fn miss_then_hit() {
        let cache = IndexCache::new(1 << 20);
        let e = entry(0, 100);
        let canonical = e.canonical.clone();
        assert_eq!(cache.get(1, &canonical).0, Probe::Miss);
        cache.insert(1, e);
        let (probe, got) = cache.get(1, &canonical);
        assert_eq!(probe, Probe::Hit);
        assert!(got.is_some());
        assert_eq!(cache.bytes(), 100);
    }

    #[test]
    fn epochs_partition_the_keyspace() {
        let cache = IndexCache::new(1 << 20);
        let e = entry(0, 100);
        let canonical = e.canonical.clone();
        cache.insert(1, e);
        assert_eq!(cache.get(2, &canonical).0, Probe::Miss);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let cache = IndexCache::new(250);
        let a = entry(0, 100);
        let b = entry(1, 100);
        let c = entry(2, 100);
        let (ka, kb, kc) = (
            a.canonical.clone(),
            b.canonical.clone(),
            c.canonical.clone(),
        );
        cache.insert(1, a);
        cache.insert(1, b);
        // Touch `a` so `b` is the LRU victim.
        assert_eq!(cache.get(1, &ka).0, Probe::Hit);
        cache.insert(1, c);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(1, &kb).0, Probe::Miss, "LRU entry evicted");
        assert_eq!(cache.get(1, &ka).0, Probe::Hit);
        assert_eq!(cache.get(1, &kc).0, Probe::Hit);
        assert!(cache.bytes() <= 250);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let cache = IndexCache::new(50);
        let e = entry(0, 100);
        let canonical = e.canonical.clone();
        cache.insert(1, e);
        assert_eq!(cache.get(1, &canonical).0, Probe::Miss);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn evict_epoch_sweeps_only_that_epoch() {
        let cache = IndexCache::new(1 << 20);
        let a = entry(0, 100);
        let b = entry(1, 100);
        let (ka, kb) = (a.canonical.clone(), b.canonical.clone());
        cache.insert(1, a);
        cache.insert(2, b);
        assert_eq!(cache.evict_epoch(1), 1);
        assert_eq!(cache.get(1, &ka).0, Probe::Miss);
        assert_eq!(cache.get(2, &kb).0, Probe::Hit);
        assert_eq!(cache.bytes(), 100);
    }

    #[test]
    fn concurrent_misses_converge_on_one_entry() {
        // Many threads race the classic miss → build → insert sequence on
        // the same key. Whoever inserts last wins the slot (entries for the
        // same canonical query are interchangeable); the byte ledger must
        // charge exactly one entry and every later probe must hit.
        let cache = Arc::new(IndexCache::new(1 << 20));
        let proto = entry(0, 128);
        let canonical = proto.canonical.clone();
        drop(proto);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let canonical = canonical.clone();
                std::thread::spawn(move || {
                    let (probe, _) = cache.get(7, &canonical);
                    assert_ne!(probe, Probe::Quarantined);
                    if probe != Probe::Hit {
                        // Simulate the out-of-lock build, then insert.
                        cache.insert(7, entry(0, 128));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            cache.len(),
            1,
            "duplicate inserts must replace, not pile up"
        );
        assert_eq!(cache.bytes(), 128, "byte ledger must count the entry once");
        assert_eq!(cache.get(7, &canonical).0, Probe::Hit);
    }

    #[test]
    fn quarantine_drops_blocks_and_clears_with_epoch() {
        let cache = IndexCache::new(1 << 20);
        let e = entry(0, 100);
        let canonical = e.canonical.clone();
        cache.insert(1, e);
        assert_eq!(cache.get(1, &canonical).0, Probe::Hit);

        // Quarantine evicts the suspect entry and is idempotent.
        assert!(cache.quarantine(1, &canonical));
        assert!(!cache.quarantine(1, &canonical));
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.quarantined_len(), 1);
        assert_eq!(cache.get(1, &canonical).0, Probe::Quarantined);

        // A build that was already in flight when the key was poisoned
        // must not resurrect it.
        assert_eq!(cache.insert(1, entry(0, 100)), 0);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(1, &canonical).0, Probe::Quarantined);

        // Other epochs are unaffected; re-LOAD (epoch bump) clears marks.
        assert_eq!(cache.get(2, &canonical).0, Probe::Miss);
        cache.evict_epoch(1);
        assert_eq!(cache.quarantined_len(), 0);
        assert_eq!(cache.get(1, &canonical).0, Probe::Miss);
    }

    #[test]
    fn multi_victim_eviction_follows_lru_order() {
        // One big insert forces several evictions at once; victims must go
        // strictly least-recently-used first, and the newcomer survives.
        let cache = IndexCache::new(400);
        let (a, b, c) = (entry(0, 100), entry(1, 100), entry(2, 100));
        let (ka, kb, kc) = (
            a.canonical.clone(),
            b.canonical.clone(),
            c.canonical.clone(),
        );
        cache.insert(1, a);
        cache.insert(1, b);
        cache.insert(1, c);
        // Recency now a < b < c; touching `a` makes it the most recent.
        assert_eq!(cache.get(1, &ka).0, Probe::Hit);
        // 300 + 250 = 550: must evict the two LRU entries (b, then c) to
        // get back under 400; evicting only one would leave 450.
        let big = entry(3, 250);
        let kbig = big.canonical.clone();
        assert_eq!(cache.insert(1, big), 2);
        assert_eq!(cache.get(1, &kb).0, Probe::Miss, "oldest victim first");
        assert_eq!(cache.get(1, &kc).0, Probe::Miss, "next-oldest second");
        assert_eq!(cache.get(1, &ka).0, Probe::Hit, "recently-touched survives");
        assert_eq!(
            cache.get(1, &kbig).0,
            Probe::Hit,
            "newcomer never self-evicts"
        );
        assert_eq!(cache.bytes(), 350);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn zero_budget_disables_caching_even_for_zero_byte_entries() {
        let cache = IndexCache::new(0);
        let e = entry(0, 0);
        let canonical = e.canonical.clone();
        assert_eq!(cache.insert(1, e), 0);
        assert_eq!(cache.len(), 0, "disabled cache must hold no slots");
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.get(1, &canonical).0, Probe::Miss);
    }

    #[test]
    fn quarantine_then_reload_restores_byte_baseline() {
        // The full lifecycle the server drives: cached entry → build panic
        // quarantines the key (bytes drop to zero, nothing leaks) →
        // re-LOAD bumps the epoch and sweeps the marks → rebuild under the
        // new epoch hits again with bytes back at the original baseline.
        let cache = IndexCache::new(1 << 20);
        let e = entry(0, 4096);
        let canonical = e.canonical.clone();
        let baseline = e.bytes;
        cache.insert(1, e);
        assert_eq!(cache.bytes(), baseline);

        // Build panic under epoch 1.
        assert!(cache.quarantine(1, &canonical));
        assert_eq!(cache.bytes(), 0, "quarantine must release the bytes");
        assert_eq!(cache.get(1, &canonical).0, Probe::Quarantined);
        // Insert racing the quarantine must not re-charge the ledger.
        assert_eq!(cache.insert(1, entry(0, 4096)), 0);
        assert_eq!(cache.bytes(), 0, "blocked insert must not charge bytes");

        // Re-LOAD: old epoch swept, new epoch rebuilds cleanly.
        cache.evict_epoch(1);
        assert_eq!(cache.quarantined_len(), 0);
        assert_eq!(cache.get(2, &canonical).0, Probe::Miss);
        cache.insert(2, entry(0, 4096));
        assert_eq!(cache.get(2, &canonical).0, Probe::Hit);
        assert_eq!(
            cache.bytes(),
            baseline,
            "bytes must return exactly to the pre-quarantine baseline"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn singleflight_one_leader_rest_wait() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let proto = entry(0, 128);
        let canonical = proto.canonical.clone();
        drop(proto);
        let leaders = Arc::new(AtomicU64::new(0));
        let waits = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let canonical = canonical.clone();
                let leaders = Arc::clone(&leaders);
                let waits = Arc::clone(&waits);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match cache.begin(7, &canonical) {
                        FlightProbe::Lead(guard) => {
                            leaders.fetch_add(1, Ordering::SeqCst);
                            // Linger so the others pile onto the gate.
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            guard.complete(entry(0, 128));
                        }
                        FlightProbe::Wait(flight) => {
                            waits.fetch_add(1, Ordering::SeqCst);
                            match flight.wait() {
                                FlightWait::Ready(e) => assert_eq!(e.canonical, canonical),
                                FlightWait::Failed => panic!("leader failed"),
                            }
                        }
                        FlightProbe::Hit(_) => {} // raced past the flight
                        other => panic!(
                            "unexpected probe: {}",
                            match other {
                                FlightProbe::Quarantined => "quarantined",
                                FlightProbe::Collision => "collision",
                                _ => unreachable!(),
                            }
                        ),
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one build");
        assert!(waits.load(Ordering::SeqCst) >= 1, "someone waited");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 128);
        assert!(matches!(cache.begin(7, &canonical), FlightProbe::Hit(_)));
    }

    #[test]
    fn singleflight_failed_leader_fails_waiters() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let proto = entry(0, 64);
        let canonical = proto.canonical.clone();
        drop(proto);
        let guard = match cache.begin(3, &canonical) {
            FlightProbe::Lead(g) => g,
            _ => panic!("first probe must lead"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let canonical = canonical.clone();
            std::thread::spawn(move || match cache.begin(3, &canonical) {
                FlightProbe::Wait(flight) => flight.wait(),
                _ => panic!("second probe must wait"),
            })
        };
        // Give the waiter time to block, then fail like the server does on
        // a panicked build: quarantine first, then release the gate.
        std::thread::sleep(std::time::Duration::from_millis(50));
        cache.quarantine(3, &canonical);
        guard.fail();
        assert!(matches!(waiter.join().unwrap(), FlightWait::Failed));
        assert!(matches!(
            cache.begin(3, &canonical),
            FlightProbe::Quarantined
        ));
    }

    #[test]
    fn singleflight_dropped_guard_releases_gate() {
        let cache = IndexCache::new(1 << 20);
        let proto = entry(0, 64);
        let canonical = proto.canonical.clone();
        drop(proto);
        {
            let _guard = match cache.begin(5, &canonical) {
                FlightProbe::Lead(g) => g,
                _ => panic!("must lead"),
            };
            // Unwind without complete()/fail().
        }
        // The gate is gone: the next probe leads again instead of waiting.
        assert!(matches!(cache.begin(5, &canonical), FlightProbe::Lead(_)));
    }

    #[test]
    fn singleflight_completion_answers_even_when_not_cached() {
        // Zero budget: the entry cannot be cached, but waiters still get it.
        let cache = Arc::new(IndexCache::new(0));
        let proto = entry(0, 64);
        let canonical = proto.canonical.clone();
        drop(proto);
        let guard = match cache.begin(9, &canonical) {
            FlightProbe::Lead(g) => g,
            _ => panic!("must lead"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            let canonical = canonical.clone();
            std::thread::spawn(move || match cache.begin(9, &canonical) {
                FlightProbe::Wait(flight) => flight.wait(),
                _ => panic!("must wait"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        let got = guard.complete(entry(0, 64));
        assert_eq!(got.canonical, canonical);
        match waiter.join().unwrap() {
            FlightWait::Ready(e) => assert_eq!(e.canonical, canonical),
            FlightWait::Failed => panic!("leader completed"),
        }
        assert_eq!(cache.len(), 0, "zero budget still caches nothing");
    }

    #[test]
    fn collision_detected_by_form_verification() {
        let cache = IndexCache::new(1 << 20);
        let e = entry(0, 100);
        let stored_hash = e.canonical.hash();
        cache.insert(1, e);
        // Forge a canonical form with the same hash but a different
        // signature: a real collision would look exactly like this.
        let forged = CanonicalQuery::forged_for_tests(vec![1, 2, 3], stored_hash);
        let (probe, got) = cache.get(1, &forged);
        assert_eq!(probe, Probe::Collision);
        assert!(got.is_none());
    }

    #[test]
    fn mutation_sub_epoch_invalidates_without_epoch_bump() {
        // Regression for streaming mutations: an index cached before an
        // ADDEDGE/DELEDGE must never be served verbatim afterwards, even
        // though the graph's load epoch is unchanged.
        let cache = IndexCache::new(1 << 20);
        let e = entry_at(0, 100, 0);
        let canonical = e.canonical.clone();
        cache.insert(1, e);
        assert_eq!(cache.get_at(1, 0, &canonical).0, Probe::Hit);

        // Mutation bumps the graph to sub-epoch 1: the cached entry is
        // stale, gets removed, and is handed back for repair.
        let (probe, old) = cache.get_at(1, 1, &canonical);
        assert_eq!(probe, Probe::Stale);
        let old = old.expect("stale probe must return the outdated entry");
        assert_eq!(old.sub_epoch, 0);
        assert_eq!(cache.len(), 0, "stale slot must be removed");
        assert_eq!(cache.bytes(), 0, "stale bytes must be released");

        // The repaired entry, re-inserted at the new sub-epoch, hits.
        cache.insert(1, entry_at(0, 100, 1));
        assert_eq!(cache.get_at(1, 1, &canonical).0, Probe::Hit);
        // ...and a probe at yet another sub-epoch goes stale again.
        assert_eq!(cache.get_at(1, 2, &canonical).0, Probe::Stale);
    }

    #[test]
    fn singleflight_stale_entry_elects_repair_leader() {
        let cache = Arc::new(IndexCache::new(1 << 20));
        let e = entry_at(0, 100, 3);
        let canonical = e.canonical.clone();
        cache.insert(1, e);
        // Probe at sub-epoch 5: the caller leads with the old entry in hand.
        let (old, guard) = match cache.begin_at(1, 5, &canonical) {
            FlightProbe::Stale(old, guard) => (old, guard),
            _ => panic!("stale entry must elect a repair leader"),
        };
        assert_eq!(old.sub_epoch, 3);
        // A concurrent misser waits on the repair flight, not the old entry.
        let waiter = {
            let cache = Arc::clone(&cache);
            let canonical = canonical.clone();
            std::thread::spawn(move || match cache.begin_at(1, 5, &canonical) {
                FlightProbe::Wait(flight) => flight.wait(),
                _ => panic!("second probe must wait on the repair"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        let repaired = guard.complete(entry_at(0, 100, 5));
        assert_eq!(repaired.sub_epoch, 5);
        match waiter.join().unwrap() {
            FlightWait::Ready(e) => assert_eq!(e.sub_epoch, 5),
            FlightWait::Failed => panic!("repair completed"),
        }
        assert!(matches!(
            cache.begin_at(1, 5, &canonical),
            FlightProbe::Hit(_)
        ));
    }
}
