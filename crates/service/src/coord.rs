//! Coordinator side of multi-process sharded serving: scatter a query's
//! pivots across `ceci-shard` processes, steal work from idle shards, and
//! recover from shard death/stalls without ever changing the answer.
//!
//! ## Protocol
//!
//! Each shard driver (one thread per shard) holds one connection. After
//! every (re)connect it re-sends `PREPARE` (idempotent) pinning the
//! coordinator's full-graph plan decisions, then loops: claim a pivot on
//! the result board, `EXEC <name> <pivot> <epoch>`, commit the count.
//!
//! ## Recovery invariant
//!
//! The total is `Σ` per-pivot committed counts, and each pivot's count is a
//! pure function of `(graph, plan, pivot)` — independent of *which* shard
//! executes it or how many times. The [`ResultBoard`] makes commits
//! exactly-once (first commit wins; stale epochs are rejected), so any
//! schedule of kills, stalls, restarts, steals, and speculative
//! re-executions produces the bit-identical total of a single-process run.
//!
//! * A driver whose RPC fails transiently retries with capped exponential
//!   backoff ([`RetryPolicy`]) after reconnecting.
//! * A driver that exhausts its attempt budget declares its shard dead:
//!   the shard's uncommitted pivots are *re-scattered* to survivors with a
//!   bumped ownership epoch, so a zombie commit under the old epoch is
//!   rejected. The driver then keeps trying to rejoin at a slow cadence —
//!   a restarted shard process is re-adopted automatically.
//! * Idle drivers steal queued pivots from the longest queue and
//!   speculatively re-execute other shards' in-flight pivots (each at most
//!   once per driver); first commit wins either way.
//! * If every shard is dead — or a hard wall-clock passes — the
//!   coordinator executes the remaining pivots locally on the full graph.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ceci_core::metrics::Counters;
use ceci_core::sink::CountSink;
use ceci_core::{BuildOptions, Ceci, EnumOptions, Enumerator};
use ceci_distributed::{distribute_pivots, ClusterConfig};
use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::client::{Client, RetryPolicy};
use crate::protocol::ErrorCode;

/// Owner id used by the coordinator's local-fallback execution.
const LOCAL_OWNER: usize = usize::MAX - 1;
/// Owner id of an unclaimed slot.
const NO_OWNER: usize = usize::MAX;

/// Per-pivot slot on the result board.
#[derive(Debug)]
struct PivotSlot {
    pivot: VertexId,
    /// Ownership epoch; bumped on re-scatter so a dead shard's late commit
    /// is recognizably stale.
    epoch: u32,
    owner: usize,
    claimed: bool,
    committed: Option<u64>,
}

/// First-commit-wins, epoch-guarded pivot result board — the cross-process
/// port of the in-process simulator's exactly-once board.
#[derive(Debug)]
pub struct ResultBoard {
    slots: Vec<Mutex<PivotSlot>>,
    /// Pivot → slot index (pivots are sorted; binary search).
    pivots: Vec<VertexId>,
    remaining: AtomicUsize,
    /// Commits rejected as stale (wrong epoch) or duplicate.
    stale_rejected: AtomicU64,
}

impl ResultBoard {
    /// A board over `pivots` (deduplicated, sorted internally).
    pub fn new(pivots: &[VertexId]) -> ResultBoard {
        let mut sorted: Vec<VertexId> = pivots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let slots = sorted
            .iter()
            .map(|&p| {
                Mutex::new(PivotSlot {
                    pivot: p,
                    epoch: 0,
                    owner: NO_OWNER,
                    claimed: false,
                    committed: None,
                })
            })
            .collect();
        ResultBoard {
            remaining: AtomicUsize::new(sorted.len()),
            pivots: sorted,
            slots,
            stale_rejected: AtomicU64::new(0),
        }
    }

    fn slot(&self, pivot: VertexId) -> Option<&Mutex<PivotSlot>> {
        self.pivots
            .binary_search(&pivot)
            .ok()
            .map(|i| &self.slots[i])
    }

    /// Uncommitted pivots (committed slots never reappear).
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::SeqCst)
    }

    /// Commits rejected for a stale epoch or an already-committed slot.
    pub fn stale_rejected(&self) -> u64 {
        self.stale_rejected.load(Ordering::Relaxed)
    }

    /// Claims `pivot` for `owner` and returns the current epoch (`None`
    /// when already committed — nothing to do).
    pub fn claim(&self, pivot: VertexId, owner: usize) -> Option<u32> {
        let slot = self.slot(pivot)?;
        let mut s = slot.lock().expect("board slot poisoned");
        if s.committed.is_some() {
            return None;
        }
        s.owner = owner;
        s.claimed = true;
        Some(s.epoch)
    }

    /// Commits `count` for `pivot` under `epoch`. Returns `true` if this
    /// commit won (first, with a current epoch); `false` when stale or
    /// duplicate — the count is then discarded.
    pub fn commit(&self, pivot: VertexId, epoch: u32, count: u64) -> bool {
        let Some(slot) = self.slot(pivot) else {
            return false;
        };
        let mut s = slot.lock().expect("board slot poisoned");
        if s.committed.is_some() || s.epoch != epoch {
            self.stale_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        s.committed = Some(count);
        self.remaining.fetch_sub(1, Ordering::SeqCst);
        true
    }

    /// Re-scatters a dead owner's claimed-but-uncommitted pivots: bumps
    /// their epoch (so the dead owner's late commits are rejected), clears
    /// the claim, and returns them for re-queueing.
    pub fn rescatter(&self, dead_owner: usize) -> Vec<VertexId> {
        let mut orphans = Vec::new();
        for slot in &self.slots {
            let mut s = slot.lock().expect("board slot poisoned");
            if s.committed.is_none() && s.claimed && s.owner == dead_owner {
                s.epoch += 1;
                s.claimed = false;
                s.owner = NO_OWNER;
                orphans.push(s.pivot);
            }
        }
        orphans
    }

    /// In-flight pivots (claimed, uncommitted) owned by someone other than
    /// `not_owner`, with their current epoch — speculation targets.
    pub fn in_flight_of_others(&self, not_owner: usize) -> Vec<(VertexId, u32)> {
        let mut v = Vec::new();
        for slot in &self.slots {
            let s = slot.lock().expect("board slot poisoned");
            if s.committed.is_none() && s.claimed && s.owner != not_owner && s.owner != NO_OWNER {
                v.push((s.pivot, s.epoch));
            }
        }
        v
    }

    /// All uncommitted pivots (for the local fallback).
    pub fn uncommitted(&self) -> Vec<VertexId> {
        self.slots
            .iter()
            .map(|s| s.lock().expect("board slot poisoned"))
            .filter(|s| s.committed.is_none())
            .map(|s| s.pivot)
            .collect()
    }

    /// Total of all committed counts. Only meaningful once
    /// [`ResultBoard::remaining`] is 0.
    pub fn total(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| {
                s.lock()
                    .expect("board slot poisoned")
                    .committed
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// Shard liveness as seen by the coordinator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardLiveness {
    /// Not yet probed.
    Unknown,
    /// Last RPC or heartbeat succeeded.
    Alive,
    /// Declared dead after exhausting the attempt budget.
    Dead,
}

/// Per-shard status block (all atomics; read by STATS/PROM while drivers
/// write).
#[derive(Debug)]
pub struct ShardStatus {
    /// The shard's address.
    pub addr: String,
    state: AtomicU8,
    /// Successful reconnects after a failure or death.
    pub reconnects: AtomicU64,
    /// Times this shard's pivots were re-scattered to survivors.
    pub rescatters: AtomicU64,
    /// Pivot counts this shard's driver committed.
    pub executed: AtomicU64,
    /// Commits rejected by the board (stale epoch / already committed).
    pub commits_rejected: AtomicU64,
}

impl ShardStatus {
    fn new(addr: String) -> ShardStatus {
        ShardStatus {
            addr,
            state: AtomicU8::new(0),
            reconnects: AtomicU64::new(0),
            rescatters: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            commits_rejected: AtomicU64::new(0),
        }
    }

    /// Current liveness.
    pub fn liveness(&self) -> ShardLiveness {
        match self.state.load(Ordering::Relaxed) {
            1 => ShardLiveness::Alive,
            2 => ShardLiveness::Dead,
            _ => ShardLiveness::Unknown,
        }
    }

    /// Sets liveness.
    pub fn set_liveness(&self, l: ShardLiveness) {
        let v = match l {
            ShardLiveness::Unknown => 0,
            ShardLiveness::Alive => 1,
            ShardLiveness::Dead => 2,
        };
        self.state.store(v, Ordering::Relaxed);
    }
}

/// The coordinator's shard table.
#[derive(Debug)]
pub struct ShardSet {
    /// One status block per configured shard, in CLI order.
    pub shards: Vec<ShardStatus>,
}

impl ShardSet {
    /// Builds the table from the configured addresses.
    pub fn new(addrs: &[String]) -> ShardSet {
        ShardSet {
            shards: addrs.iter().cloned().map(ShardStatus::new).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when no shards are configured.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Shards currently alive.
    pub fn alive(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.liveness() == ShardLiveness::Alive)
            .count()
    }
}

/// Coordinator tunables.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// Socket read/write timeout per shard RPC.
    pub io_timeout: Duration,
    /// TCP connect timeout per dial.
    pub connect_timeout: Duration,
    /// Backoff policy between RPC attempts.
    pub retry: RetryPolicy,
    /// Consecutive failed attempts before a shard is declared dead and its
    /// pivots re-scattered.
    pub attempt_budget: u32,
    /// Cadence at which a dead shard's driver retries rejoining.
    pub rejoin_interval: Duration,
    /// Hard wall: past this the coordinator finishes everything locally.
    pub hard_wall: Duration,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            io_timeout: Duration::from_millis(5_000),
            connect_timeout: Duration::from_millis(1_000),
            retry: RetryPolicy::default(),
            attempt_budget: 3,
            rejoin_interval: Duration::from_millis(200),
            hard_wall: Duration::from_secs(120),
        }
    }
}

/// A typed coordinator startup failure (maps onto `E_SHARD`).
#[derive(Debug)]
pub struct CoordError {
    /// Which shard failed validation.
    pub addr: String,
    /// The underlying failure.
    pub reason: String,
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shard {} unreachable: {}",
            ErrorCode::Shard.as_str(),
            self.addr,
            self.reason
        )
    }
}

impl std::error::Error for CoordError {}

/// One PING round-trip against `addr` under the coordinator timeouts.
pub fn probe(addr: &str, config: &CoordConfig) -> std::io::Result<()> {
    let mut client = Client::connect_with_timeout(addr, config.connect_timeout)?;
    client.set_io_timeout(Some(config.io_timeout))?;
    let resp = client.request("PING")?;
    if resp.is_ok() {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected PING answer: {}", resp.terminal),
        ))
    }
}

/// A joinable shard-heartbeat thread. The old server-side heartbeat was
/// spawned fire-and-forget and never joined, so a shutting-down server
/// could race its own probe traffic; this handle owns the thread and
/// [`HeartbeatHandle::stop`] joins it with a deadline.
pub struct HeartbeatHandle {
    stop: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Signals the heartbeat loop to exit and joins it, waiting at most
    /// `deadline`. Returns `true` when the thread actually finished —
    /// `false` means it is wedged mid-probe (e.g. a shard dial hanging
    /// past its connect timeout) and was leaked rather than hung on.
    pub fn stop(mut self, deadline: Duration) -> bool {
        {
            let (lock, cvar) = &*self.stop;
            *lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            cvar.notify_all();
        }
        let Some(thread) = self.thread.take() else {
            return true;
        };
        let t0 = std::time::Instant::now();
        while !thread.is_finished() {
            if t0.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        thread.join().is_ok()
    }
}

/// Spawns the coordinator heartbeat: PING every shard each `interval` so
/// `STATS` shows per-shard liveness even between queries. The loop sleeps
/// on a condvar, so [`HeartbeatHandle::stop`] interrupts it promptly
/// instead of waiting out the interval.
pub fn spawn_heartbeat(
    shards: Arc<ShardSet>,
    config: CoordConfig,
    interval: Duration,
) -> std::io::Result<HeartbeatHandle> {
    let stop = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("ceci-heartbeat".to_string())
        .spawn(move || loop {
            {
                let (lock, cvar) = &*stop_flag;
                let mut stopped = lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while !*stopped {
                    let (guard, timed_out) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    stopped = guard;
                    if timed_out.timed_out() {
                        break;
                    }
                }
                if *stopped {
                    return;
                }
            }
            for status in &shards.shards {
                match probe(&status.addr, &config) {
                    Ok(()) => status.set_liveness(ShardLiveness::Alive),
                    Err(_) => status.set_liveness(ShardLiveness::Dead),
                }
            }
        })?;
    Ok(HeartbeatHandle {
        stop,
        thread: Some(thread),
    })
}

/// Validates every configured shard at coordinator startup: each must
/// answer PING within the retry budget (with backoff between attempts) or
/// startup fails with a typed [`CoordError`] instead of a panic.
pub fn validate_shards(set: &ShardSet, config: &CoordConfig) -> Result<(), CoordError> {
    for status in &set.shards {
        let mut last = String::new();
        let mut ok = false;
        for attempt in 0..=config.attempt_budget {
            match probe(&status.addr, config) {
                Ok(()) => {
                    ok = true;
                    break;
                }
                Err(e) => last = e.to_string(),
            }
            if attempt < config.attempt_budget {
                std::thread::sleep(config.retry.backoff(attempt));
            }
        }
        if ok {
            status.set_liveness(ShardLiveness::Alive);
        } else {
            status.set_liveness(ShardLiveness::Dead);
            return Err(CoordError {
                addr: status.addr.clone(),
                reason: format!("{last} (after {} attempts)", config.attempt_budget + 1),
            });
        }
    }
    Ok(())
}

/// Formats the `PREPARE` line pinning `plan`'s decisions under `name`.
pub fn prepare_line(name: &str, query_path: &str, plan: &QueryPlan, radius: usize) -> String {
    let order: Vec<String> = plan
        .matching_order()
        .iter()
        .map(|u| u.0.to_string())
        .collect();
    let mut line = format!(
        "PREPARE {name} {query_path} ROOT {} ORDER {} RADIUS {radius}",
        plan.root().0,
        order.join(",")
    );
    let sym = plan.symmetry_constraints();
    if !sym.is_empty() {
        let pairs: Vec<String> = sym
            .iter()
            .map(|c| format!("{}:{}", c.smaller.0, c.larger.0))
            .collect();
        line.push_str(" SYM ");
        line.push_str(&pairs.join(","));
    }
    if plan.symmetry_complete() {
        line.push_str(" SYMCOMPLETE");
    }
    line
}

/// The query-tree radius used for fragment extraction.
pub fn plan_radius(plan: &QueryPlan) -> usize {
    plan.tree()
        .bfs_order()
        .iter()
        .map(|&u| plan.tree().depth(u))
        .max()
        .unwrap_or(0) as usize
}

/// Outcome of one scattered query.
#[derive(Debug)]
pub struct ScatterReport {
    /// The total embedding count (bit-identical to single-process).
    pub total: u64,
    /// Pivots executed and committed via shard RPCs.
    pub shard_commits: u64,
    /// Pivots finished by the coordinator's local fallback.
    pub local_fallback: u64,
    /// Re-scatter events (a shard declared dead mid-query).
    pub rescatters: u64,
    /// Commits the board rejected as stale/duplicate.
    pub stale_rejected: u64,
    /// Reconnects performed across all drivers.
    pub reconnects: u64,
    /// Wall time of the scattered execution.
    pub wall: Duration,
}

/// Why a shard RPC attempt failed.
enum RpcFailure {
    /// Transport-level (reset, timeout, EOF): reconnect and retry.
    Io,
    /// The shard answered `ERR` (e.g. unknown PREPARE handle after a
    /// restart): re-`PREPARE` and retry.
    Refused,
}

/// Executes `EXEC` for one pivot over an established client.
fn rpc_exec(
    client: &mut Client,
    name: &str,
    pivot: VertexId,
    epoch: u32,
) -> Result<u64, RpcFailure> {
    let line = format!("EXEC {name} {} {epoch}", pivot.0);
    match client.request(&line) {
        Ok(resp) if resp.is_ok() => resp.field_u64("count").ok_or(RpcFailure::Refused),
        Ok(_) => Err(RpcFailure::Refused),
        Err(_) => Err(RpcFailure::Io),
    }
}

/// Counts one pivot's cluster locally on the full graph — the coordinator
/// fallback; bit-identical to the shard-side fragment execution.
fn exec_local(full: &Graph, plan: &QueryPlan, pivot: VertexId) -> u64 {
    let ceci = Ceci::build_for_pivots(full, plan, BuildOptions::default(), vec![pivot]);
    let mut enumerator = Enumerator::new(full, plan, &ceci, EnumOptions::default());
    let mut counters = Counters::default();
    let mut sink = CountSink::unbounded();
    for &(p, _) in ceci.pivots() {
        enumerator.enumerate_cluster(p, &mut sink, &mut counters);
    }
    sink.count()
}

/// Shared work queues: one deque per shard, stealable.
struct WorkQueues {
    queues: Vec<Mutex<VecDeque<VertexId>>>,
}

impl WorkQueues {
    fn new(assignment: Vec<Vec<VertexId>>) -> WorkQueues {
        WorkQueues {
            queues: assignment
                .into_iter()
                .map(|v| Mutex::new(v.into()))
                .collect(),
        }
    }

    fn pop(&self, idx: usize) -> Option<VertexId> {
        self.queues[idx].lock().expect("queue poisoned").pop_front()
    }

    fn push_front(&self, idx: usize, p: VertexId) {
        self.queues[idx]
            .lock()
            .expect("queue poisoned")
            .push_front(p);
    }

    /// Steals up to half of the longest other queue (back half, preserving
    /// the victim's front-of-queue locality).
    fn steal(&self, thief: usize) -> Option<VertexId> {
        let victim = (0..self.queues.len())
            .filter(|&i| i != thief)
            .max_by_key(|&i| self.queues[i].lock().expect("queue poisoned").len())?;
        let mut vq = self.queues[victim].lock().expect("queue poisoned");
        let n = vq.len();
        if n == 0 {
            return None;
        }
        let take = (n / 2).max(1);
        let stolen: Vec<VertexId> = (0..take).filter_map(|_| vq.pop_back()).collect();
        drop(vq);
        let mut tq = self.queues[thief].lock().expect("queue poisoned");
        for p in stolen {
            tq.push_back(p);
        }
        tq.pop_front()
    }

    /// Distributes orphaned pivots round-robin over every queue except
    /// `except` (all queues when `except` is out of range).
    fn distribute(&self, orphans: &[VertexId], except: usize) {
        let targets: Vec<usize> = (0..self.queues.len()).filter(|&i| i != except).collect();
        if targets.is_empty() {
            // Sole shard: give them back to it for the rejoin path.
            let mut q = self.queues[except].lock().expect("queue poisoned");
            q.extend(orphans.iter().copied());
            return;
        }
        for (k, &p) in orphans.iter().enumerate() {
            self.queues[targets[k % targets.len()]]
                .lock()
                .expect("queue poisoned")
                .push_back(p);
        }
    }
}

/// Runs one query scattered over `shards`, recovering from any shard
/// failures, and returns the exact total.
///
/// `plan` must be built against the full graph; `query_path` must be
/// readable by the shard processes (they re-load and re-validate it).
pub fn scatter_match(
    full: &Graph,
    plan: &QueryPlan,
    query_path: &str,
    handle: &str,
    shards: &ShardSet,
    config: &CoordConfig,
) -> ScatterReport {
    let t0 = Instant::now();
    let pivots = plan.initial_candidates(plan.root()).to_vec();
    let board = ResultBoard::new(&pivots);
    let radius = plan_radius(plan);
    let prepare = prepare_line(handle, query_path, plan, radius);
    let cluster = ClusterConfig {
        machines: shards.len().max(1),
        ..Default::default()
    };
    let partition = distribute_pivots(full, &pivots, &cluster);
    let queues = WorkQueues::new(partition.assignment);
    let rescatters = AtomicU64::new(0);
    let reconnects = AtomicU64::new(0);
    let shard_commits = AtomicU64::new(0);
    let local_fallback = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (idx, status) in shards.shards.iter().enumerate() {
            let board = &board;
            let queues = &queues;
            let prepare = &prepare;
            let rescatters = &rescatters;
            let reconnects = &reconnects;
            let shard_commits = &shard_commits;
            scope.spawn(move || {
                drive_shard(DriverCtx {
                    idx,
                    status,
                    board,
                    queues,
                    prepare,
                    handle,
                    config,
                    t0,
                    rescatters,
                    reconnects,
                    shard_commits,
                });
            });
        }
        // Coordinator main loop: watch for the all-dead / hard-wall
        // conditions and finish the remainder locally so the query always
        // terminates with the exact answer.
        loop {
            if board.remaining() == 0 {
                break;
            }
            let all_dead = !shards.is_empty()
                && shards
                    .shards
                    .iter()
                    .all(|s| s.liveness() == ShardLiveness::Dead);
            let past_wall = t0.elapsed() > config.hard_wall;
            if shards.is_empty() || all_dead || past_wall {
                for p in board.uncommitted() {
                    if let Some(epoch) = board.claim(p, LOCAL_OWNER) {
                        let count = exec_local(full, plan, p);
                        if board.commit(p, epoch, count) {
                            local_fallback.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    });

    ScatterReport {
        total: board.total(),
        shard_commits: shard_commits.load(Ordering::Relaxed),
        local_fallback: local_fallback.load(Ordering::Relaxed),
        rescatters: rescatters.load(Ordering::Relaxed),
        stale_rejected: board.stale_rejected(),
        reconnects: reconnects.load(Ordering::Relaxed),
        wall: t0.elapsed(),
    }
}

struct DriverCtx<'a> {
    idx: usize,
    status: &'a ShardStatus,
    board: &'a ResultBoard,
    queues: &'a WorkQueues,
    prepare: &'a str,
    handle: &'a str,
    config: &'a CoordConfig,
    t0: Instant,
    rescatters: &'a AtomicU64,
    reconnects: &'a AtomicU64,
    shard_commits: &'a AtomicU64,
}

/// Dials the shard and re-sends `PREPARE` (idempotent) so `EXEC`s find the
/// handle even after a shard restart wiped its plan store.
fn connect_and_prepare(ctx: &DriverCtx<'_>) -> std::io::Result<Client> {
    let mut client = Client::connect_with_timeout(&ctx.status.addr, ctx.config.connect_timeout)?;
    client.set_io_timeout(Some(ctx.config.io_timeout))?;
    let resp = client.request(ctx.prepare)?;
    if resp.is_ok() {
        Ok(client)
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("PREPARE refused: {}", resp.terminal),
        ))
    }
}

fn drive_shard(ctx: DriverCtx<'_>) {
    let mut client: Option<Client> = None;
    let mut failures = 0u32;
    let mut ever_connected = false;
    let mut speculated: HashSet<VertexId> = HashSet::new();
    loop {
        if ctx.board.remaining() == 0 || ctx.t0.elapsed() > ctx.config.hard_wall {
            return;
        }
        // (Re)establish the connection.
        if client.is_none() {
            match connect_and_prepare(&ctx) {
                Ok(c) => {
                    client = Some(c);
                    if ever_connected {
                        ctx.reconnects.fetch_add(1, Ordering::Relaxed);
                        ctx.status.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    ever_connected = true;
                    ctx.status.set_liveness(ShardLiveness::Alive);
                    failures = 0;
                }
                Err(_) => {
                    failures += 1;
                    if failures > ctx.config.attempt_budget {
                        declare_dead(&ctx);
                        failures = 0;
                        std::thread::sleep(ctx.config.rejoin_interval);
                    } else {
                        std::thread::sleep(ctx.config.retry.backoff(failures - 1));
                    }
                    continue;
                }
            }
        }
        let conn = client.as_mut().expect("connection just established");
        // Own work first, then steal, then speculate.
        let pivot = ctx
            .queues
            .pop(ctx.idx)
            .or_else(|| ctx.queues.steal(ctx.idx));
        if let Some(p) = pivot {
            let Some(epoch) = ctx.board.claim(p, ctx.idx) else {
                continue; // already committed elsewhere
            };
            match rpc_exec(conn, ctx.handle, p, epoch) {
                Ok(count) => {
                    failures = 0;
                    if ctx.board.commit(p, epoch, count) {
                        ctx.shard_commits.fetch_add(1, Ordering::Relaxed);
                        ctx.status.executed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ctx.status.commits_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(kind) => {
                    ctx.queues.push_front(ctx.idx, p);
                    on_failure(&ctx, &mut client, &mut failures, kind);
                }
            }
        } else {
            // Idle: speculatively re-execute someone else's in-flight pivot
            // (each at most once per driver) — first commit wins.
            let target = ctx
                .board
                .in_flight_of_others(ctx.idx)
                .into_iter()
                .find(|(p, _)| !speculated.contains(p));
            match target {
                Some((p, epoch)) => {
                    speculated.insert(p);
                    match rpc_exec(conn, ctx.handle, p, epoch) {
                        Ok(count) => {
                            failures = 0;
                            if ctx.board.commit(p, epoch, count) {
                                ctx.shard_commits.fetch_add(1, Ordering::Relaxed);
                                ctx.status.executed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                ctx.status.commits_rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(kind) => on_failure(&ctx, &mut client, &mut failures, kind),
                    }
                }
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
}

/// Handles one failed RPC: `Refused` drops the connection so the next loop
/// iteration re-`PREPARE`s (the restart-wiped-plan case); `Io` does the
/// same plus backoff, and past the attempt budget the shard is declared
/// dead and its work re-scattered.
fn on_failure(
    ctx: &DriverCtx<'_>,
    client: &mut Option<Client>,
    failures: &mut u32,
    kind: RpcFailure,
) {
    *client = None;
    *failures += 1;
    if *failures > ctx.config.attempt_budget {
        declare_dead(ctx);
        *failures = 0;
        std::thread::sleep(ctx.config.rejoin_interval);
    } else if matches!(kind, RpcFailure::Io) {
        std::thread::sleep(ctx.config.retry.backoff(*failures - 1));
    }
}

/// Declares this driver's shard dead: its claimed-but-uncommitted pivots
/// get an epoch bump and move to the survivors' queues, together with
/// whatever was still queued here.
fn declare_dead(ctx: &DriverCtx<'_>) {
    ctx.status.set_liveness(ShardLiveness::Dead);
    let mut orphans = ctx.board.rescatter(ctx.idx);
    while let Some(p) = ctx.queues.pop(ctx.idx) {
        orphans.push(p);
    }
    if !orphans.is_empty() {
        ctx.rescatters.fetch_add(1, Ordering::Relaxed);
        ctx.status.rescatters.fetch_add(1, Ordering::Relaxed);
        ctx.queues.distribute(&orphans, ctx.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    #[test]
    fn board_commit_protocol_is_exactly_once() {
        let board = ResultBoard::new(&[vid(3), vid(1), vid(7), vid(1)]);
        assert_eq!(board.remaining(), 3);
        // Claim + commit.
        let e = board.claim(vid(1), 0).unwrap();
        assert!(board.commit(vid(1), e, 10));
        assert_eq!(board.remaining(), 2);
        // Duplicate commit rejected.
        assert!(!board.commit(vid(1), e, 10));
        assert_eq!(board.stale_rejected(), 1);
        // Claim on a committed pivot yields nothing.
        assert!(board.claim(vid(1), 2).is_none());
        // Re-scatter bumps the epoch: the dead owner's commit is stale.
        let e3 = board.claim(vid(3), 1).unwrap();
        let orphans = board.rescatter(1);
        assert_eq!(orphans, vec![vid(3)]);
        assert!(!board.commit(vid(3), e3, 99), "stale epoch must lose");
        let e3b = board.claim(vid(3), 2).unwrap();
        assert_eq!(e3b, e3 + 1);
        assert!(board.commit(vid(3), e3b, 42));
        // Finish and total.
        let e7 = board.claim(vid(7), 0).unwrap();
        assert!(board.commit(vid(7), e7, 8));
        assert_eq!(board.remaining(), 0);
        assert_eq!(board.total(), 10 + 42 + 8);
    }

    #[test]
    fn speculation_targets_exclude_self_and_unclaimed() {
        let board = ResultBoard::new(&[vid(1), vid(2), vid(3)]);
        board.claim(vid(1), 0);
        board.claim(vid(2), 1);
        let targets = board.in_flight_of_others(0);
        assert_eq!(targets, vec![(vid(2), 0)]);
        // Commits remove in-flight status.
        assert!(board.commit(vid(2), 0, 5));
        assert!(board.in_flight_of_others(0).is_empty());
    }

    #[test]
    fn queues_steal_and_distribute() {
        let q = WorkQueues::new(vec![vec![vid(1), vid(2), vid(3), vid(4)], vec![]]);
        // Thief 1 steals the back half of 0 ([4, 3]) and starts on it.
        let got = q.steal(1).unwrap();
        assert_eq!(got, vid(4), "steals the back half");
        // Orphans spread over survivors only.
        q.distribute(&[vid(9), vid(8)], 0);
        assert_eq!(q.pop(1), Some(vid(3)));
        assert_eq!(q.pop(1), Some(vid(9)));
        assert_eq!(q.pop(1), Some(vid(8)));
        assert_eq!(q.pop(1), None);
        // Sole-shard distribution hands the work back for rejoin.
        let solo = WorkQueues::new(vec![vec![]]);
        solo.distribute(&[vid(5)], 0);
        assert_eq!(solo.pop(0), Some(vid(5)));
    }

    #[test]
    fn coord_error_is_typed() {
        let e = CoordError {
            addr: "127.0.0.1:1".to_string(),
            reason: "connection refused".to_string(),
        };
        let s = e.to_string();
        assert!(s.starts_with("E_SHARD"), "{s}");
        assert!(s.contains("127.0.0.1:1"));
    }

    #[test]
    fn shard_set_tracks_liveness() {
        let set = ShardSet::new(&["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.alive(), 0);
        set.shards[0].set_liveness(ShardLiveness::Alive);
        assert_eq!(set.alive(), 1);
        assert_eq!(set.shards[1].liveness(), ShardLiveness::Unknown);
        set.shards[1].set_liveness(ShardLiveness::Dead);
        assert_eq!(set.shards[1].liveness(), ShardLiveness::Dead);
    }
}
