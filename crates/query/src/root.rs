//! Root query node selection (§2.2).
//!
//! The root `u_s` minimizes `|candidate(u)| / degree(u)` — few candidates
//! means few embedding clusters, high degree means strong early pruning.
//! Ties break toward the smaller vertex id for determinism.

use ceci_graph::{Graph, VertexId};

use crate::candidates::CandidateSet;
use crate::query_graph::QueryGraph;

/// Root choice, along with the score table for diagnostics.
#[derive(Clone, Debug)]
pub struct RootChoice {
    /// The selected root query node.
    pub root: VertexId,
    /// `scores[u] = |candidate(u)| / degree(u)` for every query vertex.
    pub scores: Vec<f64>,
}

/// Selects the root query node given precomputed candidate sets.
///
/// Degree-0 queries (a single vertex) get score `|candidates|`.
pub fn select_root(query: &QueryGraph, candidate_sets: &[CandidateSet]) -> RootChoice {
    assert_eq!(candidate_sets.len(), query.num_vertices());
    let mut best: Option<(f64, VertexId)> = None;
    let mut scores = Vec::with_capacity(candidate_sets.len());
    for set in candidate_sets {
        let deg = query.degree(set.u).max(1) as f64;
        let score = set.candidates.len() as f64 / deg;
        scores.push(score);
        let better = match best {
            None => true,
            Some((bs, bu)) => score < bs || (score == bs && set.u < bu),
        };
        if better {
            best = Some((score, set.u));
        }
    }
    let (_, root) = best.expect("query graphs are non-empty");
    RootChoice { root, scores }
}

/// Convenience: computes candidates and selects the root in one call.
pub fn choose_root(query: &QueryGraph, graph: &Graph) -> RootChoice {
    let sets = crate::candidates::compute_candidates(query, graph);
    select_root(query, &sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::compute_candidates;
    use ceci_graph::{lid, vid, LabelSet};

    #[test]
    fn fewest_candidates_per_degree_wins() {
        // Data: many A's, one B. Query: u0(A)-u1(B). u1 has 1 candidate.
        let g = Graph::new(
            vec![
                LabelSet::single(lid(0)),
                LabelSet::single(lid(0)),
                LabelSet::single(lid(0)),
                LabelSet::single(lid(1)),
            ],
            &[(vid(0), vid(3)), (vid(1), vid(3)), (vid(2), vid(3))],
            false,
        );
        let q = QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap();
        let choice = choose_root(&q, &g);
        assert_eq!(choice.root, vid(1));
        assert!(choice.scores[1] < choice.scores[0]);
    }

    #[test]
    fn tie_breaks_to_smaller_id() {
        // Symmetric data and query → identical scores everywhere.
        let g = Graph::unlabeled(2, &[(vid(0), vid(1))]);
        let q = QueryGraph::unlabeled(2, &[(0, 1)]).unwrap();
        let choice = choose_root(&q, &g);
        assert_eq!(choice.root, vid(0));
        assert_eq!(choice.scores[0], choice.scores[1]);
    }

    #[test]
    fn single_vertex_query() {
        let g = Graph::unlabeled(3, &[(vid(0), vid(1))]);
        let q = QueryGraph::unlabeled(1, &[]).unwrap();
        let sets = compute_candidates(&q, &g);
        let choice = select_root(&q, &sets);
        assert_eq!(choice.root, vid(0));
        // degree clamps to 1 → score = candidate count = 3.
        assert_eq!(choice.scores[0], 3.0);
    }

    #[test]
    fn score_table_has_one_entry_per_query_vertex() {
        let g = Graph::unlabeled(4, &[(vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(3))]);
        let q = QueryGraph::unlabeled(3, &[(0, 1), (1, 2)]).unwrap();
        let choice = choose_root(&q, &g);
        assert_eq!(choice.scores.len(), 3);
    }
}
