//! Initial per-query-node candidate computation.
//!
//! §2.2: *"The candidate list of u is obtained by verifying each data node by
//! the label, degree, and neighborhood label count."* These are the same
//! three per-vertex filters (LF, DF, NLCF) that Algorithm 1 later applies
//! during CECI construction; here they run globally to support root selection
//! and pivot discovery.

use ceci_graph::{Graph, LabelId, VertexId};

use crate::query_graph::QueryGraph;

/// Verdict of the O(query edges) label-pair admission check. Any rejection
/// is a *proof* of zero embeddings — the check is sound, never heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The query passed every structural test and may have embeddings.
    Pass,
    /// A query vertex requires a label no data vertex carries.
    AbsentLabel(LabelId),
    /// A query edge requires a label pair no data edge realizes.
    AbsentPair(LabelId, LabelId),
    /// A query vertex's neighborhood-label signature exceeds what any data
    /// vertex carrying `label` offers: it needs `required` neighbors of
    /// label `neighbor`, but the data-graph maximum is smaller.
    SignatureExceeded {
        /// A label of the query vertex.
        label: LabelId,
        /// The neighbor label whose count cannot be met.
        neighbor: LabelId,
        /// Neighbors of that label the query vertex requires.
        required: u32,
    },
}

impl AdmissionVerdict {
    /// `true` when the query is provably embedding-free.
    #[inline]
    pub fn rejected(&self) -> bool {
        !matches!(self, AdmissionVerdict::Pass)
    }
}

/// Label-pair / neighborhood-signature admission filter (l2Match-style):
/// rejects queries that provably have zero embeddings before any candidate
/// computation or CECI build, in O(query edges × label-set size).
///
/// Soundness: an embedding maps every query vertex `u` onto a data vertex
/// carrying **all** labels of `u`, and every query edge onto a data edge.
/// So (1) each query label must occur in the data graph, (2) each label
/// pair across a query edge must occur across some data edge, and (3) a
/// query vertex needing `c` neighbors of label `m` can only map to a data
/// vertex whose `m`-neighbor count is ≥ `c` — bounded per carried label by
/// [`ceci_graph::LabelPairIndex::max_count`]. Violating any of these
/// proves the count is 0.
///
/// Requires [`Graph::label_pair_index`] to be built for tests (2) and (3);
/// without it only the label-occurrence test runs.
pub fn admission_check(query: &QueryGraph, graph: &Graph) -> AdmissionVerdict {
    for u in query.vertices() {
        for l in query.labels(u).iter() {
            if graph.vertices_with_label(l).is_empty() {
                return AdmissionVerdict::AbsentLabel(l);
            }
        }
    }
    let Some(lp) = graph.label_pair_index() else {
        return AdmissionVerdict::Pass;
    };
    for &(a, b) in query.edges() {
        for la in query.labels(a).iter() {
            for lb in query.labels(b).iter() {
                if !lp.has_pair(la, lb) {
                    return AdmissionVerdict::AbsentPair(la, lb);
                }
            }
        }
    }
    for u in query.vertices() {
        let qc = query.neighborhood_label_counts(u);
        for l in query.labels(u).iter() {
            for &(m, c) in &qc {
                if lp.max_count(l, m) < c {
                    return AdmissionVerdict::SignatureExceeded {
                        label: l,
                        neighbor: m,
                        required: c,
                    };
                }
            }
        }
    }
    AdmissionVerdict::Pass
}

/// Returns `true` if data vertex `v` passes the label filter (LF) for query
/// vertex `u`: `L_q(u) ⊆ L(v)`.
#[inline]
pub fn label_filter(query: &QueryGraph, graph: &Graph, u: VertexId, v: VertexId) -> bool {
    query.labels(u).is_subset_of(graph.labels(v))
}

/// Returns `true` if `v` passes the degree filter (DF) for `u`:
/// `deg(v) ≥ deg(u)`.
#[inline]
pub fn degree_filter(query: &QueryGraph, graph: &Graph, u: VertexId, v: VertexId) -> bool {
    graph.degree(v) >= query.degree(u)
}

/// Returns `true` if `v` passes the neighborhood label count filter (NLCF)
/// for `u`: for every distinct label `l` among `u`'s neighbors,
/// `count_v(l) ≥ count_u(l)`.
pub fn nlc_filter(query_counts: &[(ceci_graph::LabelId, u32)], graph: &Graph, v: VertexId) -> bool {
    if let Some(nlc) = graph.nlc_index() {
        // Merge the two sorted (label, count) lists.
        let vc = nlc.counts(v);
        let mut i = 0;
        for &(l, cu) in query_counts {
            while i < vc.len() && vc[i].0 < l {
                i += 1;
            }
            if i >= vc.len() || vc[i].0 != l || vc[i].1 < cu {
                return false;
            }
        }
        true
    } else {
        query_counts
            .iter()
            .all(|&(l, cu)| graph.neighbor_label_count(v, l) >= cu)
    }
}

/// Precomputed per-query-node filter profiles (LF + DF + NLCF) for repeated
/// membership tests — the dirty-candidate localization primitive of the
/// streaming repair path.
///
/// A mutation batch can only change per-vertex filter outcomes at the
/// mutation endpoints (their degree and neighborhood label counts moved) and
/// filtered adjacency at the endpoints' neighbors, so incremental index
/// repair re-tests exactly those vertices against each query node instead of
/// re-filtering the whole graph. `VertexFilters` hoists the query-side NLC
/// profiles out of that inner loop.
#[derive(Clone, Debug)]
pub struct VertexFilters<'q> {
    query: &'q QueryGraph,
    /// `nlc[u]` = sorted `(label, count)` neighborhood profile of query
    /// vertex `u`.
    nlc: Vec<Vec<(LabelId, u32)>>,
}

impl<'q> VertexFilters<'q> {
    /// Precomputes the per-node query profiles.
    pub fn new(query: &'q QueryGraph) -> Self {
        let nlc = query
            .vertices()
            .map(|u| query.neighborhood_label_counts(u))
            .collect();
        VertexFilters { query, nlc }
    }

    /// Does data vertex `v` pass all three per-vertex filters for query
    /// vertex `u` on `graph`? Identical to the Algorithm 1 membership test.
    #[inline]
    pub fn passes(&self, graph: &Graph, u: VertexId, v: VertexId) -> bool {
        label_filter(self.query, graph, u, v)
            && degree_filter(self.query, graph, u, v)
            && nlc_filter(&self.nlc[u.index()], graph, v)
    }

    /// Appends the filtered adjacency `F(u, of)` — neighbors of data vertex
    /// `of` passing [`VertexFilters::passes`] for `u` — onto `out` in sorted
    /// order (data adjacency is sorted).
    pub fn filtered_neighbors_into(
        &self,
        graph: &Graph,
        u: VertexId,
        of: VertexId,
        out: &mut Vec<VertexId>,
    ) {
        out.extend(
            graph
                .neighbors(of)
                .iter()
                .copied()
                .filter(|&v| self.passes(graph, u, v)),
        );
    }
}

/// Candidate set of one query vertex, plus the precomputed query-side NLC
/// profile so downstream filters can reuse it.
#[derive(Clone, Debug)]
pub struct CandidateSet {
    /// The query vertex.
    pub u: VertexId,
    /// Sorted data-vertex candidates of `u`.
    pub candidates: Vec<VertexId>,
}

/// Computes the candidate sets of every query vertex by scanning the data
/// graph's label index and applying LF + DF + NLCF.
///
/// Candidates come out sorted (the label index is sorted).
pub fn compute_candidates(query: &QueryGraph, graph: &Graph) -> Vec<CandidateSet> {
    query
        .vertices()
        .map(|u| CandidateSet {
            u,
            candidates: candidates_of(query, graph, u),
        })
        .collect()
}

/// Candidate set of a single query vertex (sorted ascending).
pub fn candidates_of(query: &QueryGraph, graph: &Graph, u: VertexId) -> Vec<VertexId> {
    let qc = query.neighborhood_label_counts(u);
    // Seed from the label index of the query vertex's primary label: every
    // candidate must carry *all* of L_q(u), so any single member label gives
    // a superset to scan. Pick the rarest member label for the smallest scan.
    let seed_label = query
        .labels(u)
        .iter()
        .min_by_key(|&l| graph.vertices_with_label(l).len())
        .expect("label sets are non-empty");
    graph
        .vertices_with_label(seed_label)
        .iter()
        .copied()
        .filter(|&v| label_filter(query, graph, u, v))
        .filter(|&v| degree_filter(query, graph, u, v))
        .filter(|&v| nlc_filter(&qc, graph, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::{lid, vid, LabelSet};

    /// Data graph:
    /// ```text
    /// 0(A)-1(B)  2(A)-3(B)-4(B)   5(A) isolated
    ///   \___________/
    /// ```
    /// edges: 0-1, 2-3, 3-4, 0-3
    fn data() -> Graph {
        Graph::new(
            vec![
                LabelSet::single(lid(0)), // 0 A
                LabelSet::single(lid(1)), // 1 B
                LabelSet::single(lid(0)), // 2 A
                LabelSet::single(lid(1)), // 3 B
                LabelSet::single(lid(1)), // 4 B
                LabelSet::single(lid(0)), // 5 A
            ],
            &[
                (vid(0), vid(1)),
                (vid(2), vid(3)),
                (vid(3), vid(4)),
                (vid(0), vid(3)),
            ],
            false,
        )
    }

    fn edge_query() -> QueryGraph {
        // u0(A) - u1(B)
        QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap()
    }

    #[test]
    fn label_and_degree_filters() {
        let g = data();
        let q = edge_query();
        // u0 needs label A and degree >= 1 → {0, 2}; vertex 5 fails DF.
        let c0 = candidates_of(&q, &g, vid(0));
        assert_eq!(c0, vec![vid(0), vid(2)]);
    }

    #[test]
    fn nlc_filter_prunes() {
        let g = data();
        // u1 (B) with two A neighbors: count_u(A) = 2.
        let q = QueryGraph::with_labels(&[lid(1), lid(0), lid(0)], &[(0, 1), (0, 2)]).unwrap();
        // Only data vertex 3 (neighbors 2(A), 4(B), 0(A)) has two A-neighbors.
        let c = candidates_of(&q, &g, vid(0));
        assert_eq!(c, vec![vid(3)]);
    }

    #[test]
    fn nlc_filter_with_and_without_index_agree() {
        let mut g = data();
        let q = edge_query();
        let before: Vec<_> = q.vertices().map(|u| candidates_of(&q, &g, u)).collect();
        g.build_nlc_index();
        let after: Vec<_> = q.vertices().map(|u| candidates_of(&q, &g, u)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn compute_candidates_covers_all_query_vertices() {
        let g = data();
        let q = edge_query();
        let all = compute_candidates(&q, &g);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].u, vid(0));
        assert_eq!(all[1].u, vid(1));
        // u1 (B, degree 1): all B vertices with ≥1 A neighbor → 1, 3.
        assert_eq!(all[1].candidates, vec![vid(1), vid(3)]);
    }

    #[test]
    fn multilabel_candidate_seeding() {
        // Query vertex requires {A, B}; only a data vertex with both matches.
        let g = Graph::new(
            vec![
                LabelSet::from_labels([lid(0), lid(1)]),
                LabelSet::single(lid(0)),
            ],
            &[(vid(0), vid(1))],
            false,
        );
        let q = QueryGraph::new(
            vec![
                LabelSet::from_labels([lid(0), lid(1)]),
                LabelSet::single(lid(0)),
            ],
            &[(vid(0), vid(1))],
        )
        .unwrap();
        assert_eq!(candidates_of(&q, &g, vid(0)), vec![vid(0)]);
    }

    #[test]
    fn admission_passes_satisfiable_queries() {
        let mut g = data();
        g.build_label_pair_index();
        assert_eq!(admission_check(&edge_query(), &g), AdmissionVerdict::Pass);
    }

    #[test]
    fn admission_rejects_absent_label() {
        let mut g = data();
        g.build_label_pair_index();
        let q = QueryGraph::with_labels(&[lid(7)], &[]).unwrap();
        assert_eq!(
            admission_check(&q, &g),
            AdmissionVerdict::AbsentLabel(lid(7))
        );
    }

    #[test]
    fn admission_rejects_absent_pair() {
        let mut g = data();
        g.build_label_pair_index();
        // Data has no A-A edge; labels A exist, so the pair test fires.
        let q = QueryGraph::with_labels(&[lid(0), lid(0)], &[(0, 1)]).unwrap();
        assert_eq!(
            admission_check(&q, &g),
            AdmissionVerdict::AbsentPair(lid(0), lid(0))
        );
    }

    #[test]
    fn admission_rejects_oversized_signature() {
        let mut g = data();
        g.build_label_pair_index();
        // An A vertex with three B neighbors: data max is 1 (A-vertices 0
        // and 2 each have one B neighbor... vertex 0 has neighbors 1(B),
        // 3(B) → 2). Require 3 to exceed every A vertex.
        let q =
            QueryGraph::with_labels(&[lid(0), lid(1), lid(1), lid(1)], &[(0, 1), (0, 2), (0, 3)])
                .unwrap();
        assert_eq!(
            admission_check(&q, &g),
            AdmissionVerdict::SignatureExceeded {
                label: lid(0),
                neighbor: lid(1),
                required: 3,
            }
        );
    }

    #[test]
    fn admission_without_index_only_checks_labels() {
        let g = data();
        assert!(g.label_pair_index().is_none());
        let q = QueryGraph::with_labels(&[lid(0), lid(0)], &[(0, 1)]).unwrap();
        assert_eq!(admission_check(&q, &g), AdmissionVerdict::Pass);
        let q = QueryGraph::with_labels(&[lid(9)], &[]).unwrap();
        assert!(admission_check(&q, &g).rejected());
    }

    #[test]
    fn admission_rejection_implies_zero_candidates_somewhere() {
        // Sanity: every rejected query here truly has an empty candidate
        // set for at least one vertex (soundness spot-check).
        let mut g = data();
        g.build_label_pair_index();
        let q = QueryGraph::with_labels(&[lid(0), lid(0)], &[(0, 1)]).unwrap();
        assert!(admission_check(&q, &g).rejected());
        // Both endpoints pass LF/DF individually, but no A-A edge exists:
        // the admission filter proves it without enumerating.
        for u in q.vertices() {
            let _ = candidates_of(&q, &g, u);
        }
    }

    #[test]
    fn candidates_are_sorted() {
        let g = data();
        let q = edge_query();
        for set in compute_candidates(&q, &g) {
            let mut sorted = set.candidates.clone();
            sorted.sort_unstable();
            assert_eq!(set.candidates, sorted);
        }
    }
}
