//! Matching (visit) orders (§2.2).
//!
//! The default is the BFS traversal order of the query tree — the order the
//! paper uses in its running example. Any order works as long as the tree
//! parent of each node precedes it (CECI keys a node's candidates by its
//! tree parent's candidates). The paper reports up to 34.5% speedup from
//! edge-ranked \[53\] or path-ranked \[17\] orders; we provide greedy
//! approximations of both as alternative strategies.

use ceci_graph::VertexId;

use crate::query_graph::QueryGraph;
use crate::tree::QueryTree;

/// Strategy for choosing the matching order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderStrategy {
    /// Plain BFS order of the query tree (the paper's default).
    #[default]
    Bfs,
    /// Edge-ranked greedy: among eligible vertices, prefer the one with the
    /// most already-placed query neighbors (maximally constrained first),
    /// breaking ties toward fewer candidates. Approximates \[53\].
    EdgeRank,
    /// Path-ranked greedy: among eligible vertices, prefer the one with the
    /// fewest candidates (most selective first), breaking ties toward more
    /// placed neighbors. Approximates TurboIso's least-frequent-path order.
    PathRank,
    /// Cost-model-driven: the core-layer planner scores a portfolio of
    /// candidate orders (BFS plus the ranked greedies over several roots)
    /// with the random-walk cardinality estimator and picks the cheapest.
    /// When passed directly to [`matching_order`] — i.e. without the
    /// planner — it falls back to [`OrderStrategy::PathRank`], the best
    /// static heuristic.
    Adaptive,
}

/// Computes a matching order under `strategy`.
///
/// `candidate_counts[u]` is the size of the initial candidate set of query
/// vertex `u` (used by the ranked strategies; pass all-zeros for `Bfs`).
///
/// The returned order always starts at the tree root and satisfies the
/// parent-precedes-child invariant.
pub fn matching_order(
    query: &QueryGraph,
    tree: &QueryTree,
    strategy: OrderStrategy,
    candidate_counts: &[usize],
) -> Vec<VertexId> {
    match strategy {
        OrderStrategy::Bfs => tree.bfs_order().to_vec(),
        OrderStrategy::EdgeRank | OrderStrategy::PathRank => {
            greedy_order(query, tree, strategy, candidate_counts)
        }
        // Without the core-layer planner there is no estimator to consult;
        // degrade to the most selective static heuristic.
        OrderStrategy::Adaptive => {
            greedy_order(query, tree, OrderStrategy::PathRank, candidate_counts)
        }
    }
}

fn greedy_order(
    query: &QueryGraph,
    tree: &QueryTree,
    strategy: OrderStrategy,
    candidate_counts: &[usize],
) -> Vec<VertexId> {
    let n = query.num_vertices();
    assert_eq!(candidate_counts.len(), n, "need one count per query vertex");
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let root = tree.root();
    placed[root.index()] = true;
    order.push(root);
    while order.len() < n {
        let mut best: Option<(usize, usize, VertexId)> = None;
        for u in query.vertices() {
            if placed[u.index()] {
                continue;
            }
            let parent_placed = tree.parent(u).map(|p| placed[p.index()]).unwrap_or(false);
            if !parent_placed {
                continue;
            }
            let placed_neighbors = query
                .neighbors(u)
                .iter()
                .filter(|nb| placed[nb.index()])
                .count();
            let cand = candidate_counts[u.index()];
            // Encode the two-key preference as a (primary, secondary) pair
            // minimized lexicographically.
            let key = match strategy {
                // More placed neighbors first → minimize n - placed_neighbors.
                OrderStrategy::EdgeRank => (n - placed_neighbors, cand),
                // Fewer candidates first.
                OrderStrategy::PathRank => (cand, n - placed_neighbors),
                OrderStrategy::Bfs | OrderStrategy::Adaptive => unreachable!(),
            };
            let better = match best {
                None => true,
                Some((k1, k2, bu)) => key < (k1, k2) || (key == (k1, k2) && u < bu),
            };
            if better {
                best = Some((key.0, key.1, u));
            }
        }
        let (_, _, u) = best.expect("connected query always has an eligible vertex");
        placed[u.index()] = true;
        order.push(u);
    }
    order
}

/// Validates the invariants a matching order must satisfy: a permutation of
/// all query vertices, starting at the tree root, with every tree parent
/// preceding its child.
pub fn is_valid_order(tree: &QueryTree, order: &[VertexId]) -> bool {
    let n = tree.bfs_order().len();
    if order.len() != n || order.first() != Some(&tree.root()) {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        if u.index() >= n || pos[u.index()] != usize::MAX {
            return false;
        }
        pos[u.index()] = i;
    }
    order.iter().all(|&u| match tree.parent(u) {
        None => true,
        Some(p) => pos[p.index()] < pos[u.index()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperQuery;
    use ceci_graph::vid;

    fn house() -> (QueryGraph, QueryTree) {
        let q = PaperQuery::Qg5.build();
        let t = QueryTree::build(&q, vid(0));
        (q, t)
    }

    #[test]
    fn bfs_order_is_tree_order() {
        let (q, t) = house();
        let o = matching_order(&q, &t, OrderStrategy::Bfs, &vec![0; q.num_vertices()]);
        assert_eq!(o, t.bfs_order());
        assert!(is_valid_order(&t, &o));
    }

    #[test]
    fn ranked_orders_are_valid() {
        let (q, t) = house();
        let counts = vec![10, 5, 8, 2, 7];
        for s in [OrderStrategy::EdgeRank, OrderStrategy::PathRank] {
            let o = matching_order(&q, &t, s, &counts);
            assert!(is_valid_order(&t, &o), "{s:?} produced invalid order {o:?}");
        }
    }

    #[test]
    fn path_rank_prefers_selective_vertices() {
        let (q, t) = house();
        // Vertex 3 has far fewer candidates; it should be visited as soon as
        // its parent is placed.
        let counts = vec![100, 100, 100, 1, 100];
        let o = matching_order(&q, &t, OrderStrategy::PathRank, &counts);
        let pos3 = o.iter().position(|&u| u == vid(3)).unwrap();
        // Parent of 3 in the BFS tree from 0 is 0 (edge 3-0), so 3 can come
        // second.
        assert_eq!(pos3, 1, "order was {o:?}");
    }

    #[test]
    fn edge_rank_prefers_constrained_vertices() {
        let q = PaperQuery::Qg4.build(); // 4-clique
        let t = QueryTree::build(&q, vid(0));
        let o = matching_order(&q, &t, OrderStrategy::EdgeRank, &[4, 4, 4, 4]);
        assert!(is_valid_order(&t, &o));
        // In a clique every vertex neighbors every placed vertex, so the
        // greedy tie-break picks ascending ids.
        assert_eq!(o, vec![vid(0), vid(1), vid(2), vid(3)]);
    }

    #[test]
    fn invalid_orders_rejected() {
        let (_, t) = house();
        // Wrong first vertex.
        assert!(!is_valid_order(
            &t,
            &[vid(1), vid(0), vid(2), vid(3), vid(4)]
        ));
        // Duplicate vertex.
        assert!(!is_valid_order(
            &t,
            &[vid(0), vid(1), vid(1), vid(3), vid(4)]
        ));
        // Too short.
        assert!(!is_valid_order(&t, &[vid(0), vid(1)]));
    }

    #[test]
    fn adaptive_without_planner_matches_path_rank() {
        let (q, t) = house();
        let counts = vec![100, 100, 100, 1, 100];
        let adaptive = matching_order(&q, &t, OrderStrategy::Adaptive, &counts);
        let path = matching_order(&q, &t, OrderStrategy::PathRank, &counts);
        assert_eq!(adaptive, path);
        assert!(is_valid_order(&t, &adaptive));
    }

    #[test]
    fn single_vertex_order() {
        let q = QueryGraph::unlabeled(1, &[]).unwrap();
        let t = QueryTree::build(&q, vid(0));
        let o = matching_order(&q, &t, OrderStrategy::PathRank, &[3]);
        assert_eq!(o, vec![vid(0)]);
    }
}
