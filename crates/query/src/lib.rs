//! # ceci-query
//!
//! Query graphs and preprocessing for the CECI subgraph-matching system
//! (SIGMOD 2019). Implements §2.2 of the paper end to end:
//!
//! * [`QueryGraph`] — connected, undirected, labeled query graphs, plus a
//!   [`catalog`] of the paper's Figure-6 queries (QG1–QG5) and common shapes.
//! * [`candidates`] — the label / degree / neighborhood-label-count filters
//!   applied globally to seed candidate sets.
//! * [`root`] — root selection by `argmin |candidate(u)| / degree(u)`.
//! * [`tree`] — the BFS query tree with tree / non-tree edge split.
//! * [`order`] — matching orders: BFS (default), edge-ranked, path-ranked.
//! * [`nec`] — NEC equivalence groups and complete Grochow–Kellis
//!   automorphism breaking.
//! * [`hash`] — canonical (isomorphism-invariant, label-aware) query
//!   hashing, the index-cache key of the serving layer.
//! * [`QueryPlan`] — the bundle every matching engine consumes.

#![warn(missing_docs)]

pub mod candidates;
pub mod catalog;
pub mod hash;
pub mod nec;
pub mod order;
pub mod plan;
pub mod query_graph;
pub mod root;
pub mod tree;

pub use candidates::{admission_check, candidates_of, AdmissionVerdict, VertexFilters};
pub use catalog::PaperQuery;
pub use hash::{canonical_hash, CanonicalQuery};
pub use nec::OrderConstraint;
pub use order::{is_valid_order, matching_order, OrderStrategy};
pub use plan::{PlanOptions, QueryPlan};
pub use query_graph::{QueryGraph, QueryGraphError};
pub use tree::QueryTree;
