//! Automorphism breaking (§2.2).
//!
//! The paper combines TurboIso's NEC equivalence groups with the
//! ordering-based symmetry-breaking rules of Grochow–Kellis \[16\] so each
//! embedding is listed exactly once. We implement both pieces:
//!
//! * [`nec_groups`] — neighborhood equivalence classes (same label, same
//!   neighborhood modulo each other), used by the TurboIso-style baseline
//!   and as a fast path for generating constraints.
//! * [`automorphisms`] + [`symmetry_constraints`] — the full Grochow–Kellis
//!   scheme: enumerate `Aut(G_q)`, then repeatedly fix the smallest vertex
//!   with a nontrivial orbit, emit `map(v) < map(w)` for its orbit, and
//!   recurse into the stabilizer. This quotients the automorphism group
//!   completely, so enumeration with these constraints reports exactly one
//!   representative per automorphism class.

use ceci_graph::VertexId;

use crate::query_graph::QueryGraph;

/// A `map(smaller) < map(larger)` ordering constraint between two query
/// vertices, to be enforced on their data-graph images.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OrderConstraint {
    /// The query vertex whose image must be smaller.
    pub smaller: VertexId,
    /// The query vertex whose image must be larger.
    pub larger: VertexId,
}

/// NEC equivalence groups: vertices `u ≡ v` iff they share a label set and
/// `N(u) \ {v} == N(v) \ {u}`. Returns groups of size ≥ 2, each sorted.
pub fn nec_groups(query: &QueryGraph) -> Vec<Vec<VertexId>> {
    let n = query.num_vertices();
    let mut assigned = vec![false; n];
    let mut groups = Vec::new();
    let equivalent = |a: VertexId, b: VertexId| -> bool {
        if query.labels(a) != query.labels(b) {
            return false;
        }
        let na: Vec<VertexId> = query
            .neighbors(a)
            .iter()
            .copied()
            .filter(|&x| x != b)
            .collect();
        let nb: Vec<VertexId> = query
            .neighbors(b)
            .iter()
            .copied()
            .filter(|&x| x != a)
            .collect();
        na == nb
    };
    for u in query.vertices() {
        if assigned[u.index()] {
            continue;
        }
        let mut group = vec![u];
        for w in query.vertices() {
            if w > u && !assigned[w.index()] && equivalent(u, w) {
                group.push(w);
            }
        }
        if group.len() >= 2 {
            for &g in &group {
                assigned[g.index()] = true;
            }
            groups.push(group);
        }
    }
    groups
}

/// Enumerates all automorphisms of the query graph by label/degree-pruned
/// backtracking. Returns `None` if the search exceeds `step_cap` recursive
/// steps (callers then fall back to duplicate-tolerant enumeration).
///
/// Each automorphism is returned as a permutation `perm` with
/// `perm[u] = image of u`.
pub fn automorphisms(query: &QueryGraph, step_cap: u64) -> Option<Vec<Vec<VertexId>>> {
    let n = query.num_vertices();
    let mut result = Vec::new();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = vec![false; n];
    let mut steps = 0u64;
    fn rec(
        query: &QueryGraph,
        depth: usize,
        mapping: &mut Vec<Option<VertexId>>,
        used: &mut Vec<bool>,
        result: &mut Vec<Vec<VertexId>>,
        steps: &mut u64,
        cap: u64,
    ) -> bool {
        *steps += 1;
        if *steps > cap {
            return false;
        }
        let n = query.num_vertices();
        if depth == n {
            result.push(mapping.iter().map(|m| m.unwrap()).collect());
            return true;
        }
        let u = VertexId(depth as u32);
        for cand in query.vertices() {
            if used[cand.index()] {
                continue;
            }
            if query.labels(u) != query.labels(cand) {
                continue;
            }
            if query.degree(u) != query.degree(cand) {
                continue;
            }
            // Adjacency consistency with already-mapped vertices.
            let consistent = (0..depth).all(|i| {
                let w = VertexId(i as u32);
                let img = mapping[i].unwrap();
                query.has_edge(u, w) == query.has_edge(cand, img)
            });
            if !consistent {
                continue;
            }
            mapping[depth] = Some(cand);
            used[cand.index()] = true;
            let ok = rec(query, depth + 1, mapping, used, result, steps, cap);
            mapping[depth] = None;
            used[cand.index()] = false;
            if !ok {
                return false;
            }
        }
        true
    }
    if rec(
        query,
        0,
        &mut mapping,
        &mut used,
        &mut result,
        &mut steps,
        step_cap,
    ) {
        Some(result)
    } else {
        None
    }
}

/// Generates a complete set of symmetry-breaking constraints from the
/// automorphism group (Grochow–Kellis): while the group is nontrivial, fix
/// the smallest vertex `v` with a nontrivial orbit, emit
/// `map(v) < map(w)` for every other `w` in `orbit(v)`, and restrict the
/// group to the stabilizer of `v`.
pub fn symmetry_constraints(autos: &[Vec<VertexId>]) -> Vec<OrderConstraint> {
    let mut constraints = Vec::new();
    if autos.is_empty() {
        return constraints;
    }
    let n = autos[0].len();
    let mut group: Vec<&Vec<VertexId>> = autos.iter().collect();
    loop {
        if group.len() <= 1 {
            break;
        }
        // Find the smallest vertex with a nontrivial orbit.
        let mut fixed_vertex = None;
        for v in 0..n {
            let mut orbit: Vec<VertexId> = group.iter().map(|perm| perm[v]).collect();
            orbit.sort_unstable();
            orbit.dedup();
            if orbit.len() > 1 {
                fixed_vertex = Some((VertexId(v as u32), orbit));
                break;
            }
        }
        let Some((v, orbit)) = fixed_vertex else {
            break; // every vertex fixed — group is trivial on points
        };
        for &w in &orbit {
            if w != v {
                constraints.push(OrderConstraint {
                    smaller: v,
                    larger: w,
                });
            }
        }
        group.retain(|perm| perm[v.index()] == v);
    }
    constraints
}

/// Computes symmetry-breaking constraints for a query, or an empty list when
/// the automorphism search exceeds the cap (enumeration then reports
/// duplicates, which callers may post-deduplicate).
pub fn break_symmetry(query: &QueryGraph, step_cap: u64) -> (Vec<OrderConstraint>, bool) {
    match automorphisms(query, step_cap) {
        Some(autos) => (symmetry_constraints(&autos), true),
        None => (Vec::new(), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{clique, cycle, path, PaperQuery};
    use ceci_graph::vid;

    fn aut_count(q: &QueryGraph) -> usize {
        automorphisms(q, 1_000_000).unwrap().len()
    }

    #[test]
    fn automorphism_group_sizes() {
        assert_eq!(aut_count(&PaperQuery::Qg1.build()), 6); // S3
        assert_eq!(aut_count(&PaperQuery::Qg2.build()), 8); // dihedral D4
        assert_eq!(aut_count(&PaperQuery::Qg3.build()), 4); // diamond
        assert_eq!(aut_count(&PaperQuery::Qg4.build()), 24); // S4
        assert_eq!(aut_count(&PaperQuery::Qg5.build()), 2); // house: one mirror
        assert_eq!(aut_count(&path(4)), 2);
        assert_eq!(aut_count(&cycle(5)), 10);
        assert_eq!(aut_count(&clique(5)), 120);
    }

    #[test]
    fn labeled_queries_often_rigid() {
        use ceci_graph::lid;
        let q =
            QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(aut_count(&q), 1);
        let (c, complete) = break_symmetry(&q, 1_000_000);
        assert!(complete);
        assert!(c.is_empty());
    }

    #[test]
    fn triangle_constraints_are_chain() {
        // S3 breaks to map(0) < map(1) < map(2) (paper's example for QG1).
        let q = PaperQuery::Qg1.build();
        let (c, complete) = break_symmetry(&q, 1_000_000);
        assert!(complete);
        let mut c = c;
        c.sort();
        assert_eq!(
            c,
            vec![
                OrderConstraint {
                    smaller: vid(0),
                    larger: vid(1)
                },
                OrderConstraint {
                    smaller: vid(0),
                    larger: vid(2)
                },
                OrderConstraint {
                    smaller: vid(1),
                    larger: vid(2)
                },
            ]
        );
    }

    /// Count mappings of a query onto itself that satisfy the constraints —
    /// must be exactly 1 for complete breaking (only the identity-class rep).
    fn satisfying_automorphisms(q: &QueryGraph) -> usize {
        let autos = automorphisms(q, 1_000_000).unwrap();
        let constraints = symmetry_constraints(&autos);
        autos
            .iter()
            .filter(|perm| {
                constraints
                    .iter()
                    .all(|c| perm[c.smaller.index()] < perm[c.larger.index()])
            })
            .count()
    }

    #[test]
    fn constraints_quotient_group_completely() {
        for pq in PaperQuery::ALL {
            assert_eq!(
                satisfying_automorphisms(&pq.build()),
                1,
                "{} not fully broken",
                pq.name()
            );
        }
        assert_eq!(satisfying_automorphisms(&cycle(6)), 1);
        assert_eq!(satisfying_automorphisms(&clique(4)), 1);
        assert_eq!(satisfying_automorphisms(&path(5)), 1);
        assert_eq!(satisfying_automorphisms(&crate::catalog::star(4)), 1);
    }

    #[test]
    fn nec_groups_triangle() {
        let q = PaperQuery::Qg1.build();
        let groups = nec_groups(&q);
        assert_eq!(groups, vec![vec![vid(0), vid(1), vid(2)]]);
    }

    #[test]
    fn nec_groups_square() {
        let q = PaperQuery::Qg2.build();
        let mut groups = nec_groups(&q);
        groups.sort();
        // Opposite corners are NEC-equivalent.
        assert_eq!(groups, vec![vec![vid(0), vid(2)], vec![vid(1), vid(3)]]);
    }

    #[test]
    fn nec_house_has_no_twins() {
        // The house's only symmetry is a mirror (0↔1, 2↔3), which is not a
        // twin relation: N(2)\{3} = {1} ≠ {0} = N(3)\{2}. NEC finds nothing;
        // only the full Grochow–Kellis pass breaks the mirror.
        let q = PaperQuery::Qg5.build();
        assert!(nec_groups(&q).is_empty());
        let (c, complete) = break_symmetry(&q, 1_000_000);
        assert!(complete);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn step_cap_returns_none() {
        let q = clique(6);
        assert!(automorphisms(&q, 10).is_none());
        let (c, complete) = break_symmetry(&q, 10);
        assert!(!complete);
        assert!(c.is_empty());
    }

    #[test]
    fn automorphisms_contain_identity() {
        let q = PaperQuery::Qg3.build();
        let autos = automorphisms(&q, 1_000_000).unwrap();
        let identity: Vec<VertexId> = q.vertices().collect();
        assert!(autos.contains(&identity));
    }
}
