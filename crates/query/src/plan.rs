//! The query plan: everything preprocessing produces (§2.2), bundled.
//!
//! A [`QueryPlan`] fixes the root, the BFS query tree, the matching order,
//! the orientation of non-tree edges relative to that order, and the
//! compiled symmetry-breaking bounds. CECI construction and every
//! enumeration engine consume plans, so all engines agree on the search
//! shape and results are directly comparable.

use ceci_graph::{Graph, VertexId};

use crate::candidates::{compute_candidates, CandidateSet};
use crate::nec::{break_symmetry, OrderConstraint};
use crate::order::{is_valid_order, matching_order, OrderStrategy};
use crate::query_graph::QueryGraph;
use crate::root::select_root;
use crate::tree::QueryTree;

/// Options controlling plan construction.
#[derive(Clone, Debug)]
pub struct PlanOptions {
    /// Matching-order strategy (default BFS, as in the paper's examples).
    pub order: OrderStrategy,
    /// Enforce automorphism breaking (§2.2). When off, or when the
    /// automorphism search exceeds `symmetry_step_cap`, duplicates may be
    /// listed.
    pub break_symmetry: bool,
    /// Step budget for the automorphism search.
    pub symmetry_step_cap: u64,
    /// Force a specific root instead of the cost-function choice.
    pub root_override: Option<VertexId>,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            order: OrderStrategy::Bfs,
            break_symmetry: true,
            symmetry_step_cap: 1_000_000,
            root_override: None,
        }
    }
}

/// The complete preprocessing output for one (query, data graph) pair.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    query: QueryGraph,
    tree: QueryTree,
    matching_order: Vec<VertexId>,
    /// `position[u]` = index of query vertex `u` in the matching order.
    position: Vec<usize>,
    /// Per query vertex: non-tree neighbors that appear *earlier* in the
    /// matching order (the "NTE parents" whose candidates get intersected).
    backward_nte: Vec<Vec<VertexId>>,
    /// Per query vertex: non-tree neighbors that appear *later* (the NTE
    /// children contributing to cardinality during refinement).
    forward_nte: Vec<Vec<VertexId>>,
    /// Initial candidate sets (root selection byproduct; CECI seeds pivots
    /// from the root's set).
    initial_candidates: Vec<CandidateSet>,
    /// Raw symmetry constraints.
    symmetry: Vec<OrderConstraint>,
    /// Whether the constraint set fully quotients the automorphism group.
    symmetry_complete: bool,
    /// Per query vertex `u`: earlier vertices `w` with `map(w) < map(u)`
    /// required (lower bounds on `u`'s image).
    lower_bounds: Vec<Vec<VertexId>>,
    /// Per query vertex `u`: earlier vertices `w` with `map(u) < map(w)`
    /// required (upper bounds on `u`'s image).
    upper_bounds: Vec<Vec<VertexId>>,
}

impl QueryPlan {
    /// Builds a plan with default options.
    pub fn new(query: QueryGraph, graph: &Graph) -> Self {
        QueryPlan::with_options(query, graph, &PlanOptions::default())
    }

    /// Builds a plan with explicit options.
    pub fn with_options(query: QueryGraph, graph: &Graph, options: &PlanOptions) -> Self {
        let initial_candidates = compute_candidates(&query, graph);
        let root = options
            .root_override
            .unwrap_or_else(|| select_root(&query, &initial_candidates).root);
        let tree = QueryTree::build(&query, root);
        let counts: Vec<usize> = {
            // candidate sets are in vertex order already
            initial_candidates
                .iter()
                .map(|s| s.candidates.len())
                .collect()
        };
        let order = matching_order(&query, &tree, options.order, &counts);
        debug_assert!(is_valid_order(&tree, &order));
        let (symmetry, symmetry_complete) = if options.break_symmetry {
            break_symmetry(&query, options.symmetry_step_cap)
        } else {
            (Vec::new(), false)
        };
        Self::assemble(
            query,
            tree,
            order,
            initial_candidates,
            symmetry,
            symmetry_complete,
        )
    }

    /// Builds a plan from preassembled parts (used by tests and by engines
    /// that must pin the paper's exact running-example configuration).
    pub fn from_parts(
        query: QueryGraph,
        root: VertexId,
        order: Vec<VertexId>,
        graph: &Graph,
        symmetry: Vec<OrderConstraint>,
        symmetry_complete: bool,
    ) -> Self {
        let tree = QueryTree::build(&query, root);
        assert!(
            is_valid_order(&tree, &order),
            "matching order violates tree-parent precedence"
        );
        let initial_candidates = compute_candidates(&query, graph);
        Self::assemble(
            query,
            tree,
            order,
            initial_candidates,
            symmetry,
            symmetry_complete,
        )
    }

    fn assemble(
        query: QueryGraph,
        tree: QueryTree,
        order: Vec<VertexId>,
        initial_candidates: Vec<CandidateSet>,
        symmetry: Vec<OrderConstraint>,
        symmetry_complete: bool,
    ) -> Self {
        let n = query.num_vertices();
        let mut position = vec![usize::MAX; n];
        for (i, &u) in order.iter().enumerate() {
            position[u.index()] = i;
        }
        let mut backward_nte = vec![Vec::new(); n];
        let mut forward_nte = vec![Vec::new(); n];
        for &(a, b) in tree.non_tree_edges() {
            let (earlier, later) = if position[a.index()] < position[b.index()] {
                (a, b)
            } else {
                (b, a)
            };
            backward_nte[later.index()].push(earlier);
            forward_nte[earlier.index()].push(later);
        }
        for list in backward_nte.iter_mut().chain(forward_nte.iter_mut()) {
            list.sort_by_key(|u| position[u.index()]);
        }
        let mut lower_bounds = vec![Vec::new(); n];
        let mut upper_bounds = vec![Vec::new(); n];
        for c in &symmetry {
            let (s, l) = (c.smaller, c.larger);
            if position[s.index()] < position[l.index()] {
                // s assigned first: when assigning l, require map(l) > map(s).
                lower_bounds[l.index()].push(s);
            } else {
                // l assigned first: when assigning s, require map(s) < map(l).
                upper_bounds[s.index()].push(l);
            }
        }
        QueryPlan {
            query,
            tree,
            matching_order: order,
            position,
            backward_nte,
            forward_nte,
            initial_candidates,
            symmetry,
            symmetry_complete,
            lower_bounds,
            upper_bounds,
        }
    }

    /// The query graph.
    #[inline]
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// The BFS query tree.
    #[inline]
    pub fn tree(&self) -> &QueryTree {
        &self.tree
    }

    /// The root query node `u_s`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.tree.root()
    }

    /// The matching order (root first).
    #[inline]
    pub fn matching_order(&self) -> &[VertexId] {
        &self.matching_order
    }

    /// Position of `u` in the matching order.
    #[inline]
    pub fn position(&self, u: VertexId) -> usize {
        self.position[u.index()]
    }

    /// NTE neighbors of `u` earlier in the matching order.
    #[inline]
    pub fn backward_nte(&self, u: VertexId) -> &[VertexId] {
        &self.backward_nte[u.index()]
    }

    /// NTE neighbors of `u` later in the matching order.
    #[inline]
    pub fn forward_nte(&self, u: VertexId) -> &[VertexId] {
        &self.forward_nte[u.index()]
    }

    /// Initial (globally filtered) candidate set of `u`.
    #[inline]
    pub fn initial_candidates(&self, u: VertexId) -> &[VertexId] {
        &self.initial_candidates[u.index()].candidates
    }

    /// Raw symmetry constraints.
    #[inline]
    pub fn symmetry_constraints(&self) -> &[OrderConstraint] {
        &self.symmetry
    }

    /// Whether the symmetry constraints fully quotient the automorphism
    /// group (each embedding listed exactly once). `false` means the caller
    /// may see duplicate embeddings and should deduplicate if needed.
    #[inline]
    pub fn symmetry_complete(&self) -> bool {
        self.symmetry_complete
    }

    /// Earlier query vertices whose image must be `<` the image of `u`.
    #[inline]
    pub fn lower_bounds(&self, u: VertexId) -> &[VertexId] {
        &self.lower_bounds[u.index()]
    }

    /// Earlier query vertices whose image must be `>` the image of `u`.
    #[inline]
    pub fn upper_bounds(&self, u: VertexId) -> &[VertexId] {
        &self.upper_bounds[u.index()]
    }

    /// Checks `candidate` against the symmetry bounds of `u`, given the
    /// partial embedding `mapping[w] = Some(image)` for assigned vertices.
    #[inline]
    pub fn satisfies_symmetry(
        &self,
        u: VertexId,
        candidate: VertexId,
        mapping: &[Option<VertexId>],
    ) -> bool {
        self.lower_bounds[u.index()].iter().all(|w| {
            mapping[w.index()]
                .map(|img| img < candidate)
                .unwrap_or(true)
        }) && self.upper_bounds[u.index()].iter().all(|w| {
            mapping[w.index()]
                .map(|img| candidate < img)
                .unwrap_or(true)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperQuery;
    use ceci_graph::vid;

    fn triangle_data() -> Graph {
        // Two triangles sharing vertex 0: 0-1-2-0, 0-3-4-0
        Graph::unlabeled(
            5,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(0), vid(3)),
                (vid(3), vid(4)),
                (vid(4), vid(0)),
            ],
        )
    }

    #[test]
    fn default_plan_for_triangle() {
        let g = triangle_data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        assert_eq!(plan.matching_order().len(), 3);
        assert_eq!(plan.position(plan.root()), 0);
        assert!(plan.symmetry_complete());
        // Triangle: every non-root vertex has one backward NTE or a parent.
        let last = plan.matching_order()[2];
        assert_eq!(plan.backward_nte(last).len(), 1);
    }

    #[test]
    fn nte_orientation_follows_matching_order() {
        let g = triangle_data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        for u in plan.query().vertices() {
            for &w in plan.backward_nte(u) {
                assert!(plan.position(w) < plan.position(u));
            }
            for &w in plan.forward_nte(u) {
                assert!(plan.position(w) > plan.position(u));
            }
        }
    }

    #[test]
    fn symmetry_bounds_split_by_position() {
        let g = triangle_data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        // All constraints are between earlier/later pairs; in a triangle with
        // BFS order the chain 0<1<2 compiles to lower bounds only.
        let total_lower: usize = plan
            .query()
            .vertices()
            .map(|u| plan.lower_bounds(u).len())
            .sum();
        assert!(total_lower > 0);
    }

    #[test]
    fn satisfies_symmetry_enforces_bounds() {
        let g = triangle_data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        let order = plan.matching_order().to_vec();
        let mut mapping = vec![None; 3];
        mapping[order[0].index()] = Some(vid(3));
        let u1 = order[1];
        // Constraint map(order[0]) < map(order[1]) (triangle chain).
        assert!(plan.satisfies_symmetry(u1, vid(4), &mapping));
        assert!(!plan.satisfies_symmetry(u1, vid(1), &mapping));
    }

    #[test]
    fn root_override_respected() {
        let g = triangle_data();
        let opts = PlanOptions {
            root_override: Some(vid(2)),
            ..Default::default()
        };
        let plan = QueryPlan::with_options(PaperQuery::Qg1.build(), &g, &opts);
        assert_eq!(plan.root(), vid(2));
        assert_eq!(plan.matching_order()[0], vid(2));
    }

    #[test]
    fn symmetry_disabled() {
        let g = triangle_data();
        let opts = PlanOptions {
            break_symmetry: false,
            ..Default::default()
        };
        let plan = QueryPlan::with_options(PaperQuery::Qg1.build(), &g, &opts);
        assert!(plan.symmetry_constraints().is_empty());
        assert!(!plan.symmetry_complete());
    }

    #[test]
    #[should_panic(expected = "matching order violates")]
    fn from_parts_validates_order() {
        let g = triangle_data();
        let q = PaperQuery::Qg1.build();
        // Order doesn't start at root 1.
        let _ = QueryPlan::from_parts(
            q,
            vid(1),
            vec![vid(0), vid(1), vid(2)],
            &g,
            Vec::new(),
            false,
        );
    }

    #[test]
    fn initial_candidates_exposed() {
        let g = triangle_data();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        for u in plan.query().vertices() {
            // In an unlabeled graph every vertex of sufficient degree is a
            // candidate; all 5 data vertices have degree >= 2.
            assert_eq!(plan.initial_candidates(u).len(), 5);
        }
    }
}
