//! The query graph `G_q`.
//!
//! Query graphs are small, connected, undirected, labeled graphs (§2.1).
//! [`QueryGraph`] wraps the same storage as a data-graph [`Graph`] but
//! enforces the connectivity invariant at construction and adds the
//! query-side accessors the preprocessing pipeline needs.

use ceci_graph::{Graph, LabelId, LabelSet, VertexId};

/// A connected, undirected, labeled query graph.
///
/// # Examples
///
/// ```
/// use ceci_graph::lid;
/// use ceci_query::QueryGraph;
///
/// // A labeled triangle A-B-C.
/// let q = QueryGraph::with_labels(&[lid(0), lid(1), lid(2)],
///                                 &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(q.num_vertices(), 3);
/// assert_eq!(q.num_edges(), 3);
///
/// // Disconnected patterns are rejected (§2.1 requires connectivity).
/// assert!(QueryGraph::unlabeled(4, &[(0, 1), (2, 3)]).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct QueryGraph {
    graph: Graph,
    edges: Vec<(VertexId, VertexId)>,
}

/// Error building a query graph.
#[derive(Debug, PartialEq, Eq)]
pub enum QueryGraphError {
    /// Query graphs must have at least one vertex.
    Empty,
    /// Query graphs must be connected (§2.1).
    Disconnected,
}

impl std::fmt::Display for QueryGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryGraphError::Empty => write!(f, "query graph must have at least one vertex"),
            QueryGraphError::Disconnected => write!(f, "query graph must be connected"),
        }
    }
}

impl std::error::Error for QueryGraphError {}

impl QueryGraph {
    /// Builds a query graph from per-vertex label sets and an edge list.
    pub fn new(
        labels: Vec<LabelSet>,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, QueryGraphError> {
        if labels.is_empty() {
            return Err(QueryGraphError::Empty);
        }
        let graph = Graph::new(labels, edges, false);
        if !is_connected(&graph) {
            return Err(QueryGraphError::Disconnected);
        }
        let edges = canonical_edges(&graph);
        Ok(QueryGraph { graph, edges })
    }

    /// Builds a single-label-per-vertex query graph.
    pub fn with_labels(labels: &[LabelId], edges: &[(u32, u32)]) -> Result<Self, QueryGraphError> {
        let ls = labels.iter().map(|&l| LabelSet::single(l)).collect();
        let es: Vec<_> = edges
            .iter()
            .map(|&(a, b)| (VertexId(a), VertexId(b)))
            .collect();
        QueryGraph::new(ls, &es)
    }

    /// Builds an unlabeled query graph (every vertex labeled 0), as used by
    /// the paper's QG1–QG5 experiments.
    pub fn unlabeled(n: usize, edges: &[(u32, u32)]) -> Result<Self, QueryGraphError> {
        QueryGraph::with_labels(&vec![LabelId(0); n], edges)
    }

    /// Converts an extracted pattern (see `ceci_graph::extract`) into a
    /// query graph.
    pub fn from_graph(pattern: &Graph) -> Result<Self, QueryGraphError> {
        let labels: Vec<LabelSet> = pattern
            .vertices()
            .map(|v| pattern.labels(v).clone())
            .collect();
        let edges = canonical_edges(pattern);
        QueryGraph::new(labels, &edges)
    }

    /// Number of query vertices `|V_q|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of query edges `|E_q|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Iterator over query vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        self.graph.vertices()
    }

    /// Canonical `(a, b)` edge list with `a < b`.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        self.graph.neighbors(u)
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.graph.degree(u)
    }

    /// Edge test.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.graph.has_edge(a, b)
    }

    /// Label set of `u`.
    #[inline]
    pub fn labels(&self, u: VertexId) -> &LabelSet {
        self.graph.labels(u)
    }

    /// Count of neighbors of `u` carrying label `l` — the query side
    /// `count_u(l)` of the NLC filter.
    #[inline]
    pub fn neighbor_label_count(&self, u: VertexId, l: LabelId) -> u32 {
        self.graph.neighbor_label_count(u, l)
    }

    /// Distinct labels appearing among the neighbors of `u`, with counts —
    /// the set of `(l, count_u(l))` pairs the NLC filter compares.
    pub fn neighborhood_label_counts(&self, u: VertexId) -> Vec<(LabelId, u32)> {
        let mut all: Vec<LabelId> = self
            .neighbors(u)
            .iter()
            .flat_map(|&nb| self.labels(nb).iter())
            .collect();
        all.sort_unstable();
        let mut out = Vec::new();
        let mut i = 0;
        while i < all.len() {
            let l = all[i];
            let mut j = i + 1;
            while j < all.len() && all[j] == l {
                j += 1;
            }
            out.push((l, (j - i) as u32));
            i = j;
        }
        out
    }

    /// The underlying graph storage (used by automorphism search).
    #[inline]
    pub fn as_graph(&self) -> &Graph {
        &self.graph
    }
}

fn canonical_edges(graph: &Graph) -> Vec<(VertexId, VertexId)> {
    let mut edges = Vec::with_capacity(graph.num_edges());
    for v in graph.vertices() {
        for &nb in graph.neighbors(v) {
            if v < nb {
                edges.push((v, nb));
            }
        }
    }
    edges
}

fn is_connected(graph: &Graph) -> bool {
    let n = graph.num_vertices();
    if n == 0 {
        return false;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![VertexId(0)];
    seen[0] = true;
    let mut count = 0;
    while let Some(v) = stack.pop() {
        count += 1;
        for &nb in graph.neighbors(v) {
            if !seen[nb.index()] {
                seen[nb.index()] = true;
                stack.push(nb);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::{lid, vid};

    #[test]
    fn triangle_builds() {
        let q = QueryGraph::unlabeled(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(
            q.edges(),
            &[(vid(0), vid(1)), (vid(0), vid(2)), (vid(1), vid(2))]
        );
    }

    #[test]
    fn disconnected_rejected() {
        let err = QueryGraph::unlabeled(4, &[(0, 1), (2, 3)]).unwrap_err();
        assert_eq!(err, QueryGraphError::Disconnected);
    }

    #[test]
    fn empty_rejected() {
        let err = QueryGraph::unlabeled(0, &[]).unwrap_err();
        assert_eq!(err, QueryGraphError::Empty);
    }

    #[test]
    fn single_vertex_is_connected() {
        let q = QueryGraph::unlabeled(1, &[]).unwrap();
        assert_eq!(q.num_vertices(), 1);
        assert_eq!(q.num_edges(), 0);
    }

    #[test]
    fn labeled_construction() {
        let q = QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(q.labels(vid(1)).primary(), lid(1));
        assert_eq!(q.degree(vid(1)), 2);
    }

    #[test]
    fn neighborhood_label_counts_sorted_with_counts() {
        // star: center 0 (label 9), leaves labeled 1, 1, 2
        let q =
            QueryGraph::with_labels(&[lid(9), lid(1), lid(1), lid(2)], &[(0, 1), (0, 2), (0, 3)])
                .unwrap();
        assert_eq!(
            q.neighborhood_label_counts(vid(0)),
            vec![(lid(1), 2), (lid(2), 1)]
        );
        assert_eq!(q.neighborhood_label_counts(vid(1)), vec![(lid(9), 1)]);
    }

    #[test]
    fn from_graph_roundtrip() {
        let g = Graph::unlabeled(3, &[(vid(0), vid(1)), (vid(1), vid(2))]);
        let q = QueryGraph::from_graph(&g).unwrap();
        assert_eq!(q.num_edges(), 2);
        assert!(q.has_edge(vid(0), vid(1)));
        assert!(!q.has_edge(vid(0), vid(2)));
    }
}
