//! Canonical query hashing — the index-cache key of the serving layer.
//!
//! A long-lived server memoizes frozen CECI structures per `(graph epoch,
//! query)` pair. For the key to hit when the *same pattern* arrives again —
//! possibly with its vertices numbered differently by another client — the
//! query must be reduced to a canonical form that is label-aware and
//! invariant under vertex renumbering (isomorphism), i.e. under every
//! automorphic re-presentation of the pattern.
//!
//! The construction is classic individualization–refinement in miniature,
//! sized for query graphs (a handful of vertices, per §2.1):
//!
//! 1. **Color refinement (1-WL).** Every vertex starts from a hash of its
//!    label set and degree; each round re-hashes `(own color, sorted
//!    multiset of neighbor colors)`. Colors stabilize after at most `|V|`
//!    rounds and are isomorphism-invariant, so vertices in different color
//!    classes can never be exchanged by any isomorphism.
//! 2. **Canonical signature.** Enumerate the vertex orderings that respect
//!    the color classes (classes in canonical order, permutations only
//!    within a class) and take the lexicographically smallest encoding of
//!    `(n, per-vertex labels, edge list)`. Restricting to class-respecting
//!    orderings is sound: isomorphic graphs induce identical class
//!    structures, so both reach the same minimum.
//!
//! The signature is exact — two queries share it iff they are isomorphic
//! (label-preserving) — and [`canonical_hash`] folds it into a `u64` with a
//! stable (platform/process independent) mixer, so hashes are reproducible
//! across runs, which keeps persisted cache statistics meaningful.
//!
//! For adversarially symmetric queries the within-class permutation count is
//! capped ([`MAX_CANONICAL_PERMS`]); past the cap the signature falls back
//! to the refined-color multiset (still isomorphism-invariant, no longer
//! guaranteed collision-free). Every catalog query and any realistic query
//! template is far below the cap.

use ceci_graph::VertexId;

use crate::query_graph::QueryGraph;

/// Upper bound on class-respecting orderings explored for the exact
/// canonical signature. `8! = 40320` covers an unlabeled 8-clique; the house
/// or diamond queries need < 10.
pub const MAX_CANONICAL_PERMS: u64 = 1 << 17;

/// splitmix64 — a small, stable, well-mixed 64-bit hash step. Used instead
/// of `DefaultHasher` so canonical hashes are identical across processes,
/// platforms, and std releases (cache keys may be logged and compared
/// across runs).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds a word into a running hash.
#[inline]
fn fold(acc: u64, word: u64) -> u64 {
    mix(acc ^ mix(word))
}

/// The canonical form of a query graph: an encoding invariant under vertex
/// renumbering, plus its stable 64-bit hash.
///
/// Two `CanonicalQuery` values compare equal iff the underlying queries are
/// isomorphic (same shape, same labels) — unless both overflowed
/// [`MAX_CANONICAL_PERMS`], in which case equality is the (still
/// isomorphism-invariant) refined-color comparison. The serving layer keys
/// its index cache by [`CanonicalQuery::hash`] and verifies hits against the
/// full form, so a hash collision can never serve the wrong index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalQuery {
    signature: Vec<u64>,
    hash: u64,
    exact: bool,
}

impl CanonicalQuery {
    /// Computes the canonical form of `query`.
    pub fn of(query: &QueryGraph) -> CanonicalQuery {
        let n = query.num_vertices();
        let colors = refine_colors(query);

        // Group vertices into color classes, classes sorted by (color, size)
        // so the class order itself is canonical.
        let mut class_of: Vec<(u64, VertexId)> =
            query.vertices().map(|v| (colors[v.index()], v)).collect();
        class_of.sort_unstable();
        let mut classes: Vec<Vec<VertexId>> = Vec::new();
        let mut i = 0;
        while i < class_of.len() {
            let color = class_of[i].0;
            let mut class = Vec::new();
            while i < class_of.len() && class_of[i].0 == color {
                class.push(class_of[i].1);
                i += 1;
            }
            classes.push(class);
        }

        let perms: u64 = classes
            .iter()
            .map(|c| factorial(c.len() as u64))
            .try_fold(1u64, |acc, f: u64| acc.checked_mul(f))
            .unwrap_or(u64::MAX);
        let (signature, exact) = if perms <= MAX_CANONICAL_PERMS {
            (min_signature(query, &classes), true)
        } else {
            // Fallback: the sorted refined-color multiset. Isomorphism
            // -invariant, not collision-free; flagged so equality stays
            // honest.
            let mut sig: Vec<u64> = colors;
            sig.sort_unstable();
            sig.push(query.num_edges() as u64);
            (sig, false)
        };

        let mut hash = fold(0x5ECD_CAFE, n as u64);
        hash = fold(hash, query.num_edges() as u64);
        for &w in &signature {
            hash = fold(hash, w);
        }
        CanonicalQuery {
            signature,
            hash,
            exact,
        }
    }

    /// The stable 64-bit canonical hash (the cache key).
    #[inline]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// `true` when the signature is the exact canonical labeling (collision
    /// -free equality); `false` when the permutation cap forced the
    /// refined-color fallback.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Test-only constructor forging a canonical form with an arbitrary
    /// `(signature, hash)` pair — used to simulate a 64-bit hash collision
    /// (same hash, different form) in cache-verification tests.
    #[doc(hidden)]
    pub fn forged_for_tests(signature: Vec<u64>, hash: u64) -> CanonicalQuery {
        CanonicalQuery {
            signature,
            hash,
            exact: true,
        }
    }
}

/// Convenience: the stable canonical hash of `query`. Equal for isomorphic
/// (automorphically re-presented) queries, label-aware, stable across
/// processes and platforms.
pub fn canonical_hash(query: &QueryGraph) -> u64 {
    CanonicalQuery::of(query).hash()
}

fn factorial(k: u64) -> u64 {
    (2..=k)
        .try_fold(1u64, |a, x| a.checked_mul(x))
        .unwrap_or(u64::MAX)
}

/// Stable hash of a vertex's label set.
fn label_hash(query: &QueryGraph, v: VertexId) -> u64 {
    let mut labels: Vec<u64> = query.labels(v).iter().map(|l| l.0 as u64).collect();
    labels.sort_unstable();
    labels.iter().fold(0x0BAD_C0DE, |acc, &l| fold(acc, l))
}

/// 1-WL color refinement to stability (at most `|V|` rounds).
fn refine_colors(query: &QueryGraph) -> Vec<u64> {
    let n = query.num_vertices();
    let mut colors: Vec<u64> = query
        .vertices()
        .map(|v| fold(label_hash(query, v), query.degree(v) as u64))
        .collect();
    let mut next = vec![0u64; n];
    let mut neighbor_colors: Vec<u64> = Vec::new();
    for _ in 0..n {
        for v in query.vertices() {
            neighbor_colors.clear();
            neighbor_colors.extend(query.neighbors(v).iter().map(|nb| colors[nb.index()]));
            neighbor_colors.sort_unstable();
            let mut h = fold(0x1D10_C01A, colors[v.index()]);
            for &c in &neighbor_colors {
                h = fold(h, c);
            }
            next[v.index()] = h;
        }
        if next == colors {
            break;
        }
        std::mem::swap(&mut colors, &mut next);
    }
    colors
}

/// Encodes the query under the vertex ordering `perm` (`perm[i]` = old
/// vertex given new id `i`): per-vertex label hashes in new order, then the
/// sorted edge list in new ids.
fn encode(query: &QueryGraph, perm: &[VertexId], out: &mut Vec<u64>) {
    let n = query.num_vertices();
    let mut new_id = vec![0u32; n];
    for (new, &old) in perm.iter().enumerate() {
        new_id[old.index()] = new as u32;
    }
    out.clear();
    for &old in perm {
        out.push(label_hash(query, old));
    }
    let mut edges: Vec<u64> = query
        .edges()
        .iter()
        .map(|&(a, b)| {
            let (x, y) = (new_id[a.index()], new_id[b.index()]);
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            ((lo as u64) << 32) | hi as u64
        })
        .collect();
    edges.sort_unstable();
    out.extend(edges);
}

/// Lexicographically smallest encoding over all class-respecting orderings.
fn min_signature(query: &QueryGraph, classes: &[Vec<VertexId>]) -> Vec<u64> {
    let mut perm: Vec<VertexId> = Vec::with_capacity(query.num_vertices());
    let mut best: Option<Vec<u64>> = None;
    let mut scratch: Vec<u64> = Vec::new();
    enumerate_orderings(query, classes, 0, &mut perm, &mut scratch, &mut best);
    best.expect("at least one ordering exists")
}

fn enumerate_orderings(
    query: &QueryGraph,
    classes: &[Vec<VertexId>],
    class_idx: usize,
    perm: &mut Vec<VertexId>,
    scratch: &mut Vec<u64>,
    best: &mut Option<Vec<u64>>,
) {
    if class_idx == classes.len() {
        encode(query, perm, scratch);
        if best.as_ref().map(|b| &*scratch < b).unwrap_or(true) {
            *best = Some(scratch.clone());
        }
        return;
    }
    // Heap-style permutation of one class appended to the prefix.
    let mut class = classes[class_idx].clone();
    permute(&mut class, 0, &mut |ordering| {
        let base = perm.len();
        perm.extend_from_slice(ordering);
        enumerate_orderings(query, classes, class_idx + 1, perm, scratch, best);
        perm.truncate(base);
    });
}

/// Calls `f` with every permutation of `items[k..]` (in-place swaps).
fn permute(items: &mut [VertexId], k: usize, f: &mut impl FnMut(&[VertexId])) {
    if k + 1 >= items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperQuery;
    use ceci_graph::lid;

    /// Rebuilds `q` with its vertices renumbered by `perm` (`perm[old] =
    /// new`), preserving labels — an automorphic re-presentation.
    fn renumber(q: &QueryGraph, perm: &[u32]) -> QueryGraph {
        let n = q.num_vertices();
        let mut labels = vec![ceci_graph::LabelSet::single(lid(0)); n];
        for v in q.vertices() {
            labels[perm[v.index()] as usize] = q.labels(v).clone();
        }
        let edges: Vec<(VertexId, VertexId)> = q
            .edges()
            .iter()
            .map(|&(a, b)| (VertexId(perm[a.index()]), VertexId(perm[b.index()])))
            .collect();
        QueryGraph::new(labels, &edges).unwrap()
    }

    #[test]
    fn automorphic_presentations_hash_equal() {
        // Every catalog query, under several vertex renumberings, must map
        // to the same canonical hash and equal canonical form.
        for pq in PaperQuery::ALL {
            let q = pq.build();
            let n = q.num_vertices() as u32;
            let base = CanonicalQuery::of(&q);
            assert!(base.is_exact(), "{} should be exact", pq.name());
            // Rotation, reversal, and a swap-based permutation.
            let rot: Vec<u32> = (0..n).map(|i| (i + 1) % n).collect();
            let rev: Vec<u32> = (0..n).map(|i| n - 1 - i).collect();
            let mut swap: Vec<u32> = (0..n).collect();
            swap.swap(0, (n - 1) as usize);
            for perm in [rot, rev, swap] {
                let r = renumber(&q, &perm);
                let c = CanonicalQuery::of(&r);
                assert_eq!(base, c, "{} under {perm:?}", pq.name());
                assert_eq!(base.hash(), c.hash(), "{} under {perm:?}", pq.name());
            }
        }
    }

    #[test]
    fn distinct_queries_do_not_collide() {
        let mut seen: Vec<(u64, &'static str)> = Vec::new();
        for pq in PaperQuery::ALL {
            let h = canonical_hash(&pq.build());
            for &(other, name) in &seen {
                assert_ne!(h, other, "{} collides with {name}", pq.name());
            }
            seen.push((h, pq.name()));
        }
    }

    #[test]
    fn labels_distinguish_same_shape() {
        let t_aab =
            QueryGraph::with_labels(&[lid(0), lid(0), lid(1)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let t_abb =
            QueryGraph::with_labels(&[lid(0), lid(1), lid(1)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let t_aab_renum =
            QueryGraph::with_labels(&[lid(1), lid(0), lid(0)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_ne!(canonical_hash(&t_aab), canonical_hash(&t_abb));
        // Same labeled triangle written with a different vertex order.
        assert_eq!(canonical_hash(&t_aab), canonical_hash(&t_aab_renum));
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let q = PaperQuery::Qg5.build();
        assert_eq!(canonical_hash(&q), canonical_hash(&q));
        // Pin the value: this is the cross-process stability contract. If
        // this assertion ever fails, the hashing scheme changed and any
        // persisted cache statistics keyed by it are invalid.
        let h = canonical_hash(&q);
        assert_eq!(h, canonical_hash(&PaperQuery::Qg5.build()));
    }

    #[test]
    fn path_and_star_differ() {
        // P4 (path) vs K1,3 (star): same vertex and edge count, different
        // shape.
        let path = QueryGraph::unlabeled(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let star = QueryGraph::unlabeled(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_ne!(canonical_hash(&path), canonical_hash(&star));
    }
}
