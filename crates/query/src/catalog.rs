//! Catalog of standard query graphs.
//!
//! The paper's Figure 6 queries QG1–QG5 are the canonical unlabeled patterns
//! used by PsgL, TTJ, and DualSim (all nodes share label 0). Figure 6 is not
//! machine-readable in our source, so the shapes are reconstructed from the
//! paper's own constraints: §2.2 describes QG1 as three mutually equivalent
//! vertices (a triangle); Table 2's theoretical CECI sizes imply edge counts
//! 3, 4, 5, 6, 6; and Figures 11/18 give backtracking depths 3, 4, and 5 for
//! QG1, QG3, QG5. That pins the classic sequence: triangle, square, chordal
//! square (diamond), 4-clique, house.

use crate::query_graph::QueryGraph;

/// The five Figure-6 query graphs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaperQuery {
    /// QG1 — triangle: 3 vertices, 3 edges.
    Qg1,
    /// QG2 — square (4-cycle): 4 vertices, 4 edges.
    Qg2,
    /// QG3 — chordal square / diamond: 4 vertices, 5 edges.
    Qg3,
    /// QG4 — 4-clique: 4 vertices, 6 edges.
    Qg4,
    /// QG5 — house (4-cycle with a triangle roof): 5 vertices, 6 edges.
    Qg5,
}

impl PaperQuery {
    /// All five queries in order.
    pub const ALL: [PaperQuery; 5] = [
        PaperQuery::Qg1,
        PaperQuery::Qg2,
        PaperQuery::Qg3,
        PaperQuery::Qg4,
        PaperQuery::Qg5,
    ];

    /// The display name used in the paper ("QG1" ... "QG5").
    pub fn name(self) -> &'static str {
        match self {
            PaperQuery::Qg1 => "QG1",
            PaperQuery::Qg2 => "QG2",
            PaperQuery::Qg3 => "QG3",
            PaperQuery::Qg4 => "QG4",
            PaperQuery::Qg5 => "QG5",
        }
    }

    /// Builds the query graph.
    pub fn build(self) -> QueryGraph {
        let (n, edges): (usize, &[(u32, u32)]) = match self {
            PaperQuery::Qg1 => (3, &[(0, 1), (1, 2), (2, 0)]),
            PaperQuery::Qg2 => (4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            PaperQuery::Qg3 => (4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
            PaperQuery::Qg4 => (4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            PaperQuery::Qg5 => (5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]),
        };
        QueryGraph::unlabeled(n, edges).expect("catalog queries are connected")
    }
}

/// A path query `u_0 - u_1 - ... - u_{n-1}` (unlabeled).
pub fn path(n: usize) -> QueryGraph {
    assert!(n >= 1);
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    QueryGraph::unlabeled(n, &edges).expect("paths are connected")
}

/// A cycle query of `n ≥ 3` vertices (unlabeled).
pub fn cycle(n: usize) -> QueryGraph {
    assert!(n >= 3);
    let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    edges.push((n as u32 - 1, 0));
    QueryGraph::unlabeled(n, &edges).expect("cycles are connected")
}

/// A clique query of `n ≥ 1` vertices (unlabeled).
pub fn clique(n: usize) -> QueryGraph {
    assert!(n >= 1);
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            edges.push((a, b));
        }
    }
    QueryGraph::unlabeled(n, &edges).expect("cliques are connected")
}

/// A star query: one hub connected to `leaves` leaves (unlabeled).
pub fn star(leaves: usize) -> QueryGraph {
    let edges: Vec<(u32, u32)> = (1..=leaves as u32).map(|i| (0, i)).collect();
    QueryGraph::unlabeled(leaves + 1, &edges).expect("stars are connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_shapes() {
        let expect = [(3usize, 3usize), (4, 4), (4, 5), (4, 6), (5, 6)];
        for (q, (n, m)) in PaperQuery::ALL.iter().zip(expect) {
            let built = q.build();
            assert_eq!(built.num_vertices(), n, "{} vertices", q.name());
            assert_eq!(built.num_edges(), m, "{} edges", q.name());
        }
    }

    #[test]
    fn names_match() {
        assert_eq!(PaperQuery::Qg1.name(), "QG1");
        assert_eq!(PaperQuery::Qg5.name(), "QG5");
    }

    #[test]
    fn qg3_has_chord() {
        let q = PaperQuery::Qg3.build();
        assert!(q.has_edge(ceci_graph::vid(0), ceci_graph::vid(2)));
        assert!(!q.has_edge(ceci_graph::vid(1), ceci_graph::vid(3)));
    }

    #[test]
    fn qg5_house_degrees() {
        let q = PaperQuery::Qg5.build();
        let mut degs: Vec<usize> = q.vertices().map(|v| q.degree(v)).collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![2, 2, 2, 3, 3]);
    }

    #[test]
    fn generators_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(clique(5).num_edges(), 10);
        assert_eq!(star(4).num_edges(), 4);
        assert_eq!(star(4).degree(ceci_graph::vid(0)), 4);
    }

    #[test]
    fn single_vertex_structures() {
        assert_eq!(path(1).num_vertices(), 1);
        assert_eq!(clique(1).num_vertices(), 1);
    }
}
