//! BFS query tree (§2.2).
//!
//! A BFS traversal of the query graph from the root query node yields the
//! query tree `T_q`. Query edges on the tree are *tree edges* (TE); the rest
//! are *non-tree edges* (NTE). CECI is shaped like this tree: every non-root
//! query node stores candidates keyed by its tree parent's candidates.

use ceci_graph::VertexId;

use crate::query_graph::QueryGraph;

/// The BFS query tree of a query graph rooted at the chosen root node.
#[derive(Clone, Debug)]
pub struct QueryTree {
    root: VertexId,
    bfs_order: Vec<VertexId>,
    /// `parent[u] = None` iff `u` is the root.
    parent: Vec<Option<VertexId>>,
    children: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
    tree_edges: Vec<(VertexId, VertexId)>,
    non_tree_edges: Vec<(VertexId, VertexId)>,
}

impl QueryTree {
    /// Builds the BFS tree of `query` from `root`. Neighbors are visited in
    /// ascending id order so the tree is deterministic.
    pub fn build(query: &QueryGraph, root: VertexId) -> Self {
        let n = query.num_vertices();
        assert!(root.index() < n, "root out of range");
        let mut parent = vec![None; n];
        let mut depth = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            for &nb in query.neighbors(u) {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    parent[nb.index()] = Some(u);
                    depth[nb.index()] = depth[u.index()] + 1;
                    queue.push_back(nb);
                }
            }
        }
        debug_assert_eq!(bfs_order.len(), n, "query graphs are connected");
        let mut children = vec![Vec::new(); n];
        let mut tree_edges = Vec::with_capacity(n.saturating_sub(1));
        for u in query.vertices() {
            if let Some(p) = parent[u.index()] {
                children[p.index()].push(u);
                tree_edges.push((p, u));
            }
        }
        let mut non_tree_edges = Vec::new();
        for &(a, b) in query.edges() {
            let is_tree = parent[a.index()] == Some(b) || parent[b.index()] == Some(a);
            if !is_tree {
                non_tree_edges.push((a, b));
            }
        }
        QueryTree {
            root,
            bfs_order,
            parent,
            children,
            depth,
            tree_edges,
            non_tree_edges,
        }
    }

    /// The root query node `u_s`.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The BFS traversal order (root first).
    #[inline]
    pub fn bfs_order(&self) -> &[VertexId] {
        &self.bfs_order
    }

    /// Tree parent of `u` (`None` for the root).
    #[inline]
    pub fn parent(&self, u: VertexId) -> Option<VertexId> {
        self.parent[u.index()]
    }

    /// Tree children of `u`.
    #[inline]
    pub fn children(&self, u: VertexId) -> &[VertexId] {
        &self.children[u.index()]
    }

    /// BFS depth of `u` (root = 0).
    #[inline]
    pub fn depth(&self, u: VertexId) -> u32 {
        self.depth[u.index()]
    }

    /// Tree edges as `(parent, child)` pairs.
    #[inline]
    pub fn tree_edges(&self) -> &[(VertexId, VertexId)] {
        &self.tree_edges
    }

    /// Non-tree edges as unordered pairs (orientation relative to a matching
    /// order is decided by the plan).
    #[inline]
    pub fn non_tree_edges(&self) -> &[(VertexId, VertexId)] {
        &self.non_tree_edges
    }

    /// `true` if `u` is a leaf of the tree.
    #[inline]
    pub fn is_leaf(&self, u: VertexId) -> bool {
        self.children[u.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperQuery;
    use ceci_graph::vid;

    /// The paper's Figure 1 query: u1 at the root; tree edges (u1,u2),
    /// (u1,u3), (u2,u4), (u3,u5); non-tree edges (u2,u3), (u3,u4).
    /// We use 0-based ids: u1 → 0, ..., u5 → 4.
    fn figure1_query() -> QueryGraph {
        QueryGraph::unlabeled(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4)]).unwrap()
    }

    #[test]
    fn figure1_tree_matches_paper() {
        let q = figure1_query();
        let t = QueryTree::build(&q, vid(0));
        assert_eq!(t.root(), vid(0));
        assert_eq!(t.bfs_order(), &[vid(0), vid(1), vid(2), vid(3), vid(4)]);
        let mut te = t.tree_edges().to_vec();
        te.sort();
        assert_eq!(
            te,
            vec![
                (vid(0), vid(1)),
                (vid(0), vid(2)),
                (vid(1), vid(3)),
                (vid(2), vid(4)),
            ]
        );
        let mut nte = t.non_tree_edges().to_vec();
        nte.sort();
        assert_eq!(nte, vec![(vid(1), vid(2)), (vid(2), vid(3))]);
    }

    #[test]
    fn parents_and_children_consistent() {
        let q = figure1_query();
        let t = QueryTree::build(&q, vid(0));
        assert_eq!(t.parent(vid(0)), None);
        assert_eq!(t.parent(vid(3)), Some(vid(1)));
        assert_eq!(t.children(vid(0)), &[vid(1), vid(2)]);
        assert!(t.is_leaf(vid(3)));
        assert!(t.is_leaf(vid(4)));
        assert!(!t.is_leaf(vid(2)));
    }

    #[test]
    fn depths() {
        let q = figure1_query();
        let t = QueryTree::build(&q, vid(0));
        assert_eq!(t.depth(vid(0)), 0);
        assert_eq!(t.depth(vid(1)), 1);
        assert_eq!(t.depth(vid(4)), 2);
    }

    #[test]
    fn triangle_has_one_nte() {
        let q = PaperQuery::Qg1.build();
        let t = QueryTree::build(&q, vid(0));
        assert_eq!(t.tree_edges().len(), 2);
        assert_eq!(t.non_tree_edges().len(), 1);
        assert_eq!(t.non_tree_edges()[0], (vid(1), vid(2)));
    }

    #[test]
    fn clique_tree_edge_counts() {
        let q = PaperQuery::Qg4.build();
        let t = QueryTree::build(&q, vid(0));
        assert_eq!(t.tree_edges().len(), 3);
        assert_eq!(t.non_tree_edges().len(), 3);
    }

    #[test]
    fn different_roots_give_different_trees() {
        let q = PaperQuery::Qg5.build();
        let t0 = QueryTree::build(&q, vid(0));
        let t2 = QueryTree::build(&q, vid(2));
        assert_eq!(t0.root(), vid(0));
        assert_eq!(t2.root(), vid(2));
        assert_eq!(t0.bfs_order()[0], vid(0));
        assert_eq!(t2.bfs_order()[0], vid(2));
        // Both cover all vertices.
        assert_eq!(t0.bfs_order().len(), 5);
        assert_eq!(t2.bfs_order().len(), 5);
    }

    #[test]
    fn tree_plus_nontree_equals_all_edges() {
        for pq in PaperQuery::ALL {
            let q = pq.build();
            let t = QueryTree::build(&q, vid(0));
            assert_eq!(
                t.tree_edges().len() + t.non_tree_edges().len(),
                q.num_edges(),
                "{}",
                pq.name()
            );
        }
    }
}
