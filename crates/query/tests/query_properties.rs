//! Property tests for query preprocessing: plan invariants on random
//! connected queries against random graphs.

use ceci_graph::{Graph, LabelId, LabelSet, VertexId};
use ceci_query::nec::{automorphisms, symmetry_constraints};
use ceci_query::order::is_valid_order;
use ceci_query::{OrderStrategy, PlanOptions, QueryGraph, QueryPlan};
use proptest::prelude::*;

/// Random connected query: a random tree plus extra random edges.
fn arb_query(max_n: usize) -> impl Strategy<Value = QueryGraph> {
    (2usize..=max_n, any::<u64>(), 1u32..=3).prop_map(|(n, seed, labels)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (rng.gen_range(0..i), i)).collect();
        for _ in 0..n / 2 {
            let a = rng.gen_range(0..n as u32);
            let b = rng.gen_range(0..n as u32);
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        let label_ids: Vec<LabelId> = (0..n).map(|_| LabelId(rng.gen_range(0..labels))).collect();
        QueryGraph::with_labels(&label_ids, &edges).expect("tree + extras is connected")
    })
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..=30, any::<u64>(), 1u32..=3).prop_map(|(n, seed, labels)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(0.3) {
                    edges.push((VertexId(a), VertexId(b)));
                }
            }
        }
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|_| LabelSet::single(LabelId(rng.gen_range(0..labels))))
            .collect();
        Graph::new(label_sets, &edges, false)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plans_satisfy_structural_invariants(query in arb_query(10), graph in arb_graph()) {
        for order in [OrderStrategy::Bfs, OrderStrategy::EdgeRank, OrderStrategy::PathRank] {
            let plan = QueryPlan::with_options(query.clone(), &graph, &PlanOptions {
                order,
                ..Default::default()
            });
            // Matching order is a valid topological order of the tree.
            prop_assert!(is_valid_order(plan.tree(), plan.matching_order()));
            // Positions are consistent.
            for (i, &u) in plan.matching_order().iter().enumerate() {
                prop_assert_eq!(plan.position(u), i);
            }
            // Tree edges + NTEs account for every query edge.
            let nte_count: usize = query.vertices().map(|u| plan.backward_nte(u).len()).sum();
            prop_assert_eq!(
                plan.tree().tree_edges().len() + nte_count,
                query.num_edges()
            );
            // Forward/backward NTE views agree.
            let fwd: usize = query.vertices().map(|u| plan.forward_nte(u).len()).sum();
            prop_assert_eq!(fwd, nte_count);
            // Every backward NTE is a real query edge appearing earlier.
            for u in query.vertices() {
                for &w in plan.backward_nte(u) {
                    prop_assert!(query.has_edge(u, w));
                    prop_assert!(plan.position(w) < plan.position(u));
                }
            }
        }
    }

    #[test]
    fn symmetry_constraints_quotient_fully(query in arb_query(7)) {
        if let Some(autos) = automorphisms(&query, 200_000) {
            let constraints = symmetry_constraints(&autos);
            let satisfying = autos
                .iter()
                .filter(|perm| {
                    constraints
                        .iter()
                        .all(|c| perm[c.smaller.index()] < perm[c.larger.index()])
                })
                .count();
            prop_assert_eq!(satisfying, 1);
        }
    }

    #[test]
    fn automorphisms_form_a_group(query in arb_query(6)) {
        if let Some(autos) = automorphisms(&query, 200_000) {
            let n = query.num_vertices();
            let identity: Vec<VertexId> = query.vertices().collect();
            prop_assert!(autos.contains(&identity));
            // Closed under composition (spot-check all pairs for small n).
            for a in &autos {
                for b in &autos {
                    let composed: Vec<VertexId> =
                        (0..n).map(|i| a[b[i].index()]).collect();
                    prop_assert!(autos.contains(&composed));
                }
            }
        }
    }

    #[test]
    fn initial_candidates_contain_all_true_matches(query in arb_query(5), graph in arb_graph()) {
        // Brute force: for every single query vertex u and data vertex v
        // that participates in at least one embedding mapping u→v, v must be
        // in u's initial candidate set (the filters are safe).
        let plan = QueryPlan::new(query.clone(), &graph);
        let embeddings = brute_force(&graph, &query);
        for emb in &embeddings {
            for u in query.vertices() {
                prop_assert!(
                    plan.initial_candidates(u).binary_search(&emb[u.index()]).is_ok(),
                    "candidate filter dropped a true match"
                );
            }
        }
    }
}

/// Minimal brute-force enumerator local to this test (no symmetry breaking).
fn brute_force(graph: &Graph, query: &QueryGraph) -> Vec<Vec<VertexId>> {
    let n = query.num_vertices();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::new();
    fn rec(
        graph: &Graph,
        query: &QueryGraph,
        depth: usize,
        mapping: &mut Vec<Option<VertexId>>,
        used: &mut std::collections::HashSet<VertexId>,
        out: &mut Vec<Vec<VertexId>>,
    ) {
        let n = query.num_vertices();
        if depth == n {
            out.push(mapping.iter().map(|m| m.unwrap()).collect());
            return;
        }
        let u = VertexId(depth as u32);
        for v in graph.vertices() {
            if used.contains(&v) || !query.labels(u).is_subset_of(graph.labels(v)) {
                continue;
            }
            let ok = query.neighbors(u).iter().all(|&w| {
                mapping[w.index()]
                    .map(|img| graph.has_edge(v, img))
                    .unwrap_or(true)
            });
            if !ok {
                continue;
            }
            mapping[u.index()] = Some(v);
            used.insert(v);
            rec(graph, query, depth + 1, mapping, used, out);
            mapping[u.index()] = None;
            used.remove(&v);
        }
    }
    rec(graph, query, 0, &mut mapping, &mut used, &mut out);
    out
}
