//! Differential suite for parallel index construction: for every input, a
//! CECI built with N filter threads must be **bit-identical** to the
//! 1-thread build — same pivots, same candidate sets, same TE/NTE tables
//! (keys, values, and slot maps via `CompactTable` equality), same
//! cardinalities, and byte-for-byte identical size accounting.
//!
//! Coverage deliberately spans both dispatch paths:
//!
//! * Small proptest-generated graphs stay under the parallel-fanout
//!   threshold, checking that asking for threads on tiny frontiers is a
//!   clean no-op.
//! * Generator graphs (Erdős–Rényi, Barabási–Albert, Kronecker) have
//!   frontiers in the hundreds-to-thousands, engaging the strided worker
//!   fan-out and the deterministic chunk merge for real.
//! * `build_for_pivots` with proper pivot subsets exercises the restricted
//!   entry path used by the distributed setting (§5).

use ceci_core::{BuildOptions, Ceci};
use ceci_graph::generators::{
    barabasi_albert, erdos_renyi, inject_random_labels, kronecker_default,
};
use ceci_graph::{extract_query, lid, vid, Graph, LabelSet};
use ceci_query::{PaperQuery, QueryGraph, QueryPlan};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// Thread counts under test (1 is the reference, always built).
const THREADS: [usize; 3] = [2, 4, 8];

/// Asserts two indexes are identical in every observable dimension.
fn assert_identical(reference: &Ceci, other: &Ceci, plan: &QueryPlan, what: &str) {
    assert_eq!(reference.pivots(), other.pivots(), "{what}: pivots differ");
    assert_eq!(
        reference.total_cardinality(),
        other.total_cardinality(),
        "{what}: total cardinality differs"
    );
    assert_eq!(
        reference.size_bytes(),
        other.size_bytes(),
        "{what}: index bytes differ"
    );
    assert_eq!(
        reference.arena_bytes(),
        other.arena_bytes(),
        "{what}: arena bytes differ"
    );
    for u in plan.query().vertices() {
        assert_eq!(
            reference.candidates(u),
            other.candidates(u),
            "{what}: candidates of {u:?} differ"
        );
        assert_eq!(
            reference.te(u),
            other.te(u),
            "{what}: TE table of {u:?} differs"
        );
        assert_eq!(
            reference.nte(u),
            other.nte(u),
            "{what}: NTE tables of {u:?} differ"
        );
        for &v in reference.candidates(u) {
            assert_eq!(
                reference.cardinality(u, v),
                other.cardinality(u, v),
                "{what}: cardinality({u:?}, {v:?}) differs"
            );
        }
    }
}

/// Builds at 1 thread and at every count in [`THREADS`], asserting
/// identity. Returns the reference build.
fn check_all_thread_counts(graph: &Graph, plan: &QueryPlan) -> Ceci {
    let reference = Ceci::build_with(
        graph,
        plan,
        BuildOptions {
            threads: 1,
            ..Default::default()
        },
    );
    for threads in THREADS {
        let parallel = Ceci::build_with(
            graph,
            plan,
            BuildOptions {
                threads,
                ..Default::default()
            },
        );
        assert_identical(&reference, &parallel, plan, &format!("{threads} threads"));
    }
    reference
}

/// Same, but through [`Ceci::build_for_pivots`] with an explicit subset.
fn check_pivot_subset(graph: &Graph, plan: &QueryPlan, pivots: &[ceci_graph::VertexId]) {
    let reference = Ceci::build_for_pivots(
        graph,
        plan,
        BuildOptions {
            threads: 1,
            ..Default::default()
        },
        pivots.to_vec(),
    );
    for threads in THREADS {
        let parallel = Ceci::build_for_pivots(
            graph,
            plan,
            BuildOptions {
                threads,
                ..Default::default()
            },
            pivots.to_vec(),
        );
        assert_identical(
            &reference,
            &parallel,
            plan,
            &format!("pivot subset, {threads} threads"),
        );
    }
}

/// A labeled query extracted from the graph itself, so candidate structure
/// is guaranteed non-trivial.
fn extracted_query(graph: &Graph, size: usize, seed: u64) -> Option<QueryGraph> {
    let q = extract_query(graph, size, seed, 5)?;
    QueryGraph::from_graph(&q.pattern).ok()
}

// ---------------------------------------------------------------------------
// Generator graphs: frontiers large enough to engage the worker fan-out.
// ---------------------------------------------------------------------------

#[test]
fn erdos_renyi_builds_are_thread_count_invariant() {
    let core = erdos_renyi(1_500, 9_000, 0xE2D05);
    let graph = inject_random_labels(&core, 3, 0xE2D06);
    for (size, seed) in [(4usize, 11u64), (6, 23), (8, 37)] {
        let Some(query) = extracted_query(&graph, size, seed) else {
            continue;
        };
        let plan = QueryPlan::new(query, &graph);
        check_all_thread_counts(&graph, &plan);
    }
}

#[test]
fn barabasi_albert_builds_are_thread_count_invariant() {
    // Power-law degrees: hub frontiers are orders of magnitude larger than
    // tail frontiers, the worst case for static work splitting.
    let core = barabasi_albert(2_000, 4, 0xBA11);
    let graph = inject_random_labels(&core, 2, 0xBA12);
    for (size, seed) in [(5usize, 101u64), (7, 211)] {
        let Some(query) = extracted_query(&graph, size, seed) else {
            continue;
        };
        let plan = QueryPlan::new(query, &graph);
        check_all_thread_counts(&graph, &plan);
    }
}

#[test]
fn kronecker_unlabeled_triangles_are_thread_count_invariant() {
    // Unlabeled: every vertex is a root candidate, maximizing frontier
    // width (the labeled experiments shrink frontiers by ~|labels|).
    let graph = kronecker_default(10, 6, 0xC0FFEE);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    check_all_thread_counts(&graph, &plan);
}

#[test]
fn pivot_subsets_are_thread_count_invariant() {
    let core = erdos_renyi(1_200, 7_000, 0x51D0);
    let graph = inject_random_labels(&core, 2, 0x51D1);
    let Some(query) = extracted_query(&graph, 5, 77) else {
        panic!("no query extracted");
    };
    let plan = QueryPlan::new(query, &graph);
    // Full build tells us the root's candidate set; carve subsets from it.
    let full = check_all_thread_counts(&graph, &plan);
    let roots: Vec<_> = full.candidates(plan.root()).to_vec();
    assert!(!roots.is_empty(), "query has no root candidates");
    // Every other candidate; first half; a singleton.
    let alternating: Vec<_> = roots.iter().copied().step_by(2).collect();
    let half: Vec<_> = roots[..roots.len().div_ceil(2)].to_vec();
    let single = vec![roots[roots.len() / 2]];
    for subset in [alternating, half, single] {
        check_pivot_subset(&graph, &plan, &subset);
    }
}

// ---------------------------------------------------------------------------
// Proptest: small random graphs (sequential dispatch path) must also be
// invariant — threads on a tiny frontier is a strict no-op.
// ---------------------------------------------------------------------------

fn arb_graph() -> impl PropStrategy<Value = Graph> {
    (4usize..=24, 0.05f64..0.5, 1u32..=3, any::<u64>()).prop_map(|(n, p, labels, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(p) {
                    edges.push((vid(a), vid(b)));
                }
            }
        }
        let label_sets: Vec<LabelSet> = (0..n)
            .map(|_| LabelSet::single(lid(rng.gen_range(0..labels))))
            .collect();
        Graph::new(label_sets, &edges, false)
    })
}

fn arb_query() -> impl PropStrategy<Value = QueryGraph> {
    prop_oneof![
        Just(PaperQuery::Qg1.build()),
        Just(PaperQuery::Qg3.build()),
        Just(PaperQuery::Qg4.build()),
        Just(ceci_query::catalog::path(4)),
        Just(ceci_query::catalog::star(3)),
        Just(ceci_query::catalog::cycle(5)),
        Just(QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap()),
        Just(
            QueryGraph::with_labels(&[lid(0), lid(1), lid(0)], &[(0, 1), (1, 2), (0, 2)]).unwrap()
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_small_graphs_are_thread_count_invariant(
        graph in arb_graph(),
        query in arb_query(),
    ) {
        let plan = QueryPlan::new(query, &graph);
        check_all_thread_counts(&graph, &plan);
    }

    #[test]
    fn random_pivot_subsets_are_thread_count_invariant(
        graph in arb_graph(),
        query in arb_query(),
        keep in any::<u64>(),
    ) {
        let plan = QueryPlan::new(query, &graph);
        let full = Ceci::build(&graph, &plan);
        let roots: Vec<_> = full.candidates(plan.root()).to_vec();
        if !roots.is_empty() {
            // Pseudo-random subset keyed by `keep`; always ≥ 1 pivot.
            let subset: Vec<_> = roots
                .iter()
                .enumerate()
                .filter(|(i, _)| (keep >> (i % 64)) & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let subset = if subset.is_empty() { vec![roots[0]] } else { subset };
            check_pivot_subset(&graph, &plan, &subset);
        }
    }
}
