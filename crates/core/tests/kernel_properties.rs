//! Differential property tests for the intersection kernel suite and the
//! dense candidate-table lookup.
//!
//! Every concrete kernel (merge, branchless merge, gallop, SIMD) plus the
//! adaptive dispatcher must agree element-for-element with the scalar merge
//! reference on randomized sorted inputs covering empty, disjoint,
//! identical, and heavily skewed list shapes; the frozen `CompactTable`'s
//! O(1) dense lookup must agree with its binary-search reference for every
//! probed key.

use ceci_core::intersect::{
    intersect_many_with, intersect_with, merge_intersect, sorted_contains, Kernel,
};
use ceci_core::tables::BuildTable;
use ceci_graph::{vid, VertexId};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Sorted, deduplicated vertex list from arbitrary raw values.
fn sorted_ids(raw: Vec<u32>) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = raw.into_iter().map(vid).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn reference(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let mut ops = 0u64;
    merge_intersect(a, b, &mut out, &mut ops);
    out
}

/// Pairs covering the interesting shape space: balanced, skewed 1:many,
/// disjoint ranges, and dense overlap.
fn list_pair() -> impl Strategy<Value = (Vec<VertexId>, Vec<VertexId>)> {
    prop_oneof![
        // Balanced, same universe (dense overlap).
        (pvec(0u32..256, 0..128), pvec(0u32..256, 0..128)),
        // Heavily skewed: tiny probe list vs large haystack.
        (pvec(0u32..10_000, 0..6), pvec(0u32..10_000, 0..1024)),
        // Disjoint universes.
        (pvec(0u32..100, 0..64), pvec(1_000u32..1_100, 0..64)),
        // Sparse in a huge id space (SIMD block boundaries).
        (pvec(0u32..1_000_000, 0..40), pvec(0u32..1_000_000, 0..40)),
    ]
    .prop_map(|(a, b)| (sorted_ids(a), sorted_ids(b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_kernel_matches_merge_reference((a, b) in list_pair()) {
        let expected = reference(&a, &b);
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let mut out = vec![vid(99); 3]; // stale content must be overwritten
            let mut ops = 0u64;
            intersect_with(kernel, &a, &b, &mut out, &mut ops);
            prop_assert_eq!(
                &out,
                &expected,
                "kernel {} diverges from merge reference",
                kernel.name()
            );
            // Argument order must not matter either.
            let mut flipped = Vec::new();
            let mut ops2 = 0u64;
            intersect_with(kernel, &b, &a, &mut flipped, &mut ops2);
            prop_assert_eq!(&flipped, &expected, "kernel {} asymmetric", kernel.name());
        }
    }

    #[test]
    fn identical_lists_are_fixpoints(raw in pvec(0u32..5_000, 0..512)) {
        let a = sorted_ids(raw);
        for kernel in Kernel::CONCRETE {
            let mut out = Vec::new();
            let mut ops = 0u64;
            intersect_with(kernel, &a, &a, &mut out, &mut ops);
            prop_assert_eq!(&out, &a, "kernel {} not a fixpoint on x∩x", kernel.name());
        }
    }

    #[test]
    fn many_way_matches_pairwise_reference(
        (base, b) in list_pair(),
        c_raw in pvec(0u32..256, 0..96),
    ) {
        let c = sorted_ids(c_raw);
        let expected = reference(&reference(&base, &b), &c);
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            let mut ops = 0u64;
            intersect_many_with(
                kernel,
                &base,
                &[b.as_slice(), c.as_slice()],
                &mut out,
                &mut scratch,
                &mut ops,
            );
            prop_assert_eq!(&out, &expected, "many-way {} diverges", kernel.name());
        }
    }

    #[test]
    fn ops_are_deterministic((a, b) in list_pair()) {
        for kernel in Kernel::CONCRETE {
            let run = || {
                let mut out = Vec::new();
                let mut ops = 0u64;
                intersect_with(kernel, &a, &b, &mut out, &mut ops);
                ops
            };
            prop_assert_eq!(run(), run(), "kernel {} ops nondeterministic", kernel.name());
        }
    }

    #[test]
    fn sorted_contains_agrees_with_linear_scan(
        raw in pvec(0u32..2_000, 0..256),
        probes in pvec(0u32..2_200, 1..32),
    ) {
        let list = sorted_ids(raw);
        for p in probes {
            let mut ops = 0u64;
            prop_assert_eq!(
                sorted_contains(&list, vid(p), &mut ops),
                list.contains(&vid(p))
            );
        }
    }

    #[test]
    fn compact_table_dense_lookup_matches_binary_search(
        keys_raw in pvec(0u32..4_000, 0..64),
        probes in pvec(0u32..4_400, 1..64),
    ) {
        let keys = sorted_ids(keys_raw);
        let mut build = BuildTable::new();
        for &k in &keys {
            // Value list content is irrelevant to the lookup path; derive a
            // small deterministic list per key.
            build.push_key(k, &[vid(k.0 * 2), vid(k.0 * 2 + 1)]);
        }
        let table = build.freeze();
        for p in probes.into_iter().map(vid) {
            prop_assert_eq!(table.get(p), table.get_binary(p), "lookup diverges at {p:?}");
        }
        // Every stored key must hit through the dense path.
        for &k in &keys {
            prop_assert!(table.get(k).is_some());
        }
    }
}
