//! Differential tests for observability: attaching the per-depth profile
//! must be **invisible** to the engine's answers.
//!
//! For every intersection kernel × worker count, the run with `profile:
//! true` must produce the *bit-identical* exact [`Counters`] struct, the
//! same embedding count, and (when collected) the same canonical embedding
//! list as the run with profiling off. On top of that, the profile's own
//! exact totals must reconcile with the global counters — per-depth
//! intersections sum to `intersection_ops`, per-depth calls to
//! `recursive_calls`, per-depth emissions to `embeddings`.

use ceci_core::{enumerate_parallel, Ceci, Counters, Kernel, ParallelOptions, ParallelResult};
use ceci_graph::generators::{barabasi_albert, erdos_renyi, inject_random_labels};
use ceci_graph::Graph;
use ceci_query::{PaperQuery, QueryGraph, QueryPlan};

fn datasets() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "ba-600",
            inject_random_labels(&barabasi_albert(600, 3, 0xCEC1), 3, 0x1AB),
        ),
        (
            "er-400",
            inject_random_labels(&erdos_renyi(400, 2_400, 0x5EED), 2, 0x2AB),
        ),
    ]
}

fn queries() -> Vec<(&'static str, QueryGraph)> {
    vec![
        ("qg1", PaperQuery::Qg1.build()),
        ("qg3", PaperQuery::Qg3.build()),
        ("path4", ceci_query::catalog::path(4)),
        ("cycle5", ceci_query::catalog::cycle(5)),
    ]
}

fn run(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    kernel: Kernel,
    workers: usize,
    profile: bool,
    collect: bool,
) -> ParallelResult {
    enumerate_parallel(
        graph,
        plan,
        ceci,
        &ParallelOptions {
            workers,
            kernel,
            profile,
            collect,
            ..Default::default()
        },
    )
}

fn assert_identical(label: &str, off: &ParallelResult, on: &ParallelResult) {
    assert_eq!(
        off.total_embeddings, on.total_embeddings,
        "{label}: embedding count changed with profiling on"
    );
    // `Counters` is `PartialEq + Eq` over every exact field — one assert
    // covers recursive calls, intersection ops, edge verifications,
    // injectivity and symmetry rejections, and embeddings.
    let (a, b): (&Counters, &Counters) = (&off.counters, &on.counters);
    assert_eq!(a, b, "{label}: exact counters changed with profiling on");
    assert_eq!(
        off.embeddings, on.embeddings,
        "{label}: collected embeddings changed with profiling on"
    );
    assert!(
        off.profile.is_none(),
        "{label}: profile materialized without being requested"
    );
    let p = on
        .profile
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: profile requested but missing"));
    assert_eq!(
        p.total_intersections(),
        on.counters.intersection_ops,
        "{label}: per-depth intersections must sum to the global counter"
    );
    assert_eq!(
        p.total_calls(),
        on.counters.recursive_calls,
        "{label}: per-depth calls must sum to the global counter"
    );
    assert_eq!(
        p.total_emitted(),
        on.counters.embeddings,
        "{label}: per-depth emissions must sum to the global counter"
    );
}

#[test]
fn profiling_is_invisible_across_kernels_and_workers() {
    for (gname, graph) in datasets() {
        for (qname, query) in queries() {
            let plan = QueryPlan::new(query, &graph);
            let ceci = Ceci::build(&graph, &plan);
            for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
                for workers in [1usize, 4] {
                    let label = format!("{gname}/{qname}/{}/{workers}w", kernel.name());
                    let off = run(&graph, &plan, &ceci, kernel, workers, false, false);
                    let on = run(&graph, &plan, &ceci, kernel, workers, true, false);
                    assert_identical(&label, &off, &on);
                }
            }
        }
    }
}

#[test]
fn profiling_preserves_collected_embeddings_bitwise() {
    let graph = inject_random_labels(&barabasi_albert(300, 3, 0xF00D), 2, 0x3AB);
    for (qname, query) in queries() {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        for workers in [1usize, 4] {
            let label = format!("collect/{qname}/{workers}w");
            let off = run(&graph, &plan, &ceci, Kernel::Adaptive, workers, false, true);
            let on = run(&graph, &plan, &ceci, Kernel::Adaptive, workers, true, true);
            assert_identical(&label, &off, &on);
            assert!(
                off.embeddings.is_some(),
                "{label}: collection must produce embeddings"
            );
        }
    }
}

#[test]
fn profiling_is_invisible_under_limits() {
    // First-k truncation takes the early-exit paths through the drain loop;
    // the batched profile flush must fire on those too.
    let graph = inject_random_labels(&barabasi_albert(500, 3, 0xBEEF), 3, 0x4AB);
    let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    let ceci = Ceci::build(&graph, &plan);
    let full = run(&graph, &plan, &ceci, Kernel::Adaptive, 1, false, false);
    assert!(full.total_embeddings > 8, "workload too small to truncate");
    for limit in [1u64, 7, full.total_embeddings / 2] {
        let mk = |profile: bool| {
            enumerate_parallel(
                &graph,
                &plan,
                &ceci,
                &ParallelOptions {
                    workers: 1,
                    limit: Some(limit),
                    profile,
                    ..Default::default()
                },
            )
        };
        let off = mk(false);
        let on = mk(true);
        assert_identical(&format!("limit={limit}"), &off, &on);
    }
}
