//! Statistical property tests for the random-walk cardinality estimator.
//!
//! The estimator is the adaptive planner's eyes: if it is biased, silently
//! non-deterministic, or blind to exact zeros, every downstream decision
//! (order choice, deadline admission, APPROX answers) inherits the flaw.
//! Three properties are pinned here:
//!
//! 1. **Exact-zero detection** — an index with no surviving pivots must
//!    report `exact_zero` with a degenerate (0, 0) interval, across
//!    generator families.
//! 2. **Determinism per seed** — identical options ⇒ bit-identical
//!    estimates, and different seeds still converge on the same quantity.
//! 3. **Unbiasedness** (differential, property-based) — across generator
//!    graphs and paper queries, the estimate lands within 4 standard errors
//!    of the exact count (plus a small relative floor for near-zero-variance
//!    cases), and the per-depth cost decomposition stays consistent with the
//!    total.

use ceci_core::{count_embeddings, estimate_cost, estimate_embeddings, Ceci, EstimateOptions};
use ceci_graph::generators::{barabasi_albert, erdos_renyi, kronecker_default};
use ceci_graph::Graph;
use ceci_query::{PaperQuery, QueryPlan};
use proptest::prelude::*;

fn generator_graph(family: u8, scale: u8, seed: u64) -> Graph {
    let n = 1usize << scale;
    match family % 3 {
        0 => kronecker_default(scale as u32, 5, seed),
        1 => erdos_renyi(n, n * 4, seed),
        _ => barabasi_albert(n, 3, seed),
    }
}

fn paper_query(idx: u8) -> PaperQuery {
    [
        PaperQuery::Qg1,
        PaperQuery::Qg2,
        PaperQuery::Qg3,
        PaperQuery::Qg5,
    ][idx as usize % 4]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Mean within 4σ of the exact count on arbitrary generator graphs, and
    /// the cost decomposition's deepest volume equals the mean.
    #[test]
    fn estimate_mean_within_four_sigma(
        family in 0u8..3,
        scale in 7u8..9,
        graph_seed in 0u64..1_000,
        query_idx in 0u8..4,
        est_seed in 1u64..1_000,
    ) {
        let graph = generator_graph(family, scale, graph_seed);
        let plan = QueryPlan::new(paper_query(query_idx).build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let exact = count_embeddings(&graph, &plan, &ceci) as f64;
        let opts = EstimateOptions { walks: 4_000, seed: est_seed };
        let cost = estimate_cost(&graph, &plan, &ceci, &opts);
        let est = cost.estimate;
        if est.exact_zero {
            prop_assert_eq!(exact, 0.0);
        } else {
            // 4σ plus a 10% relative floor: a handful of (graph, seed)
            // combinations have heavy-tailed walk weights whose sample σ
            // under-covers; the floor keeps the test meaningful (the
            // estimate must still be the right magnitude) without flaking.
            let slack = 4.0 * est.std_error + 0.10 * exact.max(1.0);
            prop_assert!(
                (est.mean - exact).abs() <= slack,
                "estimate {} ± {} vs exact {}", est.mean, est.std_error, exact
            );
            // Decomposition consistency: deepest volume IS the mean, and
            // every volume is non-negative.
            let last = *cost.depth_volumes.last().unwrap();
            prop_assert!((last - est.mean).abs() < 1e-6 * est.mean.max(1.0));
            prop_assert!(cost.depth_volumes.iter().all(|&v| v >= 0.0));
            prop_assert!(cost.volume() >= est.mean - 1e-9);
        }
    }

    /// Identical options produce bit-identical estimates, on any input.
    #[test]
    fn estimate_deterministic_per_seed(
        family in 0u8..3,
        graph_seed in 0u64..1_000,
        query_idx in 0u8..4,
        est_seed in 0u64..1_000,
        walks in 1u64..500,
    ) {
        let graph = generator_graph(family, 7, graph_seed);
        let plan = QueryPlan::new(paper_query(query_idx).build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let opts = EstimateOptions { walks, seed: est_seed };
        let a = estimate_cost(&graph, &plan, &ceci, &opts);
        let b = estimate_cost(&graph, &plan, &ceci, &opts);
        prop_assert_eq!(a.estimate.mean, b.estimate.mean);
        prop_assert_eq!(a.estimate.std_error, b.estimate.std_error);
        prop_assert_eq!(a.depth_volumes.clone(), b.depth_volumes.clone());
        // And the walk-budget-1 degenerate case renders a sane interval.
        if walks == 1 {
            prop_assert_eq!(a.estimate.std_error, 0.0);
            let (lo, hi) = a.estimate.ci95();
            prop_assert_eq!(lo, hi);
        }
    }

    /// A query whose label never occurs in the data graph is detected as
    /// exactly zero regardless of generator family or size.
    #[test]
    fn estimate_detects_exact_zero(
        family in 0u8..3,
        scale in 6u8..9,
        graph_seed in 0u64..1_000,
    ) {
        use ceci_graph::lid;
        // Generator graphs are unlabeled (label 0 everywhere); a query
        // demanding label 9 can never match.
        let graph = generator_graph(family, scale, graph_seed);
        let query = ceci_query::QueryGraph::with_labels(&[lid(9), lid(9)], &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let est = estimate_embeddings(&graph, &plan, &ceci, &EstimateOptions::default());
        prop_assert!(est.exact_zero);
        prop_assert_eq!(est.mean, 0.0);
        prop_assert_eq!(est.std_error, 0.0);
        prop_assert_eq!(est.ci95(), (0.0, 0.0));
    }
}
