//! Sampling-based approximate embedding counting over CECI.
//!
//! The paper's related work (§7) separates exact listing from approximate
//! counting; CECI's structure happens to make a classic Knuth/WanderJoin
//! estimator nearly free: a random walk descends the matching order, at each
//! depth computing the true matching-node set (TE ∩ NTE ∩ injectivity ∩
//! symmetry — the same set enumeration would branch over), picks one
//! uniformly, and multiplies the branch count into its weight. The weight of
//! a completed walk is an unbiased estimate of the embeddings under its
//! pivot; dead ends contribute zero. Averaging over walks and pivots yields
//! an unbiased estimate of the total count at a tiny fraction of full
//! enumeration cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::enumerate::{EnumOptions, Enumerator};
use crate::index::Ceci;
use crate::metrics::Counters;

/// Options for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct EstimateOptions {
    /// Number of random walks.
    pub walks: u64,
    /// RNG seed (estimates are deterministic per seed).
    pub seed: u64,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            walks: 1_000,
            seed: 0xE57,
        }
    }
}

/// An approximate embedding count.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Unbiased point estimate of the total embedding count.
    pub mean: f64,
    /// Standard error of the mean (0 when the estimate is exactly 0 or the
    /// walk budget is 1).
    pub std_error: f64,
    /// Walks performed.
    pub walks: u64,
    /// `true` when the index has no pivots — the count is exactly zero.
    pub exact_zero: bool,
}

impl Estimate {
    /// Two-sided confidence interval at ±`z` standard errors.
    ///
    /// Both ends are clamped to the feasible range: counts are never
    /// negative, and the upper bound never falls below the lower one (which
    /// a negative `z` would otherwise produce). With `std_error == 0` —
    /// exact zero, or a walk budget of 1 — the interval degenerates to
    /// `(mean, mean)`.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        let lo = (self.mean - z * self.std_error).max(0.0);
        let hi = (self.mean + z * self.std_error).max(lo);
        (lo, hi)
    }

    /// The 95% confidence interval (±1.96 standard errors).
    pub fn ci95(&self) -> (f64, f64) {
        self.interval(1.96)
    }
}

/// Per-depth cost breakdown produced by [`estimate_cost`] from the same
/// random walks that produce the total-count [`Estimate`].
///
/// `depth_volumes[d]` is an unbiased estimate of the number of partial
/// embeddings with `d + 1` query vertices mapped (depth `d` of the matching
/// order). Their sum is the total intermediate-result volume — the cost
/// the adaptive planner minimizes when comparing candidate orders.
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// The total-count estimate; identical to what
    /// [`estimate_embeddings`] returns for the same options.
    pub estimate: Estimate,
    /// Estimated partial-embedding count per depth of the matching order.
    pub depth_volumes: Vec<f64>,
    /// Estimated set-intersection comparisons per depth: each walk charges
    /// the exact `intersection_ops` its matching-node computation performed,
    /// weighted by the partial-embedding count it represents — an unbiased
    /// estimate of the comparisons full enumeration would execute at that
    /// depth. Tracks runtime far better than raw volume when candidate-list
    /// lengths differ between orders.
    pub depth_work: Vec<f64>,
}

impl CostEstimate {
    /// Total estimated intermediate-result volume (sum over depths) — the
    /// deadline-admission cost unit ([`crate::adaptive::admit`] multiplies it
    /// by an observed or default per-unit time).
    pub fn volume(&self) -> f64 {
        self.depth_volumes.iter().sum()
    }

    /// The planner's scalar score: estimated intersection comparisons plus
    /// one unit per intermediate result (the constant per-node bookkeeping).
    /// Smaller means a cheaper plan.
    pub fn work(&self) -> f64 {
        self.depth_work.iter().sum::<f64>() + self.volume()
    }

    /// Estimated branch factor entering each depth:
    /// `branch_factors()[d] = depth_volumes[d + 1] / depth_volumes[d]`
    /// (0 when the parent depth's volume is 0). Length is one less than
    /// `depth_volumes`.
    pub fn branch_factors(&self) -> Vec<f64> {
        self.depth_volumes
            .windows(2)
            .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { 0.0 })
            .collect()
    }

    /// Scales the estimate by `factor` — used when walks ran over a pilot
    /// index built from a sampled pivot subset, so counts must be
    /// extrapolated back to the full pivot population.
    pub fn scaled(&self, factor: f64) -> CostEstimate {
        CostEstimate {
            estimate: Estimate {
                mean: self.estimate.mean * factor,
                std_error: self.estimate.std_error * factor,
                ..self.estimate
            },
            depth_volumes: self.depth_volumes.iter().map(|v| v * factor).collect(),
            depth_work: self.depth_work.iter().map(|w| w * factor).collect(),
        }
    }
}

/// Estimates the total number of embeddings with `options.walks` random
/// walks over the CECI index.
pub fn estimate_embeddings(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &EstimateOptions,
) -> Estimate {
    estimate_cost(graph, plan, ceci, options).estimate
}

/// Runs the same random walks as [`estimate_embeddings`] but additionally
/// tracks per-depth truncated walk weights, yielding unbiased
/// partial-embedding-count estimates for every depth of the matching order.
/// The RNG consumption is identical, so `estimate_cost(..).estimate` is
/// bit-identical to `estimate_embeddings(..)` for the same options.
pub fn estimate_cost(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &EstimateOptions,
) -> CostEstimate {
    assert!(options.walks >= 1, "need at least one walk");
    let n = plan.query().num_vertices();
    let pivots: Vec<VertexId> = ceci.pivots().iter().map(|&(p, _)| p).collect();
    if pivots.is_empty() {
        return CostEstimate {
            estimate: Estimate {
                mean: 0.0,
                std_error: 0.0,
                walks: 0,
                exact_zero: true,
            },
            depth_volumes: vec![0.0; n],
            depth_work: vec![0.0; n],
        };
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut enumerator = Enumerator::new(graph, plan, ceci, EnumOptions::default());
    let mut counters = Counters::default();

    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut depth_sums = vec![0.0f64; n];
    let mut depth_work = vec![0.0f64; n];
    let mut prefix: Vec<VertexId> = Vec::with_capacity(n);
    for _ in 0..options.walks {
        prefix.clear();
        // Uniform pivot choice; weight starts at |pivots|.
        let pivot = pivots[rng.gen_range(0..pivots.len())];
        prefix.push(pivot);
        let mut weight = pivots.len() as f64;
        depth_sums[0] += weight;
        depth_work[0] += pivots.len() as f64;
        while prefix.len() < n {
            // Charge this depth the comparisons the matching-node
            // computation performs, scaled by the partial-embedding count
            // the prefix represents (its pre-branch weight): an unbiased
            // estimate of full enumeration's intersection work here.
            // Counter snapshots consume no randomness, so the count
            // estimate stays bit-identical to `estimate_embeddings`.
            let ops_before = counters.intersection_ops;
            let matching = enumerator.matching_nodes_after_prefix(&prefix, &mut counters);
            depth_work[prefix.len()] += weight * (counters.intersection_ops - ops_before) as f64;
            if matching.is_empty() {
                weight = 0.0;
                break;
            }
            weight *= matching.len() as f64;
            depth_sums[prefix.len()] += weight;
            let next = matching[rng.gen_range(0..matching.len())];
            prefix.push(next);
        }
        sum += weight;
        sum_sq += weight * weight;
    }
    let walks = options.walks as f64;
    let mean = sum / walks;
    let variance = (sum_sq / walks - mean * mean).max(0.0);
    let std_error = if options.walks > 1 {
        (variance / (walks - 1.0)).sqrt()
    } else {
        0.0
    };
    CostEstimate {
        estimate: Estimate {
            mean,
            std_error,
            walks: options.walks,
            exact_zero: false,
        },
        depth_volumes: depth_sums.iter().map(|s| s / walks).collect(),
        depth_work: depth_work.iter().map(|s| s / walks).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_embeddings;
    use crate::fixtures::{figure5, paper};
    use ceci_query::{PaperQuery, QueryPlan};

    #[test]
    fn figure1_estimate_converges() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        // Single pivot, tiny search space: a modest walk budget nails it.
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 2_000,
                seed: 1,
            },
        );
        assert!(!est.exact_zero);
        let exact = count_embeddings(&graph, &plan, &ceci) as f64;
        assert!(
            (est.mean - exact).abs() <= (3.0 * est.std_error).max(0.5),
            "estimate {} ± {} vs exact {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn figure5_estimate() {
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 4_000,
                seed: 7,
            },
        );
        // Exact count is 10.
        assert!(
            (est.mean - 10.0).abs() <= (3.0 * est.std_error).max(1.0),
            "estimate {} ± {}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn random_graph_estimate_within_tolerance() {
        use ceci_graph::generators::kronecker_default;
        let graph = kronecker_default(9, 5, 77);
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let exact = count_embeddings(&graph, &plan, &ceci) as f64;
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 20_000,
                seed: 3,
            },
        );
        // Fixed seed → deterministic; allow 4 standard errors of slack.
        assert!(
            (est.mean - exact).abs() <= 4.0 * est.std_error + 0.05 * exact,
            "estimate {} ± {} vs exact {exact}",
            est.mean,
            est.std_error
        );
        let (lo, hi) = est.interval(4.0);
        assert!(lo <= exact * 1.05 && exact * 0.95 <= hi);
    }

    #[test]
    fn empty_index_is_exactly_zero() {
        use ceci_graph::{lid, Graph};
        let graph = Graph::unlabeled(4, &[(ceci_graph::vid(0), ceci_graph::vid(1))]);
        let query = ceci_query::QueryGraph::with_labels(&[lid(7), lid(7)], &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let est = estimate_embeddings(&graph, &plan, &ceci, &EstimateOptions::default());
        assert!(est.exact_zero);
        assert_eq!(est.mean, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let opts = EstimateOptions {
            walks: 100,
            seed: 42,
        };
        let a = estimate_embeddings(&graph, &plan, &ceci, &opts);
        let b = estimate_embeddings(&graph, &plan, &ceci, &opts);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_error, b.std_error);
    }

    #[test]
    fn cost_estimate_matches_estimate() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let opts = EstimateOptions {
            walks: 500,
            seed: 9,
        };
        let est = estimate_embeddings(&graph, &plan, &ceci, &opts);
        let cost = estimate_cost(&graph, &plan, &ceci, &opts);
        assert_eq!(cost.estimate.mean, est.mean);
        assert_eq!(cost.estimate.std_error, est.std_error);
        // Depth 0 volume is exactly the pivot count, and the deepest volume
        // equals the total-count estimate.
        assert_eq!(cost.depth_volumes[0], ceci.pivots().len() as f64);
        let last = *cost.depth_volumes.last().unwrap();
        assert!((last - est.mean).abs() < 1e-9, "{last} vs {}", est.mean);
        assert!(cost.volume() >= est.mean);
        assert_eq!(
            cost.branch_factors().len(),
            cost.depth_volumes.len().saturating_sub(1)
        );
    }

    #[test]
    fn cost_estimate_scaling() {
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let cost = estimate_cost(&graph, &plan, &ceci, &EstimateOptions::default());
        let doubled = cost.scaled(2.0);
        assert_eq!(doubled.estimate.mean, cost.estimate.mean * 2.0);
        assert_eq!(doubled.volume(), cost.volume() * 2.0);
        assert_eq!(doubled.estimate.walks, cost.estimate.walks);
    }

    #[test]
    fn interval_clamps_both_ends() {
        // High variance relative to the mean: naive lo would go negative.
        let est = Estimate {
            mean: 1.0,
            std_error: 5.0,
            walks: 10,
            exact_zero: false,
        };
        let (lo, hi) = est.interval(1.96);
        assert_eq!(lo, 0.0);
        assert!(hi >= lo);
        // Negative z must not invert the interval.
        let (lo, hi) = est.interval(-3.0);
        assert!(lo <= hi, "inverted interval ({lo}, {hi})");
        // Degenerate cases: zero std_error (walk budget 1, or exact zero).
        let point = Estimate {
            mean: 3.5,
            std_error: 0.0,
            walks: 1,
            exact_zero: false,
        };
        assert_eq!(point.interval(4.0), (3.5, 3.5));
        assert_eq!(point.ci95(), (3.5, 3.5));
        let zero = Estimate {
            mean: 0.0,
            std_error: 0.0,
            walks: 0,
            exact_zero: true,
        };
        assert_eq!(zero.ci95(), (0.0, 0.0));
    }

    #[test]
    fn exact_zero_cost_has_zero_volumes() {
        use ceci_graph::{lid, Graph};
        let graph = Graph::unlabeled(4, &[(ceci_graph::vid(0), ceci_graph::vid(1))]);
        let query = ceci_query::QueryGraph::with_labels(&[lid(7), lid(7)], &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let cost = estimate_cost(&graph, &plan, &ceci, &EstimateOptions::default());
        assert!(cost.estimate.exact_zero);
        assert_eq!(cost.depth_volumes.len(), plan.query().num_vertices());
        assert!(cost.depth_volumes.iter().all(|&v| v == 0.0));
        assert_eq!(cost.volume(), 0.0);
    }
}
