//! Sampling-based approximate embedding counting over CECI.
//!
//! The paper's related work (§7) separates exact listing from approximate
//! counting; CECI's structure happens to make a classic Knuth/WanderJoin
//! estimator nearly free: a random walk descends the matching order, at each
//! depth computing the true matching-node set (TE ∩ NTE ∩ injectivity ∩
//! symmetry — the same set enumeration would branch over), picks one
//! uniformly, and multiplies the branch count into its weight. The weight of
//! a completed walk is an unbiased estimate of the embeddings under its
//! pivot; dead ends contribute zero. Averaging over walks and pivots yields
//! an unbiased estimate of the total count at a tiny fraction of full
//! enumeration cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::enumerate::{EnumOptions, Enumerator};
use crate::index::Ceci;
use crate::metrics::Counters;

/// Options for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct EstimateOptions {
    /// Number of random walks.
    pub walks: u64,
    /// RNG seed (estimates are deterministic per seed).
    pub seed: u64,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            walks: 1_000,
            seed: 0xE57,
        }
    }
}

/// An approximate embedding count.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Unbiased point estimate of the total embedding count.
    pub mean: f64,
    /// Standard error of the mean (0 when the estimate is exactly 0 or the
    /// walk budget is 1).
    pub std_error: f64,
    /// Walks performed.
    pub walks: u64,
    /// `true` when the index has no pivots — the count is exactly zero.
    pub exact_zero: bool,
}

impl Estimate {
    /// Two-sided confidence interval at ±`z` standard errors.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        (
            (self.mean - z * self.std_error).max(0.0),
            self.mean + z * self.std_error,
        )
    }
}

/// Estimates the total number of embeddings with `options.walks` random
/// walks over the CECI index.
pub fn estimate_embeddings(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &EstimateOptions,
) -> Estimate {
    assert!(options.walks >= 1, "need at least one walk");
    let pivots: Vec<VertexId> = ceci.pivots().iter().map(|&(p, _)| p).collect();
    if pivots.is_empty() {
        return Estimate {
            mean: 0.0,
            std_error: 0.0,
            walks: 0,
            exact_zero: true,
        };
    }
    let n = plan.query().num_vertices();
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut enumerator = Enumerator::new(graph, plan, ceci, EnumOptions::default());
    let mut counters = Counters::default();

    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut prefix: Vec<VertexId> = Vec::with_capacity(n);
    for _ in 0..options.walks {
        prefix.clear();
        // Uniform pivot choice; weight starts at |pivots|.
        let pivot = pivots[rng.gen_range(0..pivots.len())];
        prefix.push(pivot);
        let mut weight = pivots.len() as f64;
        while prefix.len() < n {
            let matching = enumerator.matching_nodes_after_prefix(&prefix, &mut counters);
            if matching.is_empty() {
                weight = 0.0;
                break;
            }
            weight *= matching.len() as f64;
            let next = matching[rng.gen_range(0..matching.len())];
            prefix.push(next);
        }
        sum += weight;
        sum_sq += weight * weight;
    }
    let walks = options.walks as f64;
    let mean = sum / walks;
    let variance = (sum_sq / walks - mean * mean).max(0.0);
    let std_error = if options.walks > 1 {
        (variance / (walks - 1.0)).sqrt()
    } else {
        0.0
    };
    Estimate {
        mean,
        std_error,
        walks: options.walks,
        exact_zero: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_embeddings;
    use crate::fixtures::{figure5, paper};
    use ceci_query::{PaperQuery, QueryPlan};

    #[test]
    fn figure1_estimate_converges() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        // Single pivot, tiny search space: a modest walk budget nails it.
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 2_000,
                seed: 1,
            },
        );
        assert!(!est.exact_zero);
        let exact = count_embeddings(&graph, &plan, &ceci) as f64;
        assert!(
            (est.mean - exact).abs() <= (3.0 * est.std_error).max(0.5),
            "estimate {} ± {} vs exact {exact}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn figure5_estimate() {
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 4_000,
                seed: 7,
            },
        );
        // Exact count is 10.
        assert!(
            (est.mean - 10.0).abs() <= (3.0 * est.std_error).max(1.0),
            "estimate {} ± {}",
            est.mean,
            est.std_error
        );
    }

    #[test]
    fn random_graph_estimate_within_tolerance() {
        use ceci_graph::generators::kronecker_default;
        let graph = kronecker_default(9, 5, 77);
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let exact = count_embeddings(&graph, &plan, &ceci) as f64;
        let est = estimate_embeddings(
            &graph,
            &plan,
            &ceci,
            &EstimateOptions {
                walks: 20_000,
                seed: 3,
            },
        );
        // Fixed seed → deterministic; allow 4 standard errors of slack.
        assert!(
            (est.mean - exact).abs() <= 4.0 * est.std_error + 0.05 * exact,
            "estimate {} ± {} vs exact {exact}",
            est.mean,
            est.std_error
        );
        let (lo, hi) = est.interval(4.0);
        assert!(lo <= exact * 1.05 && exact * 0.95 <= hi);
    }

    #[test]
    fn empty_index_is_exactly_zero() {
        use ceci_graph::{lid, Graph};
        let graph = Graph::unlabeled(4, &[(ceci_graph::vid(0), ceci_graph::vid(1))]);
        let query = ceci_query::QueryGraph::with_labels(&[lid(7), lid(7)], &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let est = estimate_embeddings(&graph, &plan, &ceci, &EstimateOptions::default());
        assert!(est.exact_zero);
        assert_eq!(est.mean, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let opts = EstimateOptions {
            walks: 100,
            seed: 42,
        };
        let a = estimate_embeddings(&graph, &plan, &ceci, &opts);
        let b = estimate_embeddings(&graph, &plan, &ceci, &opts);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_error, b.std_error);
    }
}
