//! # ceci-core
//!
//! The Compact Embedding Cluster Index (CECI) and its enumeration engine —
//! the primary contribution of *CECI: Compact Embedding Cluster Index for
//! Scalable Subgraph Matching* (SIGMOD 2019), reproduced in Rust.
//!
//! Pipeline:
//!
//! 1. [`filter`] — Algorithm 1: BFS-ordered candidate filtering (LF / DF /
//!    NLCF) building the TE and NTE candidate tables.
//! 2. [`refine`] — Algorithm 2: reverse-BFS refinement with per-(u, v)
//!    cardinalities.
//! 3. [`Ceci`] — the frozen compact index (sorted keys, flat arenas, exact
//!    size accounting for Table 2).
//! 4. [`enumerate`] — set-intersection backtracking enumeration, with an
//!    edge-verification ablation mode (§4.1).
//! 5. [`extreme`] — Algorithm 3: ExtremeCluster decomposition under the β
//!    threshold.
//! 6. [`parallel`] — ST / CGD / FGD work distribution across threads.
//!
//! The paper's Figure 1 running example ships as a reusable fixture in
//! [`fixtures::paper`]; unit tests assert every intermediate table the paper
//! works through.

#![warn(missing_docs)]

pub mod adaptive;
pub mod batch;
pub mod bitmap;
pub mod delta;
pub mod enumerate;
pub mod estimate;
pub mod explain;
pub mod extreme;
pub mod filter;
pub mod fixtures;
pub mod index;
pub mod intersect;
pub mod metrics;
pub mod parallel;
pub mod refine;
pub mod sink;
pub mod tables;

pub use adaptive::{
    admit, choose_execution, kernels_from_profile, ns_per_unit_from_profile, plan_adaptive,
    plan_with_options, predicted_time, AdaptiveOptions, Admission, CandidatePlan, PlanChoice,
    DEFAULT_NS_PER_UNIT,
};
pub use batch::{enumerate_from_frontier, prefix_satisfies_symmetry, PrefixSpec};
pub use bitmap::VertexBitmap;
pub use delta::{batch_delta, count_matches_using, BatchDelta};
pub use enumerate::{
    collect_embeddings, count_embeddings, enumerate_sequential, is_valid_embedding, EnumOptions,
    Enumerator, VerifyMode,
};
pub use estimate::{estimate_cost, estimate_embeddings, CostEstimate, Estimate, EstimateOptions};
pub use explain::{
    cluster_skew, explain_choice, explain_estimates, explain_index, explain_plan, explain_profile,
    ClusterSkew,
};
pub use extreme::{decompose, decompose_with, WorkUnit};
pub use filter::{bfs_filter, bfs_filter_from, bfs_filter_from_with, BuilderState, FilterProfile};
pub use index::{record_build_spans, BuildOptions, BuildStats, Ceci};
pub use intersect::Kernel;
pub use metrics::{Counters, Phase, PhaseSpan, PhaseTimeline};
pub use parallel::{
    count_parallel, enumerate_parallel, enumerate_parallel_cancellable, enumerate_parallel_pinned,
    ParallelOptions, ParallelResult, Strategy,
};
pub use sink::{
    canonicalize, CancelToken, CollectSink, CountSink, DeadlineSink, EmbeddingSink, SharedBudget,
};

// Re-exported so downstream crates profile enumeration without depending on
// `ceci-trace` directly.
pub use ceci_trace::{DepthProfile, DepthStat};
