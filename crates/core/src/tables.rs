//! Candidate tables: the key → value-list maps holding TE and NTE
//! candidates.
//!
//! During construction and refinement the tables must support removals, so
//! [`BuildTable`] keeps per-key `Vec`s plus a value-membership multiset.
//! After refinement the index is frozen into [`CompactTable`] — sorted keys,
//! one flat value arena — matching the paper's sorted-vector layout (§3.6)
//! and making `size_bytes` exact for Table 2.
//!
//! Freezing additionally builds a dense key → slot map (`slot_of`) indexed
//! directly by the key's vertex id, so the enumeration hot path resolves
//! `TE_Candidates[u][f(u_p)]` with two array reads instead of a binary
//! search per recursive call. The legacy binary-search path survives as
//! [`CompactTable::get_binary`] for differential testing.

use ceci_graph::VertexId;
use std::collections::HashMap;

/// Mutable key → sorted-value-list table used while building CECI.
#[derive(Clone, Debug, Default)]
pub struct BuildTable {
    /// Sorted by key.
    entries: Vec<(VertexId, Vec<VertexId>)>,
    /// value → number of keys whose list currently contains it.
    value_counts: HashMap<VertexId, u32>,
}

impl BuildTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key with its complete (sorted) value list. Keys must be
    /// inserted in ascending order; duplicate keys are not allowed.
    pub fn push_key(&mut self, key: VertexId, values: Vec<VertexId>) {
        debug_assert!(
            self.entries.last().map(|(k, _)| *k < key).unwrap_or(true),
            "keys must be inserted in ascending order"
        );
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be sorted"
        );
        for &v in &values {
            *self.value_counts.entry(v).or_insert(0) += 1;
        }
        self.entries.push((key, values));
    }

    /// Number of keys.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }

    /// Looks up the value list for `key`.
    pub fn get(&self, key: VertexId) -> Option<&[VertexId]> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Iterates `(key, values)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.entries.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// `true` if `v` appears in at least one value list.
    pub fn contains_value(&self, v: VertexId) -> bool {
        self.value_counts.get(&v).copied().unwrap_or(0) > 0
    }

    /// The distinct values across all keys, sorted — the *candidate set* of
    /// the query node this table belongs to.
    pub fn value_union(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .value_counts
            .iter()
            .filter(|&(_, &c)| c > 0)
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    /// Removes `key` and its whole value list. No-op if absent.
    pub fn remove_key(&mut self, key: VertexId) {
        if let Ok(i) = self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            let (_, values) = self.entries.remove(i);
            for v in values {
                if let Some(c) = self.value_counts.get_mut(&v) {
                    *c -= 1;
                }
            }
        }
    }

    /// Removes `v` from every key's value list. Returns the keys whose lists
    /// became empty as a result (the caller decides what to cascade).
    pub fn remove_value_everywhere(&mut self, v: VertexId) -> Vec<VertexId> {
        let Some(count) = self.value_counts.get_mut(&v) else {
            return Vec::new();
        };
        if *count == 0 {
            return Vec::new();
        }
        *count = 0;
        let mut emptied = Vec::new();
        for (key, values) in &mut self.entries {
            if let Ok(i) = values.binary_search(&v) {
                values.remove(i);
                if values.is_empty() {
                    emptied.push(*key);
                }
            }
        }
        emptied
    }

    /// Total candidate-edge entries currently stored (Σ value-list lengths).
    pub fn num_entries(&self) -> usize {
        self.entries.iter().map(|(_, v)| v.len()).sum()
    }

    /// Freezes into the compact immutable form, dropping empty keys.
    pub fn freeze(&self) -> CompactTable {
        let mut keys = Vec::new();
        let mut offsets = Vec::with_capacity(self.entries.len() + 1);
        let mut values = Vec::with_capacity(self.num_entries());
        offsets.push(0u32);
        for (key, vals) in &self.entries {
            if vals.is_empty() {
                continue;
            }
            keys.push(*key);
            values.extend_from_slice(vals);
            values_len_guard(values.len());
            offsets.push(values.len() as u32);
        }
        let slot_of = build_slot_map(&keys);
        CompactTable {
            keys,
            offsets,
            values,
            slot_of,
        }
    }
}

/// Sentinel marking "key absent" in the dense slot map.
const NO_SLOT: u32 = u32::MAX;

/// Builds the dense key-id → slot array for a sorted key list. Sized to
/// `max_key + 1`, so lookups for any `VertexId` are a bounds check plus one
/// array read (out-of-range ids are simply absent).
fn build_slot_map(keys: &[VertexId]) -> Vec<u32> {
    let Some(max) = keys.last() else {
        return Vec::new();
    };
    debug_assert!(
        keys.len() < NO_SLOT as usize,
        "slot indices must fit below the NO_SLOT sentinel"
    );
    let mut slot_of = vec![NO_SLOT; max.index() + 1];
    for (i, k) in keys.iter().enumerate() {
        slot_of[k.index()] = i as u32;
    }
    slot_of
}

fn values_len_guard(len: usize) {
    assert!(
        len <= u32::MAX as usize,
        "candidate table exceeds u32 offset range"
    );
}

/// Immutable frozen candidate table: sorted keys, flat value arena, dense
/// key → slot map.
///
/// Layout is exactly the paper's 8-bytes-per-candidate-edge accounting: each
/// stored (key, value) candidate edge costs one `u32` value slot plus
/// amortized key/offset overhead. The `slot_of` acceleration array trades
/// `4 × (max_key + 1)` bytes per table for O(1) hot-path lookups; it is
/// derived entirely from `keys`, so equality and the candidate-edge counts
/// of Table 2 are unaffected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactTable {
    keys: Vec<VertexId>,
    offsets: Vec<u32>,
    values: Vec<VertexId>,
    /// `slot_of[key_id]` = index into `keys`/`offsets`, or [`NO_SLOT`].
    slot_of: Vec<u32>,
}

impl CompactTable {
    /// Number of keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Total candidate entries (Σ value-list lengths).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// O(1) lookup of the sorted value list for `key`: one read of the dense
    /// slot map, one offset-pair read. This is the enumeration hot path.
    #[inline]
    pub fn get(&self, key: VertexId) -> Option<&[VertexId]> {
        let slot = *self.slot_of.get(key.index())?;
        if slot == NO_SLOT {
            return None;
        }
        let i = slot as usize;
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Legacy binary-searched lookup, kept as the reference implementation
    /// for differential tests against [`CompactTable::get`].
    #[inline]
    pub fn get_binary(&self, key: VertexId) -> Option<&[VertexId]> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|i| &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// The sorted key list.
    #[inline]
    pub fn keys(&self) -> &[VertexId] {
        &self.keys
    }

    /// Iterates `(key, values)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.keys.iter().enumerate().map(move |(i, &k)| {
            (
                k,
                &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            )
        })
    }

    /// Distinct values across all keys, sorted.
    pub fn value_union(&self) -> Vec<VertexId> {
        let mut out = self.values.clone();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Heap bytes held by the table, including the dense slot map.
    pub fn size_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<VertexId>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<VertexId>()
            + self.slot_of.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    fn sample() -> BuildTable {
        let mut t = BuildTable::new();
        t.push_key(vid(1), vec![vid(3), vid(5), vid(7)]);
        t.push_key(vid(2), vec![vid(7), vid(9)]);
        t
    }

    #[test]
    fn lookup_and_union() {
        let t = sample();
        assert_eq!(t.get(vid(1)), Some(&[vid(3), vid(5), vid(7)][..]));
        assert_eq!(t.get(vid(2)), Some(&[vid(7), vid(9)][..]));
        assert_eq!(t.get(vid(3)), None);
        assert_eq!(t.value_union(), vec![vid(3), vid(5), vid(7), vid(9)]);
        assert_eq!(t.num_entries(), 5);
        assert_eq!(t.num_keys(), 2);
    }

    #[test]
    fn contains_value_tracks_multiplicity() {
        let mut t = sample();
        assert!(t.contains_value(vid(7)));
        // v7 appears under both keys; removing key v2 keeps it alive.
        t.remove_key(vid(2));
        assert!(t.contains_value(vid(7)));
        assert!(!t.contains_value(vid(9)));
        assert_eq!(t.value_union(), vec![vid(3), vid(5), vid(7)]);
    }

    #[test]
    fn remove_key_noop_when_absent() {
        let mut t = sample();
        t.remove_key(vid(99));
        assert_eq!(t.num_keys(), 2);
    }

    #[test]
    fn remove_value_everywhere_reports_emptied_keys() {
        let mut t = BuildTable::new();
        t.push_key(vid(1), vec![vid(5)]);
        t.push_key(vid(2), vec![vid(5), vid(6)]);
        let emptied = t.remove_value_everywhere(vid(5));
        assert_eq!(emptied, vec![vid(1)]);
        assert!(!t.contains_value(vid(5)));
        assert_eq!(t.get(vid(1)), Some(&[][..]));
        assert_eq!(t.get(vid(2)), Some(&[vid(6)][..]));
        // Removing again is a no-op.
        assert!(t.remove_value_everywhere(vid(5)).is_empty());
    }

    #[test]
    fn freeze_drops_empty_keys() {
        let mut t = sample();
        t.remove_value_everywhere(vid(7));
        t.remove_value_everywhere(vid(9));
        let c = t.freeze();
        assert_eq!(c.num_keys(), 1);
        assert_eq!(c.get(vid(1)), Some(&[vid(3), vid(5)][..]));
        assert_eq!(c.get(vid(2)), None);
        assert_eq!(c.num_entries(), 2);
    }

    #[test]
    fn compact_iter_and_union() {
        let c = sample().freeze();
        let pairs: Vec<_> = c.iter().map(|(k, v)| (k, v.len())).collect();
        assert_eq!(pairs, vec![(vid(1), 3), (vid(2), 2)]);
        assert_eq!(c.value_union(), vec![vid(3), vid(5), vid(7), vid(9)]);
        assert!(c.size_bytes() > 0);
        assert_eq!(c.keys(), &[vid(1), vid(2)]);
    }

    #[test]
    fn dense_get_agrees_with_binary_search() {
        // Sparse, irregular key set: probe the whole surrounding id range so
        // both hits and misses (inside and past the slot map) are covered.
        let mut t = BuildTable::new();
        for &k in &[2u32, 3, 17, 40, 41, 999] {
            t.push_key(vid(k), vec![vid(k * 2), vid(k * 2 + 1)]);
        }
        let c = t.freeze();
        for probe in 0..1100u32 {
            assert_eq!(
                c.get(vid(probe)),
                c.get_binary(vid(probe)),
                "dense/binary lookup disagree at key {probe}"
            );
        }
    }

    #[test]
    fn slot_map_counted_in_size() {
        let with_high_key = {
            let mut t = BuildTable::new();
            t.push_key(vid(1000), vec![vid(1)]);
            t.freeze()
        };
        let with_low_key = {
            let mut t = BuildTable::new();
            t.push_key(vid(0), vec![vid(1)]);
            t.freeze()
        };
        assert!(with_high_key.size_bytes() > with_low_key.size_bytes());
    }

    #[test]
    fn empty_table() {
        let t = BuildTable::new();
        assert_eq!(t.num_keys(), 0);
        assert!(t.value_union().is_empty());
        let c = t.freeze();
        assert_eq!(c.num_entries(), 0);
        assert_eq!(c.get(vid(0)), None);
    }
}
