//! Candidate tables: the key → value-list maps holding TE and NTE
//! candidates.
//!
//! Both the mutable build-time form and the frozen form share one memory
//! layout: a flat CSR-style arena. [`BuildTable`] appends every key's value
//! list into a single contiguous `Vec<VertexId>` bump arena and records
//! `(offset, len)` spans per key, so construction performs **zero per-key
//! allocations** and freezing is (in the common fast path) a move, not a
//! copy. Removals — required by the Algorithm 1 empty-entry cascade and by
//! Algorithm 2 refinement — shift inside a span (value removal) or tombstone
//! a span (key removal); the resulting holes are compacted *in place* at
//! freeze time.
//!
//! Value membership is tracked by a dense grow-on-demand count array indexed
//! by vertex id (the multiset the cascade needs), replacing the old
//! `HashMap<VertexId, u32>`: `contains_value` is two array reads and
//! `value_union` is a single ascending scan — already sorted, no sort call.
//!
//! Freezing additionally builds a dense key → slot map (`slot_of`) indexed
//! directly by the key's vertex id, so the enumeration hot path resolves
//! `TE_Candidates[u][f(u_p)]` with two array reads instead of a binary
//! search per recursive call. The same dense map accelerates *build-time*
//! lookups ([`BuildTable::get`] is O(1) too), which turns reverse-BFS
//! refinement into a linear array pass. The legacy binary-search path
//! survives as [`CompactTable::get_binary`] for differential testing.

use ceci_graph::VertexId;

/// Sentinel marking "key absent" in the dense slot maps.
const NO_SLOT: u32 = u32::MAX;

/// Dense grow-on-demand `vertex id → u32` counter — the value-membership
/// multiset of one table. Indexing past the current length reads 0.
#[derive(Clone, Debug, Default)]
struct CountMap {
    counts: Vec<u32>,
}

impl CountMap {
    #[inline]
    fn get(&self, v: VertexId) -> u32 {
        self.counts.get(v.index()).copied().unwrap_or(0)
    }

    #[inline]
    fn add(&mut self, v: VertexId, delta: u32) {
        let i = v.index();
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += delta;
    }

    /// Decrements and reports whether the count reached zero.
    #[inline]
    fn dec(&mut self, v: VertexId) -> bool {
        let c = &mut self.counts[v.index()];
        debug_assert!(*c > 0, "decrementing absent value");
        *c -= 1;
        *c == 0
    }

    #[inline]
    fn zero(&mut self, v: VertexId) {
        if let Some(c) = self.counts.get_mut(v.index()) {
            *c = 0;
        }
    }

    /// Distinct tracked values in ascending id order (no sort needed — the
    /// index *is* the id).
    fn distinct_sorted(&self) -> Vec<VertexId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| VertexId(i as u32))
            .collect()
    }
}

/// One key's span in the arena.
#[derive(Clone, Copy, Debug)]
struct Span {
    /// Arena offset of the first value.
    offset: u32,
    /// Live value count (gaps trail the live values inside the original
    /// allocation).
    len: u32,
    /// Tombstone set by [`BuildTable::remove_key`].
    dead: bool,
}

/// Mutable key → sorted-value-list table used while building CECI, stored as
/// a CSR arena from the start (see module docs).
#[derive(Clone, Debug, Default)]
pub struct BuildTable {
    /// Keys in insertion (= ascending) order, tombstones included.
    keys: Vec<VertexId>,
    /// Parallel to `keys`.
    spans: Vec<Span>,
    /// The shared bump arena all value lists live in.
    values: Vec<VertexId>,
    /// value → number of keys whose list currently contains it.
    value_counts: CountMap,
    /// Dense key id → index into `keys`/`spans` (`NO_SLOT` when absent).
    slot_of: Vec<u32>,
    /// Live (key, value) entries — Σ live span lengths.
    num_entries: usize,
    /// Dead arena slots left behind by removals (compaction work at freeze).
    holes: usize,
    /// Tombstoned keys.
    dead_keys: usize,
}

impl BuildTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table whose arena is pre-reserved for `entries` values.
    pub fn with_capacity(keys: usize, entries: usize) -> Self {
        BuildTable {
            keys: Vec::with_capacity(keys),
            spans: Vec::with_capacity(keys),
            values: Vec::with_capacity(entries),
            ..Self::default()
        }
    }

    #[inline]
    fn slot(&self, key: VertexId) -> Option<usize> {
        let s = *self.slot_of.get(key.index())?;
        if s == NO_SLOT {
            None
        } else {
            Some(s as usize)
        }
    }

    #[inline]
    fn record_slot(&mut self, key: VertexId, slot: usize) {
        let i = key.index();
        if i >= self.slot_of.len() {
            self.slot_of.resize(i + 1, NO_SLOT);
        }
        self.slot_of[i] = slot as u32;
    }

    /// Inserts a key with its complete sorted value list, copying the slice
    /// into the arena. Keys must be inserted in ascending order; duplicate
    /// keys are not allowed.
    pub fn push_key(&mut self, key: VertexId, values: &[VertexId]) {
        self.push_key_with(key, |arena| arena.extend_from_slice(values));
    }

    /// Inserts a key whose value list is produced *directly into the arena*
    /// by `produce` (the zero-copy path of the filter phases). Returns the
    /// number of values written; when zero, the key is **not** recorded
    /// (Algorithm 1 never stores empty entries — it cascades them). The
    /// produced run must be sorted.
    pub fn push_key_with(
        &mut self,
        key: VertexId,
        produce: impl FnOnce(&mut Vec<VertexId>),
    ) -> usize {
        debug_assert!(
            self.keys.last().map(|&k| k < key).unwrap_or(true),
            "keys must be inserted in ascending order"
        );
        let offset = self.values.len();
        produce(&mut self.values);
        values_len_guard(self.values.len());
        let written = &self.values[offset..];
        debug_assert!(
            written.windows(2).all(|w| w[0] < w[1]),
            "values must be sorted"
        );
        let len = written.len();
        if len == 0 {
            return 0;
        }
        for i in offset..offset + len {
            self.value_counts.add(self.values[i], 1);
        }
        let slot = self.keys.len();
        self.keys.push(key);
        self.spans.push(Span {
            offset: offset as u32,
            len: len as u32,
            dead: false,
        });
        self.record_slot(key, slot);
        self.num_entries += len;
        debug_assert!(
            self.keys.len() < NO_SLOT as usize,
            "slot indices must fit below the NO_SLOT sentinel"
        );
        len
    }

    /// Appends a pre-filtered run of keys produced by one parallel build
    /// chunk: `keys_lens` holds `(key, value_count)` pairs in ascending key
    /// order and `arena` holds their concatenated value lists. One bulk
    /// arena copy; per-key work is span bookkeeping only.
    pub fn push_run(&mut self, keys_lens: &[(VertexId, u32)], arena: &[VertexId]) {
        debug_assert_eq!(
            keys_lens.iter().map(|&(_, l)| l as usize).sum::<usize>(),
            arena.len(),
            "run lengths must cover the chunk arena"
        );
        let mut offset = self.values.len();
        self.values.extend_from_slice(arena);
        values_len_guard(self.values.len());
        for v in arena {
            self.value_counts.add(*v, 1);
        }
        for &(key, len) in keys_lens {
            debug_assert!(
                self.keys.last().map(|&k| k < key).unwrap_or(true),
                "runs must arrive in ascending key order"
            );
            let slot = self.keys.len();
            self.keys.push(key);
            self.spans.push(Span {
                offset: offset as u32,
                len,
                dead: false,
            });
            self.record_slot(key, slot);
            offset += len as usize;
            self.num_entries += len as usize;
        }
    }

    /// Number of live keys.
    pub fn num_keys(&self) -> usize {
        self.keys.len() - self.dead_keys
    }

    /// O(1) lookup of the value list for `key` (dense slot map).
    #[inline]
    pub fn get(&self, key: VertexId) -> Option<&[VertexId]> {
        let i = self.slot(key)?;
        let s = self.spans[i];
        Some(&self.values[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// Iterates live `(key, values)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.keys
            .iter()
            .zip(self.spans.iter())
            .filter(|(_, s)| !s.dead)
            .map(move |(&k, s)| {
                (
                    k,
                    &self.values[s.offset as usize..(s.offset + s.len) as usize],
                )
            })
    }

    /// `true` if `v` appears in at least one value list.
    #[inline]
    pub fn contains_value(&self, v: VertexId) -> bool {
        self.value_counts.get(v) > 0
    }

    /// The distinct values across all keys, sorted — the *candidate set* of
    /// the query node this table belongs to. An ascending scan of the dense
    /// count array; no sort.
    pub fn value_union(&self) -> Vec<VertexId> {
        self.value_counts.distinct_sorted()
    }

    /// Removes `key` and its whole value list. No-op if absent. Returns the
    /// values whose table-wide count dropped to zero — they just left the
    /// table's value union (the caller keeps cached candidate sets in sync).
    pub fn remove_key(&mut self, key: VertexId) -> Vec<VertexId> {
        let Some(i) = self.slot(key) else {
            return Vec::new();
        };
        self.slot_of[key.index()] = NO_SLOT;
        let s = &mut self.spans[i];
        s.dead = true;
        let (offset, len) = (s.offset as usize, s.len as usize);
        self.dead_keys += 1;
        self.num_entries -= len;
        self.holes += len;
        let mut vanished = Vec::new();
        for j in offset..offset + len {
            let v = self.values[j];
            if self.value_counts.dec(v) {
                vanished.push(v);
            }
        }
        vanished
    }

    /// Removes `v` from every key's value list. Returns the keys whose lists
    /// became empty as a result (the caller decides what to cascade).
    pub fn remove_value_everywhere(&mut self, v: VertexId) -> Vec<VertexId> {
        if self.value_counts.get(v) == 0 {
            return Vec::new();
        }
        self.value_counts.zero(v);
        let mut emptied = Vec::new();
        for (i, s) in self.spans.iter_mut().enumerate() {
            if s.dead {
                continue;
            }
            let span = &mut self.values[s.offset as usize..(s.offset + s.len) as usize];
            if let Ok(p) = span.binary_search(&v) {
                span.copy_within(p + 1.., p);
                s.len -= 1;
                self.num_entries -= 1;
                self.holes += 1;
                if s.len == 0 {
                    emptied.push(self.keys[i]);
                }
            }
        }
        emptied
    }

    /// Total candidate-edge entries currently stored (Σ live value-list
    /// lengths). O(1) — maintained incrementally.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Arena bytes currently held (live values + holes), the build-time
    /// memory footprint of the value storage.
    pub fn arena_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<VertexId>()
    }

    /// Freezes into the compact immutable form, dropping empty and
    /// tombstoned keys. Consumes the table: when no removals punched holes
    /// in the arena the value storage is **moved**, not copied; otherwise
    /// the live spans are compacted in place (stable left-shift) and the
    /// arena truncated — still no second allocation.
    pub fn freeze(mut self) -> CompactTable {
        let mut keys = Vec::with_capacity(self.keys.len() - self.dead_keys);
        let mut offsets = Vec::with_capacity(keys.capacity() + 1);
        offsets.push(0u32);
        let mut write = 0usize;
        for (i, s) in self.spans.iter().enumerate() {
            if s.dead || s.len == 0 {
                continue;
            }
            let (offset, len) = (s.offset as usize, s.len as usize);
            debug_assert!(offset >= write, "spans must be in ascending arena order");
            if offset != write {
                self.values.copy_within(offset..offset + len, write);
            }
            write += len;
            keys.push(self.keys[i]);
            offsets.push(write as u32);
        }
        self.values.truncate(write);
        let slot_of = build_slot_map(&keys);
        CompactTable {
            keys,
            offsets,
            values: self.values,
            slot_of,
        }
    }
}

/// Builds the dense key-id → slot array for a sorted key list. Sized to
/// `max_key + 1`, so lookups for any `VertexId` are a bounds check plus one
/// array read (out-of-range ids are simply absent).
pub(crate) fn build_slot_map(keys: &[VertexId]) -> Vec<u32> {
    let Some(max) = keys.last() else {
        return Vec::new();
    };
    debug_assert!(
        keys.len() < NO_SLOT as usize,
        "slot indices must fit below the NO_SLOT sentinel"
    );
    let mut slot_of = vec![NO_SLOT; max.index() + 1];
    for (i, k) in keys.iter().enumerate() {
        slot_of[k.index()] = i as u32;
    }
    slot_of
}

/// Slot lookup against a map built by [`build_slot_map`].
#[inline]
pub(crate) fn slot_lookup(slot_of: &[u32], key: VertexId) -> Option<usize> {
    let s = *slot_of.get(key.index())?;
    if s == NO_SLOT {
        None
    } else {
        Some(s as usize)
    }
}

fn values_len_guard(len: usize) {
    assert!(
        len <= u32::MAX as usize,
        "candidate table exceeds u32 offset range"
    );
}

/// Immutable frozen candidate table: sorted keys, flat value arena, dense
/// key → slot map.
///
/// Layout is exactly the paper's 8-bytes-per-candidate-edge accounting: each
/// stored (key, value) candidate edge costs one `u32` value slot plus
/// amortized key/offset overhead. The `slot_of` acceleration array trades
/// `4 × (max_key + 1)` bytes per table for O(1) hot-path lookups; it is
/// derived entirely from `keys`, so equality and the candidate-edge counts
/// of Table 2 are unaffected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactTable {
    keys: Vec<VertexId>,
    offsets: Vec<u32>,
    values: Vec<VertexId>,
    /// `slot_of[key_id]` = index into `keys`/`offsets`, or [`NO_SLOT`].
    slot_of: Vec<u32>,
}

impl CompactTable {
    /// Number of keys.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Total candidate entries (Σ value-list lengths).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// O(1) lookup of the sorted value list for `key`: one read of the dense
    /// slot map, one offset-pair read. This is the enumeration hot path.
    #[inline]
    pub fn get(&self, key: VertexId) -> Option<&[VertexId]> {
        let slot = *self.slot_of.get(key.index())?;
        if slot == NO_SLOT {
            return None;
        }
        let i = slot as usize;
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Legacy binary-searched lookup, kept as the reference implementation
    /// for differential tests against [`CompactTable::get`].
    #[inline]
    pub fn get_binary(&self, key: VertexId) -> Option<&[VertexId]> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|i| &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// The sorted key list.
    #[inline]
    pub fn keys(&self) -> &[VertexId] {
        &self.keys
    }

    /// Iterates `(key, values)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.keys.iter().enumerate().map(move |(i, &k)| {
            (
                k,
                &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            )
        })
    }

    /// Distinct values across all keys, sorted.
    pub fn value_union(&self) -> Vec<VertexId> {
        let mut out = self.values.clone();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Bytes of the flat value arena alone — the paper's
    /// 4-bytes-per-candidate-edge payload, excluding keys/offsets/slot-map
    /// overhead.
    pub fn arena_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<VertexId>()
    }

    /// Heap bytes held by the table, including the dense slot map. Computed
    /// from lengths (not capacities) so the figure is exact and identical
    /// across allocation histories — parallel and sequential builds of the
    /// same index report the same bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<VertexId>()
            + self.slot_of.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    fn sample() -> BuildTable {
        let mut t = BuildTable::new();
        t.push_key(vid(1), &[vid(3), vid(5), vid(7)]);
        t.push_key(vid(2), &[vid(7), vid(9)]);
        t
    }

    #[test]
    fn lookup_and_union() {
        let t = sample();
        assert_eq!(t.get(vid(1)), Some(&[vid(3), vid(5), vid(7)][..]));
        assert_eq!(t.get(vid(2)), Some(&[vid(7), vid(9)][..]));
        assert_eq!(t.get(vid(3)), None);
        assert_eq!(t.value_union(), vec![vid(3), vid(5), vid(7), vid(9)]);
        assert_eq!(t.num_entries(), 5);
        assert_eq!(t.num_keys(), 2);
    }

    #[test]
    fn contains_value_tracks_multiplicity() {
        let mut t = sample();
        assert!(t.contains_value(vid(7)));
        // v7 appears under both keys; removing key v2 keeps it alive.
        let vanished = t.remove_key(vid(2));
        assert_eq!(vanished, vec![vid(9)]);
        assert!(t.contains_value(vid(7)));
        assert!(!t.contains_value(vid(9)));
        assert_eq!(t.value_union(), vec![vid(3), vid(5), vid(7)]);
        assert_eq!(t.num_keys(), 1);
        assert_eq!(t.get(vid(2)), None);
    }

    #[test]
    fn remove_key_noop_when_absent() {
        let mut t = sample();
        assert!(t.remove_key(vid(99)).is_empty());
        assert_eq!(t.num_keys(), 2);
    }

    #[test]
    fn remove_value_everywhere_reports_emptied_keys() {
        let mut t = BuildTable::new();
        t.push_key(vid(1), &[vid(5)]);
        t.push_key(vid(2), &[vid(5), vid(6)]);
        let emptied = t.remove_value_everywhere(vid(5));
        assert_eq!(emptied, vec![vid(1)]);
        assert!(!t.contains_value(vid(5)));
        assert_eq!(t.get(vid(1)), Some(&[][..]));
        assert_eq!(t.get(vid(2)), Some(&[vid(6)][..]));
        // Removing again is a no-op.
        assert!(t.remove_value_everywhere(vid(5)).is_empty());
    }

    #[test]
    fn freeze_drops_empty_keys() {
        let mut t = sample();
        t.remove_value_everywhere(vid(7));
        t.remove_value_everywhere(vid(9));
        let c = t.freeze();
        assert_eq!(c.num_keys(), 1);
        assert_eq!(c.get(vid(1)), Some(&[vid(3), vid(5)][..]));
        assert_eq!(c.get(vid(2)), None);
        assert_eq!(c.num_entries(), 2);
    }

    #[test]
    fn freeze_compacts_after_key_removal() {
        let mut t = BuildTable::new();
        t.push_key(vid(1), &[vid(10), vid(11)]);
        t.push_key(vid(2), &[vid(20)]);
        t.push_key(vid(3), &[vid(30), vid(31), vid(32)]);
        t.remove_key(vid(2));
        t.remove_value_everywhere(vid(31));
        let c = t.freeze();
        assert_eq!(c.num_keys(), 2);
        assert_eq!(c.get(vid(1)), Some(&[vid(10), vid(11)][..]));
        assert_eq!(c.get(vid(2)), None);
        assert_eq!(c.get(vid(3)), Some(&[vid(30), vid(32)][..]));
        assert_eq!(c.num_entries(), 4);
        assert_eq!(c.arena_bytes(), 4 * std::mem::size_of::<VertexId>());
    }

    #[test]
    fn push_run_matches_push_key() {
        let mut a = BuildTable::new();
        a.push_key(vid(1), &[vid(3), vid(5)]);
        a.push_key(vid(4), &[vid(6)]);
        a.push_key(vid(9), &[vid(2), vid(3), vid(8)]);
        let mut b = BuildTable::new();
        b.push_run(&[(vid(1), 2), (vid(4), 1)], &[vid(3), vid(5), vid(6)]);
        b.push_run(&[(vid(9), 3)], &[vid(2), vid(3), vid(8)]);
        assert_eq!(a.freeze(), b.freeze());
    }

    #[test]
    fn push_key_with_writes_directly_into_arena() {
        let mut t = BuildTable::new();
        let n = t.push_key_with(vid(7), |arena| {
            arena.extend([vid(1), vid(4)]);
        });
        assert_eq!(n, 2);
        // An empty production records no key at all.
        let n = t.push_key_with(vid(8), |_| {});
        assert_eq!(n, 0);
        assert_eq!(t.get(vid(7)), Some(&[vid(1), vid(4)][..]));
        assert_eq!(t.get(vid(8)), None);
        assert_eq!(t.num_keys(), 1);
        assert_eq!(t.num_entries(), 2);
    }

    #[test]
    fn compact_iter_and_union() {
        let c = sample().freeze();
        let pairs: Vec<_> = c.iter().map(|(k, v)| (k, v.len())).collect();
        assert_eq!(pairs, vec![(vid(1), 3), (vid(2), 2)]);
        assert_eq!(c.value_union(), vec![vid(3), vid(5), vid(7), vid(9)]);
        assert!(c.size_bytes() > 0);
        assert_eq!(c.keys(), &[vid(1), vid(2)]);
    }

    #[test]
    fn dense_get_agrees_with_binary_search() {
        // Sparse, irregular key set: probe the whole surrounding id range so
        // both hits and misses (inside and past the slot map) are covered.
        let mut t = BuildTable::new();
        for &k in &[2u32, 3, 17, 40, 41, 999] {
            t.push_key(vid(k), &[vid(k * 2), vid(k * 2 + 1)]);
        }
        let c = t.freeze();
        for probe in 0..1100u32 {
            assert_eq!(
                c.get(vid(probe)),
                c.get_binary(vid(probe)),
                "dense/binary lookup disagree at key {probe}"
            );
        }
    }

    #[test]
    fn build_get_is_dense_and_tracks_removals() {
        let mut t = BuildTable::new();
        for &k in &[2u32, 40, 999] {
            t.push_key(vid(k), &[vid(k + 1)]);
        }
        assert_eq!(t.get(vid(40)), Some(&[vid(41)][..]));
        t.remove_key(vid(40));
        assert_eq!(t.get(vid(40)), None);
        assert_eq!(t.get(vid(999)), Some(&[vid(1000)][..]));
        assert_eq!(t.get(vid(5000)), None);
    }

    #[test]
    fn slot_map_counted_in_size() {
        let with_high_key = {
            let mut t = BuildTable::new();
            t.push_key(vid(1000), &[vid(1)]);
            t.freeze()
        };
        let with_low_key = {
            let mut t = BuildTable::new();
            t.push_key(vid(0), &[vid(1)]);
            t.freeze()
        };
        assert!(with_high_key.size_bytes() > with_low_key.size_bytes());
    }

    #[test]
    fn size_bytes_is_allocation_independent() {
        // Same logical content through different construction histories
        // (bulk run vs incremental with removals) reports identical bytes.
        let a = {
            let mut t = BuildTable::new();
            t.push_run(&[(vid(1), 2)], &[vid(3), vid(5)]);
            t.freeze()
        };
        let b = {
            let mut t = BuildTable::new();
            t.push_key(vid(1), &[vid(3), vid(5), vid(9)]);
            t.push_key(vid(2), &[vid(9)]);
            t.remove_value_everywhere(vid(9));
            t.remove_key(vid(2));
            t.freeze()
        };
        assert_eq!(a, b);
        assert_eq!(a.size_bytes(), b.size_bytes());
        assert_eq!(a.arena_bytes(), b.arena_bytes());
    }

    #[test]
    fn empty_table() {
        let t = BuildTable::new();
        assert_eq!(t.num_keys(), 0);
        assert!(t.value_union().is_empty());
        assert_eq!(t.arena_bytes(), 0);
        let c = t.freeze();
        assert_eq!(c.num_entries(), 0);
        assert_eq!(c.get(vid(0)), None);
    }
}
