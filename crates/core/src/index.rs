//! The Compact Embedding Cluster Index (§3).
//!
//! [`Ceci`] is the frozen result of BFS filtering (Algorithm 1) plus
//! reverse-BFS refinement (Algorithm 2): per query node, a compact
//! TE_Candidates table keyed by the tree parent's candidates, one compact
//! NTE_Candidates table per backward non-tree edge, the per-(u, v)
//! cardinalities, and the surviving cluster pivots. Size accounting matches
//! the paper's 8-bytes-per-candidate-edge convention (Table 2).

use std::time::{Duration, Instant};

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::filter::{bfs_filter_from_with, BuilderState};
use crate::refine::reverse_bfs_refine;
use crate::tables::CompactTable;

/// Options controlling CECI construction — the Figure 19 ablation toggles
/// plus the build worker pool width.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Build NTE_Candidates tables (enables intersection-based enumeration).
    /// When off, enumeration must verify non-tree edges against the graph.
    pub build_nte: bool,
    /// Run reverse-BFS refinement removals. Cardinalities are computed
    /// either way (the workload balancer needs them).
    pub refine: bool,
    /// Worker threads for the BFS-filter fan-out (Algorithm 1). `1` (or 0)
    /// runs fully on the calling thread; any value produces a bit-identical
    /// index (deterministic chunk merge).
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            build_nte: true,
            refine: true,
            threads: 1,
        }
    }
}

/// Per-stage statistics of one CECI build.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Initial root candidates (pivots before any cascade).
    pub pivots_initial: usize,
    /// Pivots surviving filtering + refinement.
    pub pivots_final: usize,
    /// TE candidate edges after BFS filtering.
    pub te_entries_after_filter: usize,
    /// NTE candidate edges after BFS filtering.
    pub nte_entries_after_filter: usize,
    /// TE candidate edges after refinement.
    pub te_entries_after_refine: usize,
    /// NTE candidate edges after refinement.
    pub nte_entries_after_refine: usize,
    /// Wall time of Algorithm 1 (frontier filtering + cascade + merge).
    pub filter_time: Duration,
    /// Wall time of Algorithm 2.
    pub refine_time: Duration,
    /// Wall time of the deterministic chunk merge inside Algorithm 1 (zero
    /// for a 1-thread build, which writes straight into the table arena).
    pub merge_time: Duration,
    /// Wall time spent inside parallel fan-out sections of Algorithm 1.
    pub filter_fanout_wall: Duration,
    /// Longest per-worker CPU busy time across the fan-out sections — the
    /// modeled parallel span on machines with fewer cores than workers.
    pub filter_busy_max: Duration,
    /// Total worker CPU busy time across the fan-out sections.
    pub filter_busy_total: Duration,
    /// Worker pool width the filter ran with.
    pub build_threads: usize,
    /// Flat value-arena bytes of the frozen tables (the paper's
    /// 4-bytes-per-candidate-edge payload).
    pub arena_bytes: usize,
    /// Final index heap bytes.
    pub size_bytes: usize,
    /// The paper's theoretical bound `|E_q| × |E_g| × 8` bytes (Table 2).
    pub theoretical_bytes: u64,
}

impl BuildStats {
    /// Build time as it would be on a machine with one core per worker:
    /// the serial portion of the filter (`filter_time − fanout_wall`, which
    /// includes the merge) plus the modeled parallel span (`busy_max`) plus
    /// refinement. For a 1-thread build this equals
    /// `filter_time + refine_time` exactly.
    pub fn modeled_build_time(&self) -> Duration {
        self.filter_time
            .saturating_sub(self.filter_fanout_wall)
            .saturating_add(self.filter_busy_max)
            .saturating_add(self.refine_time)
    }

    /// Fraction of the theoretical size saved by filtering + refinement
    /// (the bracketed percentage of Table 2).
    pub fn percent_saved(&self) -> f64 {
        if self.theoretical_bytes == 0 {
            return 0.0;
        }
        let actual = (self.te_entries_after_refine + self.nte_entries_after_refine) as f64 * 8.0;
        (1.0 - actual / self.theoretical_bytes as f64).max(0.0) * 100.0
    }
}

/// Records `build.filter` / `build.refine` / `build.merge` spans for a
/// completed build onto `tracer`, reconstructing the stage timeline from
/// [`BuildStats`] so the build itself pays zero tracing cost. The spans are
/// children of `parent` (pass 0 for a root build) and end at the tracer
/// clock's *call* instant; `build.merge` is nested inside `build.filter`
/// (the deterministic chunk merge runs at the end of Algorithm 1). Returns
/// the id of the enclosing `build.index` span.
pub fn record_build_spans(
    tracer: &ceci_trace::Tracer,
    parent: u64,
    tid: u32,
    stats: &BuildStats,
) -> u64 {
    let end = tracer.now_ns();
    let filter_ns = stats.filter_time.as_nanos() as u64;
    let refine_ns = stats.refine_time.as_nanos() as u64;
    let merge_ns = stats.merge_time.as_nanos() as u64;
    let total_ns = filter_ns + refine_ns;
    let start = end.saturating_sub(total_ns);
    let root = tracer.span(
        "build.index",
        "build",
        parent,
        tid,
        start,
        total_ns,
        vec![
            ("pivots_final", stats.pivots_final as u64),
            ("build_threads", stats.build_threads as u64),
            ("size_bytes", stats.size_bytes as u64),
        ],
    );
    let filter = tracer.span(
        "build.filter",
        "build",
        root,
        tid,
        start,
        filter_ns,
        vec![
            ("te_entries", stats.te_entries_after_filter as u64),
            ("nte_entries", stats.nte_entries_after_filter as u64),
            ("fanout_wall_ns", stats.filter_fanout_wall.as_nanos() as u64),
            ("busy_max_ns", stats.filter_busy_max.as_nanos() as u64),
        ],
    );
    tracer.span(
        "build.merge",
        "build",
        filter,
        tid,
        (start + filter_ns).saturating_sub(merge_ns),
        merge_ns,
        Vec::new(),
    );
    tracer.span(
        "build.refine",
        "build",
        root,
        tid,
        start + filter_ns,
        refine_ns,
        vec![
            ("te_entries", stats.te_entries_after_refine as u64),
            ("nte_entries", stats.nte_entries_after_refine as u64),
        ],
    );
    root
}

/// The frozen Compact Embedding Cluster Index.
#[derive(Clone, Debug)]
pub struct Ceci {
    /// `(pivot, cluster cardinality)` sorted by pivot id.
    pivots: Vec<(VertexId, u64)>,
    te: Vec<Option<CompactTable>>,
    nte: Vec<Vec<(VertexId, CompactTable)>>,
    /// Final sorted candidate list per query node.
    candidates: Vec<Vec<VertexId>>,
    /// `(candidate, cardinality)` per query node, sorted by candidate.
    cardinality: Vec<Vec<(VertexId, u64)>>,
    stats: BuildStats,
}

impl Ceci {
    /// Builds CECI for `(graph, plan)` with default options.
    ///
    /// # Examples
    ///
    /// ```
    /// use ceci_core::Ceci;
    /// use ceci_graph::{vid, Graph};
    /// use ceci_query::{PaperQuery, QueryPlan};
    ///
    /// // Two triangles sharing an edge.
    /// let graph = Graph::unlabeled(4, &[
    ///     (vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(0)),
    ///     (vid(1), vid(3)), (vid(2), vid(3)),
    /// ]);
    /// let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
    /// let ceci = Ceci::build(&graph, &plan);
    /// assert_eq!(ceci_core::count_embeddings(&graph, &plan, &ceci), 2);
    /// ```
    pub fn build(graph: &Graph, plan: &QueryPlan) -> Ceci {
        Ceci::build_with(graph, plan, BuildOptions::default())
    }

    /// Builds CECI with explicit ablation options.
    pub fn build_with(graph: &Graph, plan: &QueryPlan, options: BuildOptions) -> Ceci {
        Ceci::build_for_pivots(
            graph,
            plan,
            options,
            plan.initial_candidates(plan.root()).to_vec(),
        )
    }

    /// Builds CECI restricted to a subset of the root's candidates — one
    /// index per machine in the distributed setting (§5). Only embeddings
    /// whose root maps into `pivots` are indexed/enumerable.
    pub fn build_for_pivots(
        graph: &Graph,
        plan: &QueryPlan,
        options: BuildOptions,
        pivots: Vec<VertexId>,
    ) -> Ceci {
        let mut stats = BuildStats {
            pivots_initial: pivots.len(),
            theoretical_bytes: plan.query().num_edges() as u64 * graph.num_edges() as u64 * 8,
            ..Default::default()
        };

        let t0 = Instant::now();
        let (mut state, profile) = bfs_filter_from_with(graph, plan, pivots, options.threads);
        if !options.build_nte {
            for tables in &mut state.nte {
                tables.clear();
            }
        }
        stats.filter_time = t0.elapsed();
        stats.merge_time = profile.merge_time;
        stats.filter_fanout_wall = profile.fanout_wall;
        stats.filter_busy_max = profile.busy_max();
        stats.filter_busy_total = profile.busy_total();
        stats.build_threads = profile.threads;
        stats.te_entries_after_filter = state.te_entries();
        stats.nte_entries_after_filter = state.nte_entries();

        Ceci::finish(plan, state, stats, options.refine)
    }

    /// Completes a build from an already-filtered [`BuilderState`]:
    /// Algorithm 2 refinement, stale-key pruning, and table freezing — the
    /// exact tail of [`Ceci::build_for_pivots`] after its BFS-filter phase.
    ///
    /// This is the materialization entry of the streaming repair path: the
    /// incremental maintainer keeps per-query *base* candidate tables
    /// patched across mutation batches and reconstructs a `BuilderState`
    /// from them (via [`BuilderState::from_parts`]) instead of re-running
    /// the full filter, so repair pays refine + freeze but not the
    /// per-neighbor LF/DF/NLCF scans that dominate a cold build.
    pub fn from_filtered_state(graph: &Graph, plan: &QueryPlan, state: BuilderState) -> Ceci {
        let stats = BuildStats {
            pivots_initial: state.pivots.len(),
            theoretical_bytes: plan.query().num_edges() as u64 * graph.num_edges() as u64 * 8,
            te_entries_after_filter: state.te_entries(),
            nte_entries_after_filter: state.nte_entries(),
            ..Default::default()
        };
        Ceci::finish(plan, state, stats, true)
    }

    fn finish(
        plan: &QueryPlan,
        mut state: BuilderState,
        mut stats: BuildStats,
        refine: bool,
    ) -> Ceci {
        let t1 = Instant::now();
        let cards = reverse_bfs_refine(plan, &mut state, refine);
        stats.refine_time = t1.elapsed();

        // Drop keys that are no longer candidates of their key-side node —
        // value removals at a parent can leave stale keys in child tables
        // that refinement (which runs children-first) never revisits.
        let n = plan.query().num_vertices();
        let candidate_sets: Vec<Vec<VertexId>> = plan
            .query()
            .vertices()
            .map(|u| state.candidates_of(plan, u).to_vec())
            .collect();
        for u in plan.query().vertices() {
            if let Some(p) = plan.tree().parent(u) {
                prune_stale_keys(
                    state.te[u.index()].as_mut().expect("non-root has TE"),
                    &candidate_sets[p.index()],
                );
            }
            for (un, table) in state.nte[u.index()].iter_mut() {
                prune_stale_keys(table, &candidate_sets[un.index()]);
            }
        }
        stats.te_entries_after_refine = state.te_entries();
        stats.nte_entries_after_refine = state.nte_entries();

        let root = plan.root();
        let (pivot_set, te_build, nte_build) = state.into_parts();
        let pivots: Vec<(VertexId, u64)> = pivot_set
            .into_iter()
            .map(|v| (v, cards.get(root, v)))
            .collect();
        stats.pivots_final = pivots.len();

        // Freezing consumes each build table: when refinement left no holes
        // in an arena, the value storage moves into the compact form without
        // a copy.
        let te: Vec<Option<CompactTable>> = te_build
            .into_iter()
            .map(|t| t.map(|t| t.freeze()))
            .collect();
        let nte: Vec<Vec<(VertexId, CompactTable)>> = nte_build
            .into_iter()
            .map(|tables| tables.into_iter().map(|(un, t)| (un, t.freeze())).collect())
            .collect();
        let cardinality: Vec<Vec<(VertexId, u64)>> =
            (0..n).map(|i| cards.of_node(VertexId(i as u32))).collect();

        let mut ceci = Ceci {
            pivots,
            te,
            nte,
            candidates: candidate_sets,
            cardinality,
            stats,
        };
        ceci.stats.size_bytes = ceci.size_bytes();
        ceci.stats.arena_bytes = ceci.arena_bytes();
        ceci
    }

    /// Surviving cluster pivots with their cluster cardinalities, sorted by
    /// pivot id.
    #[inline]
    pub fn pivots(&self) -> &[(VertexId, u64)] {
        &self.pivots
    }

    /// TE table of `u` (`None` for the root).
    #[inline]
    pub fn te(&self, u: VertexId) -> Option<&CompactTable> {
        self.te[u.index()].as_ref()
    }

    /// Backward NTE tables of `u` as `(nte_parent, table)` pairs, ordered by
    /// the NTE parent's matching-order position.
    #[inline]
    pub fn nte(&self, u: VertexId) -> &[(VertexId, CompactTable)] {
        &self.nte[u.index()]
    }

    /// Final candidate set of `u`, sorted.
    #[inline]
    pub fn candidates(&self, u: VertexId) -> &[VertexId] {
        &self.candidates[u.index()]
    }

    /// Cardinality of `(u, v)`; 0 for pruned candidates.
    pub fn cardinality(&self, u: VertexId, v: VertexId) -> u64 {
        let list = &self.cardinality[u.index()];
        match list.binary_search_by_key(&v, |&(c, _)| c) {
            Ok(i) => list[i].1,
            Err(_) => 0,
        }
    }

    /// Sum of cluster cardinalities — the index's upper bound on total
    /// embeddings.
    pub fn total_cardinality(&self) -> u64 {
        self.pivots
            .iter()
            .fold(0u64, |acc, &(_, c)| acc.saturating_add(c))
    }

    /// Build statistics.
    #[inline]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Total candidate-edge entries currently stored (TE + NTE).
    pub fn num_entries(&self) -> usize {
        let te: usize = self.te.iter().flatten().map(|t| t.num_entries()).sum();
        let nte: usize = self
            .nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.num_entries())
            .sum();
        te + nte
    }

    /// Flat value-arena bytes across all frozen tables — the paper's
    /// 4-bytes-per-candidate-edge payload, excluding keys/offsets/slot-map
    /// and cardinality overhead.
    pub fn arena_bytes(&self) -> usize {
        let te: usize = self.te.iter().flatten().map(|t| t.arena_bytes()).sum();
        let nte: usize = self
            .nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.arena_bytes())
            .sum();
        te + nte
    }

    /// Heap bytes held by the frozen index. Length-based (not
    /// capacity-based), so the figure is exact and identical across build
    /// histories — a parallel and a sequential build of the same index
    /// report the same bytes.
    pub fn size_bytes(&self) -> usize {
        let te: usize = self.te.iter().flatten().map(|t| t.size_bytes()).sum();
        let nte: usize = self
            .nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.size_bytes())
            .sum();
        let cands: usize = self
            .candidates
            .iter()
            .map(|c| c.len() * std::mem::size_of::<VertexId>())
            .sum();
        let cards: usize = self
            .cardinality
            .iter()
            .map(|c| c.len() * std::mem::size_of::<(VertexId, u64)>())
            .sum();
        let pivots = self.pivots.len() * std::mem::size_of::<(VertexId, u64)>();
        te + nte + cands + cards + pivots
    }
}

fn prune_stale_keys(table: &mut crate::tables::BuildTable, valid_keys: &[VertexId]) {
    let stale: Vec<VertexId> = table
        .iter()
        .map(|(k, _)| k)
        .filter(|k| valid_keys.binary_search(k).is_err())
        .collect();
    for k in stale {
        table.remove_key(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper;

    fn built() -> (Graph, QueryPlan, Ceci) {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        (graph, plan, ceci)
    }

    #[test]
    fn figure3c_final_tables() {
        let (_, _, ceci) = built();
        // Pivot v1 with cardinality 4.
        assert_eq!(ceci.pivots(), &[(paper::v(1), 4)]);
        assert_eq!(ceci.total_cardinality(), 4);
        // te[u2] = <v1, {v3, v5}> (v7 refined away).
        let te_u2 = ceci.te(paper::u(2)).unwrap();
        assert_eq!(
            te_u2.get(paper::v(1)),
            Some(&[paper::v(3), paper::v(5)][..])
        );
        assert_eq!(te_u2.num_entries(), 2);
        // te[u4]: keys v3, v5 only (v7's key became stale and was pruned).
        let te_u4 = ceci.te(paper::u(4)).unwrap();
        assert_eq!(te_u4.get(paper::v(3)), Some(&[paper::v(11)][..]));
        assert_eq!(te_u4.get(paper::v(5)), Some(&[paper::v(13)][..]));
        assert_eq!(te_u4.get(paper::v(7)), None);
        // nte[u3]: v7 entry removed.
        let (un, nte_u3) = &ceci.nte(paper::u(3))[0];
        assert_eq!(*un, paper::u(2));
        assert_eq!(nte_u3.get(paper::v(7)), None);
        assert_eq!(nte_u3.num_keys(), 2);
    }

    #[test]
    fn final_candidate_sets() {
        let (_, _, ceci) = built();
        assert_eq!(ceci.candidates(paper::u(1)), &[paper::v(1)]);
        assert_eq!(ceci.candidates(paper::u(2)), &[paper::v(3), paper::v(5)]);
        assert_eq!(ceci.candidates(paper::u(3)), &[paper::v(4), paper::v(6)]);
        assert_eq!(ceci.candidates(paper::u(4)), &[paper::v(11), paper::v(13)]);
        assert_eq!(ceci.candidates(paper::u(5)), &[paper::v(12), paper::v(14)]);
    }

    #[test]
    fn cardinality_lookup() {
        let (_, _, ceci) = built();
        assert_eq!(ceci.cardinality(paper::u(1), paper::v(1)), 4);
        assert_eq!(ceci.cardinality(paper::u(2), paper::v(3)), 1);
        assert_eq!(ceci.cardinality(paper::u(2), paper::v(7)), 0);
        assert_eq!(ceci.cardinality(paper::u(4), paper::v(15)), 0);
    }

    #[test]
    fn stats_track_stage_sizes() {
        let (_, _, ceci) = built();
        let s = ceci.stats();
        assert_eq!(s.pivots_initial, 2);
        assert_eq!(s.pivots_final, 1);
        assert_eq!(s.te_entries_after_filter, 10);
        assert_eq!(s.nte_entries_after_filter, 6);
        // Refinement removes v15 (from te[u4]) and v7 (from te[u2]) — two
        // value entries (10 → 8) — and the <v7,{v6}> NTE entry of u3 (6 → 5).
        // The emptied v7 key of te[u4] holds no entries, so pruning it does
        // not change the count.
        assert_eq!(s.te_entries_after_refine, 8);
        assert_eq!(s.nte_entries_after_refine, 5);
        assert!(s.size_bytes > 0);
        assert_eq!(s.theoretical_bytes, 6 * 24 * 8);
        assert!(s.percent_saved() > 0.0);
    }

    #[test]
    fn no_nte_option_drops_tables() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build_with(
            &graph,
            &plan,
            BuildOptions {
                build_nte: false,
                refine: true,
                ..BuildOptions::default()
            },
        );
        for u in plan.query().vertices() {
            assert!(ceci.nte(u).is_empty());
        }
        // Without NTE membership checks v15 survives refinement (it has no
        // tree children, so its product is the empty product 1).
        assert_eq!(ceci.cardinality(paper::u(4), paper::v(15)), 1);
    }

    #[test]
    fn no_refine_option_keeps_entries() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build_with(
            &graph,
            &plan,
            BuildOptions {
                build_nte: true,
                refine: false,
                ..BuildOptions::default()
            },
        );
        let s = ceci.stats();
        assert_eq!(s.te_entries_after_refine, s.te_entries_after_filter);
        // Cardinalities still expose the dead candidates as 0.
        assert_eq!(ceci.cardinality(paper::u(4), paper::v(15)), 0);
        assert_eq!(ceci.cardinality(paper::u(2), paper::v(7)), 0);
    }

    #[test]
    fn size_accounting_consistent() {
        let (_, _, ceci) = built();
        assert_eq!(ceci.stats().size_bytes, ceci.size_bytes());
        assert_eq!(
            ceci.num_entries(),
            ceci.stats().te_entries_after_refine + ceci.stats().nte_entries_after_refine
        );
    }
}
