//! Dense vertex bitmap for O(1) injectivity checks.
//!
//! The enumeration hot path must answer "is data vertex `v` already used by
//! the partial embedding?" once per surviving candidate. A `HashSet` answers
//! that with hashing plus probing and allocates as it grows; a dense bitmap
//! keyed directly by [`VertexId`] answers it with one shift/mask on a flat
//! `u64` word array that is allocated once per enumerator and reused across
//! every cluster. At one bit per data vertex the map costs `n/8` bytes —
//! negligible next to the candidate arena.

use ceci_graph::VertexId;

/// A fixed-capacity bitmap over the data-graph vertex universe `0..n`.
#[derive(Clone, Debug, Default)]
pub struct VertexBitmap {
    words: Vec<u64>,
}

impl VertexBitmap {
    /// A bitmap covering vertex ids `0..n`, all clear.
    pub fn new(n: usize) -> Self {
        VertexBitmap {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    /// `true` if `v` is set.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let i = v.index();
        (self.words[i >> 6] >> (i & 63)) & 1 != 0
    }

    /// Sets `v`.
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        let i = v.index();
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Clears `v`.
    #[inline]
    pub fn remove(&mut self, v: VertexId) {
        let i = v.index();
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Number of set bits (diagnostics; not on the hot path).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes held by the bitmap.
    pub fn size_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    #[test]
    fn insert_contains_remove() {
        let mut b = VertexBitmap::new(130);
        for &v in &[0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.contains(vid(v)));
            b.insert(vid(v));
            assert!(b.contains(vid(v)));
        }
        assert_eq!(b.count(), 8);
        b.remove(vid(64));
        assert!(!b.contains(vid(64)));
        assert!(b.contains(vid(63)));
        assert!(b.contains(vid(65)));
        assert_eq!(b.count(), 7);
    }

    #[test]
    fn double_insert_is_idempotent() {
        let mut b = VertexBitmap::new(10);
        b.insert(vid(3));
        b.insert(vid(3));
        assert_eq!(b.count(), 1);
        b.remove(vid(3));
        assert_eq!(b.count(), 0);
        // Removing a clear bit is a no-op.
        b.remove(vid(3));
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn capacity_rounds_up_to_words() {
        let b = VertexBitmap::new(1);
        assert!(b.size_bytes() >= 8);
        let empty = VertexBitmap::new(0);
        assert_eq!(empty.count(), 0);
    }
}
