//! Reverse-BFS refinement and cardinality — Algorithm 2 (§3.3).
//!
//! Walking the matching order backwards (children before parents), each
//! candidate `v` of query node `u` gets a *cardinality*:
//!
//! ```text
//! cardinality(u, v) = Π over tree children u_c of u
//!                       Σ over v_c ∈ TE_Candidates[u_c][v]
//!                         cardinality(u_c, v_c)
//! ```
//!
//! with two base rules: leaves have cardinality 1, and any candidate missing
//! from one of `u`'s backward NTE tables is zeroed (it can never close that
//! non-tree edge). Zero-cardinality candidates are deleted from `u`'s tables
//! and their key entries removed from every child table — the green removals
//! of Figure 3(c).
//!
//! Cardinality doubles as the workload estimate: `cardinality(u_s, v_s)` of
//! a pivot bounds the embeddings its cluster can contain (§4.3).

use ceci_graph::VertexId;
use ceci_query::QueryPlan;
use std::collections::HashMap;

use crate::filter::BuilderState;

/// Per-(query node, candidate) cardinalities.
#[derive(Clone, Debug, Default)]
pub struct Cardinalities {
    /// `per_node[u][v]` = cardinality(u, v). Candidates removed during
    /// refinement are absent.
    per_node: Vec<HashMap<VertexId, u64>>,
}

impl Cardinalities {
    /// Cardinality of `(u, v)`; 0 if the candidate was pruned.
    #[inline]
    pub fn get(&self, u: VertexId, v: VertexId) -> u64 {
        self.per_node[u.index()].get(&v).copied().unwrap_or(0)
    }

    /// All `(candidate, cardinality)` pairs of `u`, sorted by candidate.
    pub fn of_node(&self, u: VertexId) -> Vec<(VertexId, u64)> {
        let mut out: Vec<(VertexId, u64)> = self.per_node[u.index()]
            .iter()
            .map(|(&v, &c)| (v, c))
            .collect();
        out.sort_unstable_by_key(|&(v, _)| v);
        out
    }

    /// Sum of cardinalities at the root — the upper bound on total
    /// embeddings across all clusters.
    pub fn total_at(&self, u: VertexId) -> u64 {
        self.per_node[u.index()]
            .values()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }
}

/// Runs Algorithm 2 over the builder state.
///
/// When `remove_zero` is `false` the cardinalities are still computed but no
/// candidates are deleted — used by the Figure 19 ablation that measures the
/// value of refinement.
pub fn reverse_bfs_refine(
    plan: &QueryPlan,
    state: &mut BuilderState,
    remove_zero: bool,
) -> Cardinalities {
    let n = plan.query().num_vertices();
    let mut cards = Cardinalities {
        per_node: vec![HashMap::new(); n],
    };
    for &u in plan.matching_order().iter().rev() {
        let candidates = state.candidates_of(plan, u);
        for v in candidates {
            let mut card: u64 = 1;
            // NTE membership: v must be a value of every backward NTE table.
            let nte_ok = state.nte[u.index()]
                .iter()
                .all(|(_, table)| table.contains_value(v));
            if !nte_ok {
                card = 0;
            } else {
                for &uc in plan.tree().children(u) {
                    let sum: u64 = state.te[uc.index()]
                        .as_ref()
                        .and_then(|t| t.get(v))
                        .map(|list| {
                            list.iter()
                                .fold(0u64, |acc, &vc| acc.saturating_add(cards.get(uc, vc)))
                        })
                        .unwrap_or(0);
                    card = card.saturating_mul(sum);
                    if card == 0 {
                        break;
                    }
                }
            }
            if card == 0 {
                if remove_zero {
                    state.remove_candidate(plan, u, v);
                }
            } else {
                cards.per_node[u.index()].insert(v, card);
            }
        }
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::bfs_filter;
    use crate::fixtures::paper;

    fn refined() -> (BuilderState, Cardinalities) {
        let (graph, plan) = paper::figure1();
        let mut state = bfs_filter(&graph, &plan);
        let cards = reverse_bfs_refine(&plan, &mut state, true);
        (state, cards)
    }

    #[test]
    fn leaf_cardinalities_are_one() {
        let (_, cards) = refined();
        for v in [12, 14] {
            assert_eq!(cards.get(paper::u(5), paper::v(v)), 1);
        }
        for v in [11, 13] {
            assert_eq!(cards.get(paper::u(4), paper::v(v)), 1);
        }
    }

    #[test]
    fn v15_zeroed_by_nte_membership() {
        // v15 is in TE of u4 but not in NTE_Candidates of u4 → cardinality 0
        // → removed (paper §3.3).
        let (state, cards) = refined();
        assert_eq!(cards.get(paper::u(4), paper::v(15)), 0);
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert!(!te_u4.contains_value(paper::v(15)));
    }

    #[test]
    fn v7_zeroed_through_child() {
        // cardinality(u2, v7) = 0 because its only child v15 died; v7 is then
        // removed from TE of u2 and the <v7,{v6}> entry is removed from the
        // NTE table of u3 (paper §3.3).
        let (state, cards) = refined();
        assert_eq!(cards.get(paper::u(2), paper::v(7)), 0);
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert!(!te_u2.contains_value(paper::v(7)));
        let (un, nte_u3) = &state.nte[paper::u(3).index()][0];
        assert_eq!(*un, paper::u(2));
        assert_eq!(nte_u3.get(paper::v(7)), None);
        // The surviving entries of nte[u3] are intact.
        assert_eq!(nte_u3.get(paper::v(3)), Some(&[paper::v(4)][..]));
        assert_eq!(
            nte_u3.get(paper::v(5)),
            Some(&[paper::v(4), paper::v(6)][..])
        );
    }

    #[test]
    fn internal_cardinalities() {
        let (_, cards) = refined();
        assert_eq!(cards.get(paper::u(2), paper::v(3)), 1);
        assert_eq!(cards.get(paper::u(2), paper::v(5)), 1);
        assert_eq!(cards.get(paper::u(3), paper::v(4)), 1);
        assert_eq!(cards.get(paper::u(3), paper::v(6)), 1);
        // Root: (1 + 1) × (1 + 1) = 4 — an upper bound on the 2 embeddings.
        assert_eq!(cards.get(paper::u(1), paper::v(1)), 4);
        assert_eq!(cards.total_at(paper::u(1)), 4);
    }

    #[test]
    fn of_node_sorted() {
        let (_, cards) = refined();
        let list = cards.of_node(paper::u(2));
        assert_eq!(list, vec![(paper::v(3), 1), (paper::v(5), 1)]);
    }

    #[test]
    fn no_removal_mode_keeps_candidates() {
        let (graph, plan) = paper::figure1();
        let mut state = bfs_filter(&graph, &plan);
        let cards = reverse_bfs_refine(&plan, &mut state, false);
        // Cardinalities still identify the dead candidates...
        assert_eq!(cards.get(paper::u(4), paper::v(15)), 0);
        // ...but the tables keep them.
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert!(te_u4.contains_value(paper::v(15)));
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert!(te_u2.contains_value(paper::v(7)));
        // Root cardinality accounts only for live subtrees either way:
        // (card(v3)+card(v5)+card(v7)) × (card(v4)+card(v6)) = (1+1+0)×(1+1).
        assert_eq!(cards.get(paper::u(1), paper::v(1)), 4);
    }

    #[test]
    fn pivots_survive_refinement() {
        let (state, cards) = refined();
        assert_eq!(state.pivots, vec![paper::v(1)]);
        assert!(cards.get(paper::u(1), paper::v(1)) > 0);
    }
}
