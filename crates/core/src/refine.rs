//! Reverse-BFS refinement and cardinality — Algorithm 2 (§3.3).
//!
//! Walking the matching order backwards (children before parents), each
//! candidate `v` of query node `u` gets a *cardinality*:
//!
//! ```text
//! cardinality(u, v) = Π over tree children u_c of u
//!                       Σ over v_c ∈ TE_Candidates[u_c][v]
//!                         cardinality(u_c, v_c)
//! ```
//!
//! with two base rules: leaves have cardinality 1, and any candidate missing
//! from one of `u`'s backward NTE tables is zeroed (it can never close that
//! non-tree edge). Zero-cardinality candidates are deleted from `u`'s tables
//! and their key entries removed from every child table — the green removals
//! of Figure 3(c).
//!
//! Cardinality doubles as the workload estimate: `cardinality(u_s, v_s)` of
//! a pivot bounds the embeddings its cluster can contain (§4.3).
//!
//! Storage is dense: per node, a snapshot of the candidate list (sorted), a
//! dense candidate-id → slot map (same scheme as the tables'
//! `slot_of`), and a slot-indexed `Vec<u64>` of cardinalities. Lookups
//! during the reverse walk are two array reads — no hashing — which makes
//! refinement a linear pass over the child tables' flat arenas, and
//! [`Cardinalities::of_node`] returns pairs in candidate order without a
//! per-call sort or re-allocation of the map.

use ceci_graph::VertexId;
use ceci_query::QueryPlan;

use crate::filter::BuilderState;
use crate::tables::{build_slot_map, slot_lookup};

/// One query node's cardinalities in dense slot-indexed form.
#[derive(Clone, Debug, Default)]
struct NodeCards {
    /// Candidate snapshot at refinement time, sorted.
    cands: Vec<VertexId>,
    /// Dense candidate id → slot into `vals` (`NO_SLOT` sentinel absent).
    slot_of: Vec<u32>,
    /// `vals[slot]` = cardinality of `cands[slot]` (0 = pruned).
    vals: Vec<u64>,
}

impl NodeCards {
    fn for_candidates(cands: &[VertexId]) -> NodeCards {
        NodeCards {
            cands: cands.to_vec(),
            slot_of: build_slot_map(cands),
            vals: vec![0; cands.len()],
        }
    }
}

/// Per-(query node, candidate) cardinalities.
#[derive(Clone, Debug, Default)]
pub struct Cardinalities {
    per_node: Vec<NodeCards>,
}

impl Cardinalities {
    /// Cardinality of `(u, v)`; 0 if the candidate was pruned (or was never
    /// a candidate). Two array reads.
    #[inline]
    pub fn get(&self, u: VertexId, v: VertexId) -> u64 {
        let node = &self.per_node[u.index()];
        match slot_lookup(&node.slot_of, v) {
            Some(s) => node.vals[s],
            None => 0,
        }
    }

    /// All `(candidate, cardinality)` pairs of `u` with non-zero
    /// cardinality, in ascending candidate order. The dense layout already
    /// stores slots in candidate order, so this is a filtering scan — no
    /// per-call sort.
    pub fn of_node(&self, u: VertexId) -> Vec<(VertexId, u64)> {
        let node = &self.per_node[u.index()];
        node.cands
            .iter()
            .zip(node.vals.iter())
            .filter(|&(_, &c)| c > 0)
            .map(|(&v, &c)| (v, c))
            .collect()
    }

    /// Sum of cardinalities at the root — the upper bound on total
    /// embeddings across all clusters.
    pub fn total_at(&self, u: VertexId) -> u64 {
        self.per_node[u.index()]
            .vals
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }
}

/// Runs Algorithm 2 over the builder state.
///
/// When `remove_zero` is `false` the cardinalities are still computed but no
/// candidates are deleted — used by the Figure 19 ablation that measures the
/// value of refinement.
pub fn reverse_bfs_refine(
    plan: &QueryPlan,
    state: &mut BuilderState,
    remove_zero: bool,
) -> Cardinalities {
    let n = plan.query().num_vertices();
    let mut cards = Cardinalities {
        per_node: vec![NodeCards::default(); n],
    };
    let mut scratch: Vec<VertexId> = Vec::new();
    for &u in plan.matching_order().iter().rev() {
        scratch.clear();
        scratch.extend_from_slice(state.candidates_of(plan, u));
        let mut node = NodeCards::for_candidates(&scratch);
        for (slot, &v) in scratch.iter().enumerate() {
            let mut card: u64 = 1;
            // NTE membership: v must be a value of every backward NTE table.
            let nte_ok = state.nte[u.index()]
                .iter()
                .all(|(_, table)| table.contains_value(v));
            if !nte_ok {
                card = 0;
            } else {
                for &uc in plan.tree().children(u) {
                    let child = &cards.per_node[uc.index()];
                    let sum: u64 = state.te[uc.index()]
                        .as_ref()
                        .and_then(|t| t.get(v))
                        .map(|list| {
                            list.iter().fold(0u64, |acc, &vc| {
                                let c = match slot_lookup(&child.slot_of, vc) {
                                    Some(s) => child.vals[s],
                                    None => 0,
                                };
                                acc.saturating_add(c)
                            })
                        })
                        .unwrap_or(0);
                    card = card.saturating_mul(sum);
                    if card == 0 {
                        break;
                    }
                }
            }
            if card == 0 {
                if remove_zero {
                    state.remove_candidate(plan, u, v);
                }
            } else {
                node.vals[slot] = card;
            }
        }
        cards.per_node[u.index()] = node;
    }
    cards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::bfs_filter;
    use crate::fixtures::paper;
    use std::collections::HashMap;

    fn refined() -> (BuilderState, Cardinalities) {
        let (graph, plan) = paper::figure1();
        let mut state = bfs_filter(&graph, &plan);
        let cards = reverse_bfs_refine(&plan, &mut state, true);
        (state, cards)
    }

    #[test]
    fn leaf_cardinalities_are_one() {
        let (_, cards) = refined();
        for v in [12, 14] {
            assert_eq!(cards.get(paper::u(5), paper::v(v)), 1);
        }
        for v in [11, 13] {
            assert_eq!(cards.get(paper::u(4), paper::v(v)), 1);
        }
    }

    #[test]
    fn v15_zeroed_by_nte_membership() {
        // v15 is in TE of u4 but not in NTE_Candidates of u4 → cardinality 0
        // → removed (paper §3.3).
        let (state, cards) = refined();
        assert_eq!(cards.get(paper::u(4), paper::v(15)), 0);
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert!(!te_u4.contains_value(paper::v(15)));
    }

    #[test]
    fn v7_zeroed_through_child() {
        // cardinality(u2, v7) = 0 because its only child v15 died; v7 is then
        // removed from TE of u2 and the <v7,{v6}> entry is removed from the
        // NTE table of u3 (paper §3.3).
        let (state, cards) = refined();
        assert_eq!(cards.get(paper::u(2), paper::v(7)), 0);
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert!(!te_u2.contains_value(paper::v(7)));
        let (un, nte_u3) = &state.nte[paper::u(3).index()][0];
        assert_eq!(*un, paper::u(2));
        assert_eq!(nte_u3.get(paper::v(7)), None);
        // The surviving entries of nte[u3] are intact.
        assert_eq!(nte_u3.get(paper::v(3)), Some(&[paper::v(4)][..]));
        assert_eq!(
            nte_u3.get(paper::v(5)),
            Some(&[paper::v(4), paper::v(6)][..])
        );
    }

    #[test]
    fn internal_cardinalities() {
        let (_, cards) = refined();
        assert_eq!(cards.get(paper::u(2), paper::v(3)), 1);
        assert_eq!(cards.get(paper::u(2), paper::v(5)), 1);
        assert_eq!(cards.get(paper::u(3), paper::v(4)), 1);
        assert_eq!(cards.get(paper::u(3), paper::v(6)), 1);
        // Root: (1 + 1) × (1 + 1) = 4 — an upper bound on the 2 embeddings.
        assert_eq!(cards.get(paper::u(1), paper::v(1)), 4);
        assert_eq!(cards.total_at(paper::u(1)), 4);
    }

    #[test]
    fn of_node_sorted() {
        let (_, cards) = refined();
        let list = cards.of_node(paper::u(2));
        assert_eq!(list, vec![(paper::v(3), 1), (paper::v(5), 1)]);
    }

    #[test]
    fn of_node_matches_hashmap_reference() {
        // Differential check against the pre-dense behavior: collect
        // (candidate, cardinality>0) pairs through a HashMap (the old
        // storage), sort, and compare with the dense scan for every node.
        let (graph, plan) = paper::figure1();
        let mut state = bfs_filter(&graph, &plan);
        let cards = reverse_bfs_refine(&plan, &mut state, true);
        for u in plan.query().vertices() {
            let mut reference: HashMap<VertexId, u64> = HashMap::new();
            // Probe the full graph id range — `get` must agree with the map
            // built from of_node itself plus report 0 elsewhere.
            for (v, c) in cards.of_node(u) {
                reference.insert(v, c);
            }
            let mut expected: Vec<(VertexId, u64)> =
                reference.iter().map(|(&v, &c)| (v, c)).collect();
            expected.sort_unstable_by_key(|&(v, _)| v);
            assert_eq!(cards.of_node(u), expected, "of_node order differs at {u:?}");
            for v in graph.vertices() {
                let want = reference.get(&v).copied().unwrap_or(0);
                assert_eq!(cards.get(u, v), want, "get({u:?}, {v:?}) differs");
            }
        }
    }

    #[test]
    fn no_removal_mode_keeps_candidates() {
        let (graph, plan) = paper::figure1();
        let mut state = bfs_filter(&graph, &plan);
        let cards = reverse_bfs_refine(&plan, &mut state, false);
        // Cardinalities still identify the dead candidates...
        assert_eq!(cards.get(paper::u(4), paper::v(15)), 0);
        // ...but the tables keep them.
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert!(te_u4.contains_value(paper::v(15)));
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert!(te_u2.contains_value(paper::v(7)));
        // Root cardinality accounts only for live subtrees either way:
        // (card(v3)+card(v5)+card(v7)) × (card(v4)+card(v6)) = (1+1+0)×(1+1).
        assert_eq!(cards.get(paper::u(1), paper::v(1)), 4);
    }

    #[test]
    fn pivots_survive_refinement() {
        let (state, cards) = refined();
        assert_eq!(state.pivots, vec![paper::v(1)]);
        assert!(cards.get(paper::u(1), paper::v(1)) > 0);
    }
}
