//! Test fixtures, including the paper's running example.
//!
//! The Figure 1 / Figure 3 example is reconstructed exactly from the paper's
//! prose: query `u1(A)–u2(B)–u3(C)–u4(D)–u5(E)` with edges
//! `{u1u2, u1u3, u2u3, u2u4, u3u4, u3u5}`, and a 15-vertex data graph whose
//! CECI tables, cascades, cardinalities, and two embeddings
//! `{v1,v3,v4,v11,v12}` and `{v1,v5,v6,v13,v14}` all match the worked
//! example. Exposed publicly so integration tests and benches can reuse it.

use ceci_graph::{lid, Graph, LabelSet, VertexId};
use ceci_query::{PlanOptions, QueryGraph, QueryPlan};

/// The paper's Figure 1 example.
pub mod paper {
    use super::*;

    /// Paper vertex `v{i}` (1-based in the paper) as a 0-based [`VertexId`].
    pub fn v(i: u32) -> VertexId {
        assert!((1..=15).contains(&i));
        VertexId(i - 1)
    }

    /// Paper query node `u{i}` (1-based) as a 0-based [`VertexId`].
    pub fn u(i: u32) -> VertexId {
        assert!((1..=5).contains(&i));
        VertexId(i - 1)
    }

    /// Labels: A=0, B=1, C=2, D=3, E=4.
    pub const A: u32 = 0;
    /// Label B.
    pub const B: u32 = 1;
    /// Label C.
    pub const C: u32 = 2;
    /// Label D.
    pub const D: u32 = 3;
    /// Label E.
    pub const E: u32 = 4;

    /// The Figure 1 data graph (15 vertices, labels A–E).
    pub fn data_graph() -> Graph {
        let label_of = |i: u32| match i {
            1 | 2 => A,
            3 | 5 | 7 | 9 => B,
            4 | 6 | 8 | 10 => C,
            11 | 13 | 15 => D,
            12 | 14 => E,
            _ => unreachable!(),
        };
        let labels: Vec<LabelSet> = (1..=15)
            .map(|i| LabelSet::single(lid(label_of(i))))
            .collect();
        let e: &[(u32, u32)] = &[
            (1, 3),
            (1, 5),
            (1, 7),
            (1, 4),
            (1, 6),
            (2, 7),
            (2, 9),
            (2, 8),
            (3, 4),
            (3, 11),
            (5, 4),
            (5, 6),
            (5, 13),
            (7, 6),
            (7, 8),
            (7, 15),
            (9, 10),
            (9, 15),
            (9, 8),
            (4, 11),
            (4, 12),
            (6, 13),
            (6, 14),
            (8, 15),
        ];
        let edges: Vec<(VertexId, VertexId)> = e.iter().map(|&(a, b)| (v(a), v(b))).collect();
        Graph::new(labels, &edges, false)
    }

    /// The Figure 1 query graph: u1(A), u2(B), u3(C), u4(D), u5(E).
    pub fn query_graph() -> QueryGraph {
        QueryGraph::with_labels(
            &[lid(A), lid(B), lid(C), lid(D), lid(E)],
            &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4)],
        )
        .expect("figure 1 query is connected")
    }

    /// The data graph and the paper's plan: root `u1`, BFS matching order
    /// `(u1, u2, u3, u4, u5)`.
    pub fn figure1() -> (Graph, QueryPlan) {
        let graph = data_graph();
        let options = PlanOptions {
            root_override: Some(u(1)),
            ..Default::default()
        };
        let plan = QueryPlan::with_options(query_graph(), &graph, &options);
        (graph, plan)
    }

    /// The two embeddings of Figure 1, as `mapping[query vertex] = data
    /// vertex` arrays.
    pub fn expected_embeddings() -> Vec<Vec<VertexId>> {
        vec![
            vec![v(1), v(3), v(4), v(11), v(12)],
            vec![v(1), v(5), v(6), v(13), v(14)],
        ]
    }
}

/// The paper's Figure 5 example: two embedding clusters with cardinalities
/// 1 and 9 — the motivating case for ExtremeCluster decomposition (§4.3).
///
/// With β = 1 and k = 2 workers the threshold is `1 × 10/2 = 5`;
/// `cardinality(u1, v4) = 9 > 5`, so EC2 splits into three sub-clusters of
/// cardinality 3 along the three matching nodes of `u2` — exactly the
/// walkthrough in §4.3.
pub mod figure5 {
    use super::*;

    /// Query: a labeled path `u1(A) – u2(B) – u3(C)`.
    pub fn query_graph() -> QueryGraph {
        QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2)])
            .expect("path is connected")
    }

    /// Data graph `g2`: cluster EC1 = {v0(A)-v1(B)-v2(C)} with one
    /// embedding; cluster EC2 = pivot v3(A) joined to three B vertices
    /// (v4, v5, v6), each adjacent to the three shared C vertices
    /// (v7, v8, v9) — nine embeddings.
    pub fn data_graph() -> Graph {
        let labels: Vec<LabelSet> = [
            0, 1, 2, // EC1: v0(A), v1(B), v2(C)
            0, // v3(A): EC2 pivot
            1, 1, 1, // v4..v6 (B)
            2, 2, 2, // v7..v9 (C)
        ]
        .iter()
        .map(|&l| LabelSet::single(lid(l)))
        .collect();
        let mut edges = vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))];
        for b in 4..=6u32 {
            edges.push((VertexId(3), VertexId(b)));
            for c in 7..=9u32 {
                edges.push((VertexId(b), VertexId(c)));
            }
        }
        Graph::new(labels, &edges, false)
    }

    /// The data graph and a plan rooted at `u1` in BFS order.
    pub fn setup() -> (Graph, QueryPlan) {
        let graph = data_graph();
        let options = PlanOptions {
            root_override: Some(VertexId(0)),
            ..Default::default()
        };
        let plan = QueryPlan::with_options(query_graph(), &graph, &options);
        (graph, plan)
    }
}

#[cfg(test)]
mod figure5_tests {
    use super::figure5;
    use crate::extreme::decompose;
    use crate::index::Ceci;
    use ceci_graph::vid;

    #[test]
    fn cluster_cardinalities_are_1_and_9() {
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let pivots = ceci.pivots();
        assert_eq!(pivots.len(), 2);
        assert_eq!(pivots[0], (vid(0), 1), "EC1");
        assert_eq!(pivots[1], (vid(3), 9), "EC2");
        assert_eq!(ceci.total_cardinality(), 10);
    }

    #[test]
    fn ten_embeddings_total_nine_in_ec2() {
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let all = crate::enumerate::collect_embeddings(&graph, &plan, &ceci);
        assert_eq!(all.len(), 10);
        let ec2 = all.iter().filter(|e| e[0] == vid(3)).count();
        assert_eq!(ec2, 9, "EC2 holds nine of the ten embeddings");
    }

    #[test]
    fn beta_1_two_workers_splits_ec2_into_three() {
        // §4.3 walkthrough: threshold = 1 × (10/2) = 5; EC2 (cardinality 9)
        // decomposes along u2's three matching nodes into units of
        // cardinality 3; EC1 stays whole.
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let units = decompose(&graph, &plan, &ceci, 2, 1.0);
        assert_eq!(units.len(), 4);
        let mut workloads: Vec<f64> = units.iter().map(|u| u.workload).collect();
        workloads.sort_by(f64::total_cmp);
        assert_eq!(workloads, vec![1.0, 3.0, 3.0, 3.0]);
        // The three sub-units are prefixes of length 2 rooted at v3.
        let subs: Vec<_> = units.iter().filter(|u| u.prefix.len() == 2).collect();
        assert_eq!(subs.len(), 3);
        assert!(subs.iter().all(|u| u.prefix[0] == vid(3)));
    }

    #[test]
    fn static_assignment_would_cap_speedup() {
        // §4.3: assigning EC2 to one worker caps the speedup at 10/9 ≈ 1.11.
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let biggest = ceci.pivots().iter().map(|&(_, c)| c).max().unwrap();
        let total = ceci.total_cardinality();
        let max_speedup = total as f64 / biggest as f64;
        assert!((max_speedup - 10.0 / 9.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod tests {
    use super::paper;

    #[test]
    fn figure1_shapes() {
        let g = paper::data_graph();
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 24);
        let q = paper::query_graph();
        assert_eq!(q.num_vertices(), 5);
        assert_eq!(q.num_edges(), 6);
    }

    #[test]
    fn plan_uses_paper_configuration() {
        let (_, plan) = paper::figure1();
        assert_eq!(plan.root(), paper::u(1));
        assert_eq!(
            plan.matching_order(),
            &[
                paper::u(1),
                paper::u(2),
                paper::u(3),
                paper::u(4),
                paper::u(5)
            ]
        );
        // Tree edges (u1,u2), (u1,u3), (u2,u4), (u3,u5); NTEs (u2,u3), (u3,u4).
        let t = plan.tree();
        assert_eq!(t.parent(paper::u(4)), Some(paper::u(2)));
        assert_eq!(t.parent(paper::u(5)), Some(paper::u(3)));
        assert_eq!(plan.backward_nte(paper::u(3)), &[paper::u(2)]);
        assert_eq!(plan.backward_nte(paper::u(4)), &[paper::u(3)]);
    }

    #[test]
    fn labeled_query_is_rigid() {
        let (_, plan) = paper::figure1();
        assert!(plan.symmetry_complete());
        assert!(plan.symmetry_constraints().is_empty());
    }

    #[test]
    fn expected_embeddings_are_valid() {
        let g = paper::data_graph();
        let q = paper::query_graph();
        for emb in paper::expected_embeddings() {
            for (a, b) in q.edges() {
                assert!(
                    g.has_edge(emb[a.index()], emb[b.index()]),
                    "embedding {emb:?} missing edge for query edge ({a:?},{b:?})"
                );
            }
            for u in q.vertices() {
                assert!(q.labels(u).is_subset_of(g.labels(emb[u.index()])));
            }
        }
    }

    #[test]
    fn initial_root_candidates_are_v1_v2() {
        let (_, plan) = paper::figure1();
        assert_eq!(
            plan.initial_candidates(paper::u(1)),
            &[paper::v(1), paper::v(2)]
        );
    }
}
