//! ExtremeCluster detection and decomposition — Algorithm 3 (§4.3).
//!
//! Clusters whose cardinality exceeds `β × cardinality_exp` (the expected
//! workload per worker) would serialize the tail of a parallel run. They are
//! recursively split: the partial embedding grows by the next query node in
//! the matching order, each extension inheriting
//! `cardinality(u_next, v′) / total × cardinality(u, v)` of the parent's
//! workload, until every work unit fits under the threshold. Units are
//! sorted largest-first so big work is scheduled early (§4.3).

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::enumerate::{EnumOptions, Enumerator};
use crate::index::Ceci;
use crate::metrics::Counters;

/// One schedulable unit: a consistent partial embedding over
/// `matching_order[0..prefix.len()]` plus its estimated workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkUnit {
    /// Images of the first `len` matching-order nodes.
    pub prefix: Vec<VertexId>,
    /// Estimated workload (cardinality share).
    pub workload: f64,
}

/// Decomposes the pivot clusters into work units for `workers` workers with
/// threshold factor `beta` (the paper fixes β = 0.2 in §6.3).
///
/// Every returned unit has workload ≤ `β × total/workers` unless it is a
/// full embedding already or cannot be split further. Units are sorted by
/// descending workload.
pub fn decompose(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    workers: usize,
    beta: f64,
) -> Vec<WorkUnit> {
    decompose_with(graph, plan, ceci, workers, beta, EnumOptions::default())
}

/// [`decompose`] with explicit enumeration options — the splitter expands
/// prefixes with the same kernel/verify configuration the workers will use,
/// so its intersection-op accounting matches the run it feeds.
pub fn decompose_with(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    workers: usize,
    beta: f64,
    options: EnumOptions,
) -> Vec<WorkUnit> {
    assert!(workers >= 1, "need at least one worker");
    assert!(beta > 0.0, "beta must be positive");
    let total: f64 = ceci.pivots().iter().map(|&(_, c)| c as f64).sum();
    let threshold = beta * total / workers as f64;
    let mut units = Vec::new();
    let mut enumerator = Enumerator::new(graph, plan, ceci, options);
    let mut counters = Counters::default();
    let n = plan.query().num_vertices();
    for &(pivot, card) in ceci.pivots() {
        if card == 0 {
            continue;
        }
        expand(
            &mut enumerator,
            plan,
            ceci,
            vec![pivot],
            card as f64,
            threshold,
            n,
            &mut units,
            &mut counters,
        );
    }
    units.sort_by(|a, b| b.workload.total_cmp(&a.workload));
    units
}

#[allow(clippy::too_many_arguments)]
fn expand(
    enumerator: &mut Enumerator<'_>,
    plan: &QueryPlan,
    ceci: &Ceci,
    prefix: Vec<VertexId>,
    workload: f64,
    threshold: f64,
    n: usize,
    units: &mut Vec<WorkUnit>,
    counters: &mut Counters,
) {
    if workload <= threshold || prefix.len() >= n {
        units.push(WorkUnit { prefix, workload });
        return;
    }
    let u_next = plan.matching_order()[prefix.len()];
    let matching = enumerator.matching_nodes_after_prefix(&prefix, counters);
    if matching.is_empty() {
        return; // dead prefix: contributes no embeddings
    }
    let cards: Vec<f64> = matching
        .iter()
        .map(|&v| ceci.cardinality(u_next, v) as f64)
        .collect();
    let total: f64 = cards.iter().sum();
    if total <= 0.0 {
        // All extensions have zero cardinality estimates (possible when
        // refinement removals were disabled); keep the unit whole.
        units.push(WorkUnit { prefix, workload });
        return;
    }
    for (v, card) in matching.into_iter().zip(cards) {
        let my_work = workload * card / total;
        if my_work <= 0.0 {
            continue;
        }
        let mut child = prefix.clone();
        child.push(v);
        if my_work > threshold && child.len() < n {
            expand(
                enumerator, plan, ceci, child, my_work, threshold, n, units, counters,
            );
        } else {
            units.push(WorkUnit {
                prefix: child,
                workload: my_work,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::collect_embeddings;
    use crate::fixtures::paper;
    use crate::sink::{canonicalize, CollectSink};
    use ceci_query::{PaperQuery, QueryPlan};

    #[test]
    fn units_cover_all_embeddings() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let units = decompose(&graph, &plan, &ceci, 2, 0.2);
        assert!(!units.is_empty());
        // Enumerate every unit and compare to the sequential result.
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        let mut counters = Counters::default();
        let mut sink = CollectSink::unbounded();
        for unit in &units {
            e.enumerate_prefix(&unit.prefix, &mut sink, &mut counters);
        }
        assert_eq!(
            canonicalize(sink.into_embeddings()),
            collect_embeddings(&graph, &plan, &ceci)
        );
    }

    #[test]
    fn units_sorted_descending() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let units = decompose(&graph, &plan, &ceci, 2, 0.2);
        for w in units.windows(2) {
            assert!(w[0].workload >= w[1].workload);
        }
    }

    #[test]
    fn small_beta_splits_finer() {
        // A skewed unlabeled graph: one hub triangle fan.
        let mut edges = Vec::new();
        for i in 1..=20u32 {
            edges.push((0, i));
        }
        for i in 1..20u32 {
            edges.push((i, i + 1));
        }
        let graph = Graph::unlabeled(
            21,
            &edges
                .iter()
                .map(|&(a, b)| (ceci_graph::vid(a), ceci_graph::vid(b)))
                .collect::<Vec<_>>(),
        );
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        // A huge β treats nothing as extreme (whole clusters, prefix len 1);
        // a small β splits the hub's ExtremeCluster into deeper prefixes.
        let coarse = decompose(&graph, &plan, &ceci, 4, 1000.0);
        let fine = decompose(&graph, &plan, &ceci, 4, 0.1);
        assert!(coarse.iter().all(|u| u.prefix.len() == 1));
        assert!(
            fine.iter().any(|u| u.prefix.len() >= 2),
            "small beta should split clusters into sub-cluster prefixes"
        );
        // Both decompositions enumerate the same embeddings.
        let count = |units: &[WorkUnit]| {
            let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
            let mut c = Counters::default();
            let mut sink = CollectSink::unbounded();
            for u in units {
                e.enumerate_prefix(&u.prefix, &mut sink, &mut c);
            }
            canonicalize(sink.into_embeddings())
        };
        assert_eq!(count(&coarse), count(&fine));
        assert_eq!(count(&fine), collect_embeddings(&graph, &plan, &ceci));
    }

    #[test]
    fn unit_workloads_respect_threshold_or_are_leaves() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let workers = 2;
        let beta = 0.2;
        let total: f64 = ceci.pivots().iter().map(|&(_, c)| c as f64).sum();
        let threshold = beta * total / workers as f64;
        let n = plan.query().num_vertices();
        for u in decompose(&graph, &plan, &ceci, workers, beta) {
            assert!(
                u.workload <= threshold + 1e-9 || u.prefix.len() == n,
                "oversized non-leaf unit {u:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn zero_beta_rejected() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let _ = decompose(&graph, &plan, &ceci, 2, 0.0);
    }
}
