//! Embedding enumeration over CECI (§4).
//!
//! Each embedding cluster is searched by backtracking along the matching
//! order. For query node `u` with tree parent `u_p`, the candidate list is
//! `TE_Candidates[u][f(u_p)]`; every backward non-tree edge `(u_n, u)`
//! intersects in `NTE_Candidates[u][f(u_n)]`. The surviving *matching nodes*
//! are then checked for injectivity and symmetry-breaking bounds and the
//! search recurses.
//!
//! The edge-verification mode (§4.1's comparison point) skips the NTE
//! intersection and instead verifies each candidate's non-tree edges against
//! the data graph — the strategy of TurboIso/CFLMatch-style engines.

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;
use ceci_trace::DepthProfile;

use std::sync::Arc;

use crate::bitmap::VertexBitmap;
use crate::index::Ceci;
use crate::intersect::{intersect_many_with, Kernel};
use crate::metrics::Counters;
use crate::sink::{CancelToken, EmbeddingSink};

/// How many recursive calls pass between cooperative cancellation checks.
/// A power of two so the check compiles to a mask test; small enough that a
/// timed-out request unwinds in microseconds, large enough that the deadline
/// clock stays off the hot path (one `Instant::now()` per 64 calls).
const CANCEL_CHECK_MASK: u64 = 0x3F;

/// How many *candidates* pass between cooperative cancellation checks inside
/// a candidate drain. The per-call check above is useless against one
/// pathological high-degree pivot whose TE list holds millions of vertices:
/// the recursion enters once and then spends the whole deadline inside a
/// single drain loop. Checking every 256 drained candidates bounds the
/// overshoot to microseconds while keeping the clock off the common path
/// (the tick only advances when a token is attached).
const DRAIN_CHECK_MASK: u64 = 0xFF;

/// How non-tree edges are checked during enumeration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyMode {
    /// Set intersection between TE and NTE candidate lists (the paper's
    /// contribution, Lemma 2).
    #[default]
    Intersection,
    /// Adjacency-list edge verification against the data graph (the
    /// baseline CECI is compared to in §4.1).
    EdgeVerification,
}

/// Options for an enumeration run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnumOptions {
    /// Non-tree edge strategy.
    pub verify: VerifyMode,
    /// Intersection kernel used for NTE conjunctions (§4.1 ablation knob).
    pub kernel: Kernel,
    /// BFS-filter worker pool width for callers that build the index as
    /// part of the run (forwarded to [`crate::BuildOptions::threads`]);
    /// `0`/`1` builds on the calling thread. Enumeration itself ignores it.
    pub build_threads: usize,
    /// CEMR-style redundant-extension elimination: when the last matching-
    /// order vertex's candidate set is provably independent of the sibling
    /// chosen at the penultimate depth (no tree edge, backward NTE, or
    /// symmetry constraint between them), the leaf set is computed once per
    /// penultimate expansion and every sibling is answered with a
    /// membership-corrected bulk count instead of a recursive re-gather.
    /// Embedding counts are bit-identical; work counters legitimately
    /// shrink. Only takes effect for counting sinks (bulk-capable) under
    /// [`VerifyMode::Intersection`]. Off by default.
    pub prune_redundant: bool,
}

/// Reusable per-worker scratch state for cluster enumeration.
///
/// All scratch is allocated once in [`Enumerator::new`] and reused for every
/// cluster / work unit the enumerator processes: the steady-state recursion
/// performs no heap allocation.
pub struct Enumerator<'a> {
    graph: &'a Graph,
    plan: &'a QueryPlan,
    ceci: &'a Ceci,
    options: EnumOptions,
    /// `mapping[u] = Some(v)` for assigned query vertices.
    mapping: Vec<Option<VertexId>>,
    /// Data vertices currently used by the partial embedding — a dense
    /// bitmap over the data-graph universe, O(1) per check with no hashing.
    used: VertexBitmap,
    /// Per-depth candidate buffers (avoids re-allocating during recursion).
    buffers: Vec<Vec<VertexId>>,
    /// Reusable NTE-list gather buffer (cleared, never dropped).
    nte_lists: Vec<&'a [VertexId]>,
    scratch: Vec<VertexId>,
    emission: Vec<VertexId>,
    /// Cooperative cancellation token, polled every [`CANCEL_CHECK_MASK`]+1
    /// recursive calls (per-request deadlines in the serving layer).
    cancel: Option<Arc<CancelToken>>,
    /// Candidates drained since the last in-drain cancellation poll; only
    /// advances while a token is attached (see [`DRAIN_CHECK_MASK`]).
    drain_tick: u64,
    /// Optional per-depth profile. Preallocated from the matching-order
    /// length in [`Enumerator::enable_profile`], so attribution inside the
    /// recursion is pure integer arithmetic plus one stride-sampled clock
    /// read — zero allocations in the steady state, and it never touches
    /// [`Counters`], so all exact counters stay bit-identical with
    /// profiling on or off.
    profile: Option<Box<DepthProfile>>,
    /// Precomputed per-plan eligibility for leaf-level redundant-extension
    /// elimination (see [`EnumOptions::prune_redundant`]): true iff pruning
    /// is requested AND the last matching-order vertex's candidate gather
    /// cannot depend on the penultimate vertex's image.
    prune_leaf: bool,
    /// Per-depth intersection-kernel pins from the adaptive planner's
    /// profile feedback. Empty (the default) means every depth dispatches
    /// through `options.kernel`; otherwise `depth_kernels[d]` overrides the
    /// kernel for intersections gathered at depth `d`.
    depth_kernels: Vec<Kernel>,
}

impl<'a> Enumerator<'a> {
    /// Creates an enumerator for `(graph, plan, ceci)`.
    pub fn new(
        graph: &'a Graph,
        plan: &'a QueryPlan,
        ceci: &'a Ceci,
        options: EnumOptions,
    ) -> Self {
        let n = plan.query().num_vertices();
        let max_nte = plan
            .query()
            .vertices()
            .map(|u| ceci.nte(u).len())
            .max()
            .unwrap_or(0);
        let prune_leaf = options.prune_redundant
            && options.verify == VerifyMode::Intersection
            && leaf_gather_is_sibling_independent(plan);
        Enumerator {
            graph,
            plan,
            ceci,
            options,
            mapping: vec![None; n],
            used: VertexBitmap::new(graph.num_vertices()),
            buffers: (0..n).map(|_| Vec::new()).collect(),
            nte_lists: Vec::with_capacity(max_nte),
            scratch: Vec::new(),
            emission: vec![VertexId(0); n],
            cancel: None,
            drain_tick: 0,
            profile: None,
            prune_leaf,
            depth_kernels: Vec::new(),
        }
    }

    /// Pins an intersection kernel per matching-order depth (adaptive
    /// planner feedback). Pass an empty slice to clear the pins and fall
    /// back to the global `options.kernel` dispatch. Kernel choice affects
    /// only how intersections are computed, never their result.
    pub fn set_depth_kernels(&mut self, pins: &[Kernel]) {
        self.depth_kernels.clear();
        self.depth_kernels.extend_from_slice(pins);
    }

    /// The kernel to dispatch for intersections at `depth`.
    #[inline]
    fn kernel_at(&self, depth: usize) -> Kernel {
        self.depth_kernels
            .get(depth)
            .copied()
            .unwrap_or(self.options.kernel)
    }

    /// Whether this enumerator will apply leaf-level redundant-extension
    /// elimination (plan-dependent; requires a bulk-capable sink at run
    /// time).
    pub fn prunes_redundant_extensions(&self) -> bool {
        self.prune_leaf
    }

    /// Attaches a cooperative [`CancelToken`]: the recursion polls it
    /// periodically and unwinds (as if the sink had requested a stop) once it
    /// trips. Pass `None` to detach.
    pub fn set_cancel(&mut self, token: Option<Arc<CancelToken>>) {
        self.cancel = token;
    }

    /// Attaches a fresh per-depth profile preallocated from the matching
    /// order (one [`ceci_trace::DepthStat`] slot per query node). The
    /// recursion then attributes exact candidate fan-out / intersection-op /
    /// backtrack counts and stride-sampled wall time to each depth without
    /// allocating.
    pub fn enable_profile(&mut self) {
        let mut p = Box::new(DepthProfile::new(self.plan.matching_order().len()));
        p.arm_clock();
        self.profile = Some(p);
    }

    /// Attaches (or detaches, with `None`) an existing profile — used by the
    /// parallel loops to keep one preallocated profile per worker.
    pub fn set_profile(&mut self, profile: Option<Box<DepthProfile>>) {
        self.profile = profile;
        if let Some(p) = self.profile.as_deref_mut() {
            p.arm_clock();
        }
    }

    /// Detaches and returns the accumulated profile, if any.
    pub fn take_profile(&mut self) -> Option<Box<DepthProfile>> {
        self.profile.take()
    }

    /// The attached profile, if any.
    pub fn profile(&self) -> Option<&DepthProfile> {
        self.profile.as_deref()
    }

    /// In-drain cooperative cancellation poll: advances the drain tick and
    /// checks the token every [`DRAIN_CHECK_MASK`]+1 candidates. Costs one
    /// predictable branch when no token is attached.
    #[inline]
    fn drain_cancelled(&mut self) -> bool {
        if let Some(token) = &self.cancel {
            self.drain_tick = self.drain_tick.wrapping_add(1);
            if self.drain_tick & DRAIN_CHECK_MASK == 0 {
                return token.is_cancelled();
            }
        }
        false
    }

    /// Enumerates all embeddings in the cluster of `pivot`. Returns `false`
    /// if the sink requested a stop.
    pub fn enumerate_cluster<S: EmbeddingSink>(
        &mut self,
        pivot: VertexId,
        sink: &mut S,
        counters: &mut Counters,
    ) -> bool {
        self.enumerate_prefix(&[pivot], sink, counters)
    }

    /// Cancellation-safe counting variant of
    /// [`Enumerator::enumerate_cluster`]: enumerates the cluster of `pivot`
    /// into a fresh unbounded count sink and returns `Some(count)` only
    /// when enumeration ran to completion. If the attached [`CancelToken`]
    /// tripped mid-cluster the partial count is *discarded* (`None`) — the
    /// caller can re-execute the cluster elsewhere without ever mixing a
    /// partial tally into an exactly-once total. This is the draining
    /// primitive the distributed fault-recovery path is built on.
    pub fn enumerate_cluster_checked(
        &mut self,
        pivot: VertexId,
        counters: &mut Counters,
    ) -> Option<u64> {
        let mut sink = crate::sink::CountSink::unbounded();
        let completed = self.enumerate_cluster(pivot, &mut sink, counters);
        completed.then(|| sink.count())
    }

    /// Enumerates all embeddings extending a work-unit `prefix`: images of
    /// `matching_order[0..prefix.len()]` in order. Returns `false` if the
    /// sink requested a stop.
    ///
    /// The prefix is trusted to be internally consistent (work units are
    /// produced by [`crate::extreme::decompose`], which applies the same
    /// checks enumeration would).
    pub fn enumerate_prefix<S: EmbeddingSink>(
        &mut self,
        prefix: &[VertexId],
        sink: &mut S,
        counters: &mut Counters,
    ) -> bool {
        let order = self.plan.matching_order();
        assert!(!prefix.is_empty() && prefix.len() <= order.len());
        debug_assert!(
            prefix
                .iter()
                .enumerate()
                .all(|(i, v)| !prefix[..i].contains(v)),
            "work-unit prefix must map distinct data vertices"
        );
        for (i, &v) in prefix.iter().enumerate() {
            self.mapping[order[i].index()] = Some(v);
            self.used.insert(v);
        }
        let keep_going = if prefix.len() == order.len() {
            counters.embeddings += 1;
            self.emit(sink)
        } else {
            self.search(prefix.len(), sink, counters)
        };
        for (i, &v) in prefix.iter().enumerate() {
            self.mapping[order[i].index()] = None;
            self.used.remove(v);
        }
        keep_going
    }

    /// Recursive backtracking search at `depth` in the matching order.
    fn search<S: EmbeddingSink>(
        &mut self,
        depth: usize,
        sink: &mut S,
        counters: &mut Counters,
    ) -> bool {
        counters.recursive_calls += 1;
        // Cooperative cancellation: poll the shared token periodically so a
        // deadline-exceeded request unwinds in bounded time without paying a
        // clock read on every call.
        if counters.recursive_calls & CANCEL_CHECK_MASK == 0 {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return false;
                }
            }
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.on_call(depth);
        }
        // Detach the reference fields from `self` so candidate lists borrowed
        // from the index don't pin the whole enumerator.
        let (graph, plan, ceci) = (self.graph, self.plan, self.ceci);
        let order = plan.matching_order();
        let u = order[depth];
        let parent = plan.tree().parent(u).expect("non-root nodes have parents");
        let parent_image = self.mapping[parent.index()].expect("parent is assigned");
        let Some(te_list) = ceci.te(u).and_then(|t| t.get(parent_image)) else {
            return true; // no candidates under this parent image
        };

        // Gather matching nodes into this depth's buffer.
        let mut buffer = std::mem::take(&mut self.buffers[depth]);
        let ops_before = counters.intersection_ops;
        let mut gather_cancelled = false;
        match self.options.verify {
            VerifyMode::Intersection => {
                let nte_tables = ceci.nte(u);
                // Collect the NTE lists keyed by the current images into the
                // reusable gather buffer (no allocation in steady state).
                let mut lists = std::mem::take(&mut self.nte_lists);
                lists.clear();
                let mut dead = false;
                for (un, table) in nte_tables {
                    let image = self.mapping[un.index()].expect("NTE parent assigned earlier");
                    match table.get(image) {
                        Some(list) => lists.push(list),
                        None => {
                            dead = true;
                            break;
                        }
                    }
                }
                if dead {
                    buffer.clear();
                } else {
                    intersect_many_with(
                        self.kernel_at(depth),
                        te_list,
                        &lists,
                        &mut buffer,
                        &mut self.scratch,
                        &mut counters.intersection_ops,
                    );
                }
                self.nte_lists = lists;
            }
            VerifyMode::EdgeVerification => {
                buffer.clear();
                'cand: for &v in te_list {
                    // A single huge TE list can hold the recursion here for
                    // the rest of the deadline; poll inside the gather too.
                    if self.drain_cancelled() {
                        gather_cancelled = true;
                        break 'cand;
                    }
                    for un in plan.backward_nte(u) {
                        let image = self.mapping[un.index()].expect("NTE parent assigned");
                        counters.edge_verifications += 1;
                        if !graph.has_edge(v, image) {
                            continue 'cand;
                        }
                    }
                    buffer.push(v);
                }
            }
        }

        if let Some(p) = self.profile.as_deref_mut() {
            p.on_expand(
                depth,
                buffer.len() as u64,
                counters.intersection_ops - ops_before,
            );
        }
        if gather_cancelled {
            self.buffers[depth] = buffer;
            return false;
        }

        // Leaf-level redundant-extension elimination: every sibling drained
        // below would recurse into the last depth and gather the *same*
        // candidate set (independence established per plan in `new`). Gather
        // and filter it once against the shared prefix; each sibling's count
        // is then the base count minus its own membership (the only part of
        // the leaf filter that varies across siblings is injectivity against
        // the sibling itself).
        let leaf: Option<Vec<VertexId>> = (self.prune_leaf
            && depth + 2 == order.len()
            && sink.supports_bulk()
            && !buffer.is_empty())
        .then(|| self.gather_leaf(counters));

        let mut keep_going = true;
        let last = depth + 1 == order.len();
        // Batched profile attribution: the drain loop below is the hottest
        // code in the engine, so per-candidate profile hooks would deref the
        // boxed profile millions of times. Accumulate in stack locals and
        // flush once after the loop (on every exit path).
        let mut emitted_here = 0u64;
        let mut backtracks_here = 0u64;
        let mut leaf_emitted = 0u64;
        let mut leaf_reused = 0u64;
        let mut bulk_answered = 0u64;
        for &v in &buffer {
            // In-drain cancellation poll: the intersection above may have
            // produced millions of candidates for one pathological pivot,
            // and the per-call poll would not fire again until the *next*
            // recursive call.
            if self.drain_cancelled() {
                keep_going = false;
                break;
            }
            if self.used.contains(v) {
                counters.injectivity_rejections += 1;
                continue;
            }
            if !plan.satisfies_symmetry(u, v, &self.mapping) {
                counters.symmetry_rejections += 1;
                continue;
            }
            self.mapping[u.index()] = Some(v);
            self.used.insert(v);
            keep_going = if last {
                counters.embeddings += 1;
                emitted_here += 1;
                self.emit(sink)
            } else if let Some(accepted) = &leaf {
                // The sibling itself is the only accepted leaf candidate
                // its subtree must exclude (injectivity); everything else
                // in the accepted set completes an embedding.
                let sub = accepted.len() as u64 - u64::from(accepted.binary_search(&v).is_ok());
                counters.embeddings += sub;
                leaf_emitted += sub;
                if bulk_answered > 0 {
                    counters.reused_subtrees += 1;
                    leaf_reused += 1;
                }
                bulk_answered += 1;
                sink.emit_bulk(sub)
            } else {
                self.search(depth + 1, sink, counters)
            };
            self.mapping[u.index()] = None;
            self.used.remove(v);
            backtracks_here += 1;
            if !keep_going {
                break;
            }
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.on_drain(depth, emitted_here, backtracks_here);
            if leaf.is_some() {
                p.on_drain(depth + 1, leaf_emitted, 0);
                p.on_reuse(depth + 1, leaf_reused);
            }
        }
        if let Some(accepted) = leaf {
            // Return the leaf buffer to its slot for reuse.
            self.buffers[depth + 1] = accepted;
        }
        self.buffers[depth] = buffer;
        keep_going
    }

    /// Gathers and prefix-filters the last depth's candidate set once for
    /// leaf-level redundant-extension elimination. Only called when the
    /// plan guarantees the gather is independent of the penultimate
    /// sibling's image (see [`leaf_gather_is_sibling_independent`]). The
    /// returned set is sorted (intersection outputs are sorted and `retain`
    /// preserves order), so per-sibling membership is a binary search.
    fn gather_leaf(&mut self, counters: &mut Counters) -> Vec<VertexId> {
        let (plan, ceci) = (self.plan, self.ceci);
        let order = plan.matching_order();
        let depth = order.len() - 1;
        let u = order[depth];
        let parent = plan.tree().parent(u).expect("non-root nodes have parents");
        let parent_image = self.mapping[parent.index()]
            .expect("leaf parent is assigned before the penultimate depth");
        let mut buffer = std::mem::take(&mut self.buffers[depth]);
        buffer.clear();
        let ops_before = counters.intersection_ops;
        if let Some(te_list) = ceci.te(u).and_then(|t| t.get(parent_image)) {
            let mut lists = std::mem::take(&mut self.nte_lists);
            lists.clear();
            let mut dead = false;
            for (un, table) in ceci.nte(u) {
                let image = self.mapping[un.index()].expect("NTE parent assigned earlier");
                match table.get(image) {
                    Some(list) => lists.push(list),
                    None => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                intersect_many_with(
                    self.kernel_at(depth),
                    te_list,
                    &lists,
                    &mut buffer,
                    &mut self.scratch,
                    &mut counters.intersection_ops,
                );
            }
            self.nte_lists = lists;
        }
        let raw = buffer.len() as u64;
        // Injectivity + symmetry against the shared prefix only — the
        // sibling is not yet mapped, and by construction neither check can
        // depend on it (its own exclusion is the per-sibling membership
        // correction in the drain loop).
        let (used, mapping) = (&self.used, &self.mapping);
        buffer.retain(|&w| {
            if used.contains(w) {
                counters.injectivity_rejections += 1;
                return false;
            }
            if !plan.satisfies_symmetry(u, w, mapping) {
                counters.symmetry_rejections += 1;
                return false;
            }
            true
        });
        if let Some(p) = self.profile.as_deref_mut() {
            p.on_expand(depth, raw, counters.intersection_ops - ops_before);
        }
        buffer
    }

    fn emit<S: EmbeddingSink>(&mut self, sink: &mut S) -> bool {
        for u in 0..self.mapping.len() {
            self.emission[u] = self.mapping[u].expect("embedding is complete");
        }
        sink.emit(&self.emission)
    }

    /// Computes the matching nodes of the *next* query node after a valid
    /// prefix — the expansion step shared with ExtremeCluster decomposition
    /// (Algorithm 3 line 13). Returns candidates that also pass injectivity
    /// and symmetry for this prefix.
    pub fn matching_nodes_after_prefix(
        &mut self,
        prefix: &[VertexId],
        counters: &mut Counters,
    ) -> Vec<VertexId> {
        let (plan, ceci) = (self.plan, self.ceci);
        let order = plan.matching_order();
        assert!(!prefix.is_empty() && prefix.len() < order.len());
        for (i, &v) in prefix.iter().enumerate() {
            self.mapping[order[i].index()] = Some(v);
            self.used.insert(v);
        }
        let u = order[prefix.len()];
        let parent = plan.tree().parent(u).expect("non-root");
        let parent_image = self.mapping[parent.index()].unwrap();
        let mut out = Vec::new();
        if let Some(te_list) = ceci.te(u).and_then(|t| t.get(parent_image)) {
            let mut ok = true;
            let mut lists = std::mem::take(&mut self.nte_lists);
            lists.clear();
            for (un, table) in ceci.nte(u) {
                let image = self.mapping[un.index()].unwrap();
                match table.get(image) {
                    Some(list) => lists.push(list),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                intersect_many_with(
                    self.kernel_at(prefix.len()),
                    te_list,
                    &lists,
                    &mut out,
                    &mut self.scratch,
                    &mut counters.intersection_ops,
                );
                let (used, mapping) = (&self.used, &self.mapping);
                out.retain(|&v| !used.contains(v) && plan.satisfies_symmetry(u, v, mapping));
            }
            self.nte_lists = lists;
        }
        for (i, &v) in prefix.iter().enumerate() {
            self.mapping[order[i].index()] = None;
            self.used.remove(v);
        }
        out
    }
}

/// Static per-plan eligibility test for leaf-level redundant-extension
/// elimination (CEMR-style): the last matching-order vertex's candidate
/// gather is independent of the image chosen at the penultimate depth iff
/// the penultimate vertex is neither the leaf's tree parent, nor one of its
/// backward NTE sources, nor its partner in a symmetry constraint. Under
/// those conditions every sibling drained at the penultimate depth induces
/// the *same* leaf candidate set (up to injectivity against the sibling
/// itself), so the set can be gathered once and each sibling answered with
/// a membership-corrected bulk count.
fn leaf_gather_is_sibling_independent(plan: &QueryPlan) -> bool {
    let order = plan.matching_order();
    let n = order.len();
    if n < 3 {
        return false;
    }
    let u_last = order[n - 1];
    let u_pen = order[n - 2];
    if plan.tree().parent(u_last) == Some(u_pen) {
        return false;
    }
    if plan.backward_nte(u_last).contains(&u_pen) {
        return false;
    }
    !plan.symmetry_constraints().iter().any(|c| {
        (c.smaller == u_last && c.larger == u_pen) || (c.smaller == u_pen && c.larger == u_last)
    })
}

/// Enumerates all clusters sequentially (pivot order). Returns the counters;
/// stops early if the sink requests it.
pub fn enumerate_sequential<S: EmbeddingSink>(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: EnumOptions,
    sink: &mut S,
) -> Counters {
    let mut counters = Counters::default();
    let mut e = Enumerator::new(graph, plan, ceci, options);
    for &(pivot, _card) in ceci.pivots() {
        if !e.enumerate_cluster(pivot, sink, &mut counters) {
            break;
        }
    }
    counters
}

/// Convenience: count all embeddings sequentially.
pub fn count_embeddings(graph: &Graph, plan: &QueryPlan, ceci: &Ceci) -> u64 {
    let mut sink = crate::sink::CountSink::unbounded();
    enumerate_sequential(graph, plan, ceci, EnumOptions::default(), &mut sink);
    sink.count()
}

/// Convenience: collect all embeddings sequentially, canonically sorted.
pub fn collect_embeddings(graph: &Graph, plan: &QueryPlan, ceci: &Ceci) -> Vec<Vec<VertexId>> {
    let mut sink = crate::sink::CollectSink::unbounded();
    enumerate_sequential(graph, plan, ceci, EnumOptions::default(), &mut sink);
    crate::sink::canonicalize(sink.into_embeddings())
}

/// Checks a reported embedding against the query (used by tests and the
/// correctness harness): label containment, edge preservation, injectivity,
/// and symmetry constraints.
pub fn is_valid_embedding(graph: &Graph, plan: &QueryPlan, embedding: &[VertexId]) -> bool {
    let query = plan.query();
    if embedding.len() != query.num_vertices() {
        return false;
    }
    let mut seen = std::collections::HashSet::new();
    for u in query.vertices() {
        let v = embedding[u.index()];
        if !seen.insert(v) {
            return false;
        }
        if !query.labels(u).is_subset_of(graph.labels(v)) {
            return false;
        }
    }
    for &(a, b) in query.edges() {
        if !graph.has_edge(embedding[a.index()], embedding[b.index()]) {
            return false;
        }
    }
    plan.symmetry_constraints()
        .iter()
        .all(|c| embedding[c.smaller.index()] < embedding[c.larger.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper;
    use crate::index::BuildOptions;
    use crate::sink::{canonicalize, CollectSink, CountSink};

    fn setup() -> (Graph, QueryPlan, Ceci) {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        (graph, plan, ceci)
    }

    #[test]
    fn figure1_embeddings_found() {
        let (graph, plan, ceci) = setup();
        let found = collect_embeddings(&graph, &plan, &ceci);
        assert_eq!(found, canonicalize(paper::expected_embeddings()));
    }

    #[test]
    fn all_reported_embeddings_valid() {
        let (graph, plan, ceci) = setup();
        for emb in collect_embeddings(&graph, &plan, &ceci) {
            assert!(is_valid_embedding(&graph, &plan, &emb));
        }
    }

    #[test]
    fn edge_verification_mode_agrees() {
        let (graph, plan) = paper::figure1();
        // Build without NTE tables — enumeration must fall back to edge
        // verification and still find both embeddings.
        let ceci = Ceci::build_with(
            &graph,
            &plan,
            BuildOptions {
                build_nte: false,
                refine: true,
                ..BuildOptions::default()
            },
        );
        let mut sink = CollectSink::unbounded();
        let counters = enumerate_sequential(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                verify: VerifyMode::EdgeVerification,
                ..Default::default()
            },
            &mut sink,
        );
        assert_eq!(
            canonicalize(sink.into_embeddings()),
            canonicalize(paper::expected_embeddings())
        );
        assert!(counters.edge_verifications > 0);
        assert_eq!(counters.intersection_ops, 0);
    }

    #[test]
    fn intersection_mode_does_no_edge_verification() {
        let (graph, plan, ceci) = setup();
        let mut sink = CountSink::unbounded();
        let counters =
            enumerate_sequential(&graph, &plan, &ceci, EnumOptions::default(), &mut sink);
        assert_eq!(counters.edge_verifications, 0);
        assert!(counters.intersection_ops > 0);
        assert_eq!(counters.embeddings, 2);
        assert_eq!(sink.count(), 2);
    }

    #[test]
    fn first_k_stops_early() {
        let (graph, plan, ceci) = setup();
        let mut sink = CountSink::with_limit(1);
        enumerate_sequential(&graph, &plan, &ceci, EnumOptions::default(), &mut sink);
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn prefix_enumeration_matches_cluster() {
        let (graph, plan, ceci) = setup();
        let mut counters = Counters::default();
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        // Prefix (v1, v3) should yield exactly the first embedding.
        let mut sink = CollectSink::unbounded();
        e.enumerate_prefix(&[paper::v(1), paper::v(3)], &mut sink, &mut counters);
        assert_eq!(
            sink.into_embeddings(),
            vec![vec![
                paper::v(1),
                paper::v(3),
                paper::v(4),
                paper::v(11),
                paper::v(12)
            ]]
        );
    }

    #[test]
    fn full_length_prefix_emits_directly() {
        let (graph, plan, ceci) = setup();
        let mut counters = Counters::default();
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        let mut sink = CountSink::unbounded();
        let emb = &paper::expected_embeddings()[0];
        // Matching order is u1..u5, so the prefix in order equals the
        // embedding by query id here.
        assert!(e.enumerate_prefix(emb, &mut sink, &mut counters));
        assert_eq!(sink.count(), 1);
    }

    #[test]
    fn matching_nodes_after_prefix_matches_paper() {
        let (graph, plan, ceci) = setup();
        let mut counters = Counters::default();
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        // After (v1): matching nodes for u2 are {v3, v5}.
        assert_eq!(
            e.matching_nodes_after_prefix(&[paper::v(1)], &mut counters),
            vec![paper::v(3), paper::v(5)]
        );
        // After (v1, v3): u3 must be {v4} (TE {v4,v6} ∩ NTE[v3] {v4}).
        assert_eq!(
            e.matching_nodes_after_prefix(&[paper::v(1), paper::v(3)], &mut counters),
            vec![paper::v(4)]
        );
    }

    #[test]
    fn validity_checker_rejects_bad_embeddings() {
        let (graph, plan, _) = setup();
        // Wrong length.
        assert!(!is_valid_embedding(&graph, &plan, &[paper::v(1)]));
        // Duplicate vertex.
        let dup = vec![paper::v(1); 5];
        assert!(!is_valid_embedding(&graph, &plan, &dup));
        // Label mismatch: map u1 (A) to a B vertex.
        let bad = vec![
            paper::v(3),
            paper::v(1),
            paper::v(4),
            paper::v(11),
            paper::v(12),
        ];
        assert!(!is_valid_embedding(&graph, &plan, &bad));
    }

    #[test]
    fn cancel_token_unwinds_mid_recursion() {
        use crate::sink::CancelToken;
        use ceci_graph::vid;
        use ceci_query::PaperQuery;

        // Hub fan with a consecutive ring: enough triangles that the search
        // makes well over CANCEL_CHECK_MASK recursive calls.
        let mut edges = Vec::new();
        for i in 1..=100u32 {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..100u32 {
            edges.push((vid(i), vid(i + 1)));
        }
        let graph = Graph::unlabeled(101, &edges);
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let total = count_embeddings(&graph, &plan, &ceci);

        let token = CancelToken::new();
        token.cancel();
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        e.set_cancel(Some(token));
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        let mut stopped = false;
        for &(pivot, _) in ceci.pivots() {
            if !e.enumerate_cluster(pivot, &mut sink, &mut counters) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "periodic check must trip inside the recursion");
        assert!(sink.count() < total);
    }

    #[test]
    fn drain_cancel_bounds_pathological_pivot() {
        use crate::sink::CancelToken;
        use ceci_graph::vid;
        use ceci_query::QueryGraph;
        use std::time::{Duration, Instant};

        // One hub with 200k leaves and a single-edge query: the hub cluster
        // is ONE recursive call whose candidate buffer holds every leaf, so
        // the per-call cancellation check never fires again — only the
        // in-drain stride check can stop it.
        const N: u32 = 20_000;
        let edges: Vec<_> = (1..=N).map(|i| (vid(0), vid(i))).collect();
        let graph = Graph::unlabeled((N + 1) as usize, &edges);
        let query = QueryGraph::unlabeled(2, &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let hub = ceci
            .pivots()
            .iter()
            .map(|&(p, _)| p)
            .find(|&p| p == vid(0))
            .expect("hub is a pivot");

        // Pre-expired deadline: the drain must stop within one stride.
        let token = CancelToken::after(Duration::ZERO);
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        e.set_cancel(Some(token));
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        let t0 = Instant::now();
        let keep_going = e.enumerate_cluster(hub, &mut sink, &mut counters);
        let overshoot = t0.elapsed();
        assert!(!keep_going, "expired deadline must stop the drain");
        assert!(
            sink.count() <= DRAIN_CHECK_MASK + 2,
            "drain must stop within one stride, emitted {}",
            sink.count()
        );
        assert!(
            overshoot < Duration::from_millis(10),
            "deadline overshoot {overshoot:?} ≥ 10ms"
        );
    }

    #[test]
    fn drain_cancel_stops_edge_verification_gather() {
        use crate::sink::CancelToken;
        use ceci_graph::vid;
        use ceci_query::PaperQuery;

        // Hub fan + ring without NTE tables: the gather loop verifies edges
        // for every TE candidate and must poll the token while doing so.
        let mut edges = Vec::new();
        for i in 1..=2000u32 {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..2000u32 {
            edges.push((vid(i), vid(i + 1)));
        }
        let graph = Graph::unlabeled(2001, &edges);
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build_with(
            &graph,
            &plan,
            BuildOptions {
                build_nte: false,
                refine: true,
                ..BuildOptions::default()
            },
        );
        let token = CancelToken::new();
        token.cancel();
        let mut e = Enumerator::new(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                verify: VerifyMode::EdgeVerification,
                ..Default::default()
            },
        );
        e.set_cancel(Some(token));
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        let mut stopped = false;
        for &(pivot, _) in ceci.pivots() {
            if !e.enumerate_cluster(pivot, &mut sink, &mut counters) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "gather loop must observe the cancelled token");
    }

    #[test]
    fn profile_attribution_is_exact_and_free() {
        let (graph, plan, ceci) = setup();

        // Baseline without a profile.
        let mut base_sink = CountSink::unbounded();
        let base =
            enumerate_sequential(&graph, &plan, &ceci, EnumOptions::default(), &mut base_sink);

        // Profiled run: counters must be bit-identical, and the per-depth
        // exact counters must sum to the global ones.
        let mut e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        e.enable_profile();
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        for &(pivot, _) in ceci.pivots() {
            assert!(e.enumerate_cluster(pivot, &mut sink, &mut counters));
        }
        assert_eq!(counters, base);
        assert_eq!(sink.count(), base_sink.count());

        let profile = e.take_profile().expect("profile attached");
        assert_eq!(profile.len(), plan.matching_order().len());
        assert_eq!(profile.total_intersections(), counters.intersection_ops);
        assert_eq!(profile.total_emitted(), counters.embeddings);
        // Depth 0 is seeded by the pivot prefix, not a recursive call.
        assert_eq!(profile.total_calls(), counters.recursive_calls);
        assert_eq!(profile.depths()[0].calls, 0);
    }

    fn count_with_options(
        graph: &Graph,
        plan: &QueryPlan,
        ceci: &Ceci,
        options: EnumOptions,
    ) -> (u64, Counters) {
        let mut sink = CountSink::unbounded();
        let counters = enumerate_sequential(graph, plan, ceci, options, &mut sink);
        (sink.count(), counters)
    }

    /// Labeled 2-leaf star (distinct leaf labels, so no symmetry constraint
    /// ties the last two matching-order vertices) over a data graph where
    /// each center fans out to several leaves of each label — the canonical
    /// eligible shape for leaf-level redundant-extension elimination.
    fn eligible_star() -> (Graph, QueryPlan, Ceci) {
        use ceci_graph::{lid, LabelSet};
        // Vertex 0,1: label A centers; 2..=4: label B; 5..=7: label C.
        let labels: Vec<LabelSet> = [0u32, 0, 1, 1, 1, 2, 2, 2]
            .iter()
            .map(|&l| LabelSet::single(lid(l)))
            .collect();
        let mut edges = Vec::new();
        for c in 0..2u32 {
            for leaf in 2..8u32 {
                edges.push((ceci_graph::vid(c), ceci_graph::vid(leaf)));
            }
        }
        let graph = Graph::new(labels, &edges, false);
        let query =
            ceci_query::QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (0, 2)])
                .unwrap();
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        (graph, plan, ceci)
    }

    #[test]
    fn redundant_pruning_counts_bit_identical_on_eligible_star() {
        let (graph, plan, ceci) = eligible_star();
        let (base_count, base) = count_with_options(&graph, &plan, &ceci, EnumOptions::default());
        let (pruned_count, pruned) = count_with_options(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                prune_redundant: true,
                ..Default::default()
            },
        );
        // 2 centers × 3 B-leaves × 3 C-leaves.
        assert_eq!(base_count, 18);
        assert_eq!(pruned_count, base_count);
        assert_eq!(pruned.embeddings, base.embeddings);
        assert!(
            pruned.reused_subtrees > 0,
            "eligible plan with fan-out must reuse sibling subtrees"
        );
        assert_eq!(base.reused_subtrees, 0);
        // The whole point: strictly less recursion.
        assert!(pruned.recursive_calls < base.recursive_calls);
    }

    #[test]
    fn redundant_pruning_eligibility_is_plan_dependent() {
        let (graph, plan, ceci) = eligible_star();
        let e = Enumerator::new(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                prune_redundant: true,
                ..Default::default()
            },
        );
        assert!(e.prunes_redundant_extensions());
        // Default off.
        let e = Enumerator::new(&graph, &plan, &ceci, EnumOptions::default());
        assert!(!e.prunes_redundant_extensions());
        // An unlabeled 2-leaf star has automorphic leaves: the symmetry
        // constraint between the last two order vertices makes the leaf
        // gather sibling-dependent, so pruning must stay off.
        let sym_query = ceci_query::QueryGraph::unlabeled(3, &[(0, 1), (0, 2)]).unwrap();
        let sym_plan = QueryPlan::new(sym_query, &graph);
        if sym_plan
            .symmetry_constraints()
            .iter()
            .any(|c| c.smaller != c.larger)
        {
            let sym_ceci = Ceci::build(&graph, &sym_plan);
            let e = Enumerator::new(
                &graph,
                &sym_plan,
                &sym_ceci,
                EnumOptions {
                    prune_redundant: true,
                    ..Default::default()
                },
            );
            assert!(!e.prunes_redundant_extensions());
        }
        // Triangle query: the leaf has a backward NTE to the penultimate
        // vertex (or is its tree child) — never eligible.
        let tri_query = ceci_query::QueryGraph::unlabeled(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let tri = Graph::unlabeled(
            4,
            &[
                (ceci_graph::vid(0), ceci_graph::vid(1)),
                (ceci_graph::vid(1), ceci_graph::vid(2)),
                (ceci_graph::vid(2), ceci_graph::vid(0)),
                (ceci_graph::vid(1), ceci_graph::vid(3)),
                (ceci_graph::vid(2), ceci_graph::vid(3)),
            ],
        );
        let tri_plan = QueryPlan::new(tri_query, &tri);
        let tri_ceci = Ceci::build(&tri, &tri_plan);
        let e = Enumerator::new(
            &tri,
            &tri_plan,
            &tri_ceci,
            EnumOptions {
                prune_redundant: true,
                ..Default::default()
            },
        );
        assert!(!e.prunes_redundant_extensions());
    }

    #[test]
    fn redundant_pruning_differential_on_random_graphs() {
        use ceci_graph::extract_query;
        use ceci_graph::generators::{erdos_renyi, inject_random_labels};
        for seed in 0..6u64 {
            let graph = inject_random_labels(&erdos_renyi(120, 420, seed), 3, seed ^ 0x9E37);
            for size in [3usize, 4, 5] {
                let Some(extracted) = extract_query(&graph, size, seed.wrapping_mul(31) + 7, 5)
                else {
                    continue;
                };
                let Ok(query) = ceci_query::QueryGraph::from_graph(&extracted.pattern) else {
                    continue;
                };
                let plan = QueryPlan::new(query, &graph);
                let ceci = Ceci::build(&graph, &plan);
                let (base_count, base) =
                    count_with_options(&graph, &plan, &ceci, EnumOptions::default());
                let (pruned_count, pruned) = count_with_options(
                    &graph,
                    &plan,
                    &ceci,
                    EnumOptions {
                        prune_redundant: true,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    pruned_count, base_count,
                    "seed={seed} size={size}: pruned count diverged"
                );
                assert_eq!(pruned.embeddings, base.embeddings);
            }
        }
    }

    #[test]
    fn redundant_pruning_ignored_by_collect_and_limit_sinks() {
        let (graph, plan, ceci) = eligible_star();
        let opts = EnumOptions {
            prune_redundant: true,
            ..Default::default()
        };
        // Collect sinks are not bulk-capable: full recursion, identical set.
        let mut sink = CollectSink::unbounded();
        enumerate_sequential(&graph, &plan, &ceci, opts, &mut sink);
        let collected = canonicalize(sink.into_embeddings());
        assert_eq!(collected.len(), 18);
        assert_eq!(collected, collect_embeddings(&graph, &plan, &ceci));
        // Limited count sinks are not bulk-capable either: first-k exactness.
        let mut limited = CountSink::with_limit(5);
        let counters = enumerate_sequential(&graph, &plan, &ceci, opts, &mut limited);
        assert_eq!(limited.count(), 5);
        assert_eq!(counters.reused_subtrees, 0);
    }

    #[test]
    fn redundant_pruning_profile_attribution_stays_consistent() {
        let (graph, plan, ceci) = eligible_star();
        let mut e = Enumerator::new(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                prune_redundant: true,
                ..Default::default()
            },
        );
        e.enable_profile();
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        for &(pivot, _) in ceci.pivots() {
            assert!(e.enumerate_cluster(pivot, &mut sink, &mut counters));
        }
        assert_eq!(sink.count(), 18);
        let profile = e.take_profile().expect("profile attached");
        // Bulk-answered leaves are still attributed to the leaf depth.
        assert_eq!(profile.total_emitted(), counters.embeddings);
        assert_eq!(profile.total_reused(), counters.reused_subtrees);
        assert_eq!(profile.total_calls(), counters.recursive_calls);
        assert_eq!(profile.total_intersections(), counters.intersection_ops);
    }

    #[test]
    fn recursive_calls_counted() {
        let (graph, plan, ceci) = setup();
        let mut sink = CountSink::unbounded();
        let counters =
            enumerate_sequential(&graph, &plan, &ceci, EnumOptions::default(), &mut sink);
        // Depths 1..4 for the single cluster; at least one call per depth.
        assert!(counters.recursive_calls >= 4);
    }
}
