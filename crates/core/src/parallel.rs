//! Parallel embedding enumeration — "k embeddings at a time" (§4.2, §4.3).
//!
//! Embedding clusters are natural work units; three distribution policies
//! match the paper's comparison:
//!
//! * **ST** (static): clusters split into `k` contiguous groups up front —
//!   no re-adjustment, suffers from power-law cluster skew.
//! * **CGD** (coarse-grained dynamic): a classical pull-based shared pool of
//!   whole clusters.
//! * **FGD** (fine-grained dynamic): ExtremeClusters are pre-split with
//!   Algorithm 3 under threshold `β × cardinality_exp`, the resulting units
//!   sorted largest-first, then pulled dynamically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::enumerate::{EnumOptions, Enumerator, VerifyMode};
use crate::extreme::{decompose_with, WorkUnit};
use crate::index::Ceci;
use crate::intersect::Kernel;
use crate::metrics::{Counters, ThreadTimer};
use crate::sink::{
    CancelToken, CollectSink, CountSink, DeadlineSink, SharedBudget, SharedLimitSink,
};

/// Runs `f(worker_index)` on `threads` scoped worker threads and returns
/// the results in worker order. The degenerate single-thread case runs
/// inline on the caller (no spawn). This is the one piece of scoped-thread
/// machinery shared by embedding enumeration and parallel CECI
/// construction ([`crate::filter::bfs_filter_from_with`]).
pub(crate) fn scoped_workers<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 {
        return vec![f(0)];
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || f(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Work distribution policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Static: equal number of clusters per worker, assigned once.
    Static,
    /// Coarse-grained dynamic: pull-based, cluster granularity.
    CoarseDynamic,
    /// Fine-grained dynamic: ExtremeCluster decomposition with factor β,
    /// then pull-based.
    FineDynamic {
        /// Threshold factor β (the paper uses 0.2 in §6.3).
        beta: f64,
    },
}

impl Strategy {
    /// The paper's abbreviation (ST / CGD / FGD).
    pub fn abbrev(&self) -> &'static str {
        match self {
            Strategy::Static => "ST",
            Strategy::CoarseDynamic => "CGD",
            Strategy::FineDynamic { .. } => "FGD",
        }
    }
}

/// Options for a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOptions {
    /// Number of worker threads.
    pub workers: usize,
    /// Work distribution policy.
    pub strategy: Strategy,
    /// Non-tree edge strategy.
    pub verify: VerifyMode,
    /// Intersection kernel used by every worker (§4.1 ablation knob).
    pub kernel: Kernel,
    /// Stop after this many embeddings globally (first-k semantics).
    pub limit: Option<u64>,
    /// Collect the embeddings (otherwise only count).
    pub collect: bool,
    /// Threads used for *CECI construction* by callers that build and
    /// enumerate in one shot (the repro harness, `ceci-match`, the serving
    /// layer). Enumeration itself is governed by `workers`; this knob is
    /// plumbed into [`crate::BuildOptions::threads`].
    pub build_threads: usize,
    /// Attach a per-depth [`crate::DepthProfile`] to every worker and merge
    /// them into [`ParallelResult::profile`]. Profiles are preallocated from
    /// the matching order before the workers start, so enabling this adds no
    /// allocations to the steady-state recursion and never perturbs the
    /// exact [`Counters`].
    pub profile: bool,
    /// Leaf-level redundant-extension elimination (see
    /// [`EnumOptions::prune_redundant`]). Takes effect only for count-only
    /// runs (`collect = false`, no limit) — collecting or limited sinks are
    /// not bulk-capable, so they fall back to the full recursion.
    pub prune_redundant: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            workers: 1,
            strategy: Strategy::FineDynamic { beta: 0.2 },
            verify: VerifyMode::Intersection,
            kernel: Kernel::Adaptive,
            limit: None,
            collect: false,
            build_threads: 1,
            profile: false,
            prune_redundant: false,
        }
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelResult {
    /// Embeddings found (globally, before any limit truncation).
    pub total_embeddings: u64,
    /// Merged counters across workers.
    pub counters: Counters,
    /// Per-worker CPU time (thread clock, preemption-immune) — the Fig 12
    /// per-worker finish profile and the basis of `modeled_makespan`.
    pub worker_busy: Vec<Duration>,
    /// Number of work units distributed.
    pub num_units: usize,
    /// Wall time spent decomposing/distributing work.
    pub distribute_time: Duration,
    /// Wall time of the enumeration phase.
    pub enumerate_time: Duration,
    /// Collected embeddings, canonically sorted (when requested).
    pub embeddings: Option<Vec<Vec<VertexId>>>,
    /// `true` if the run was cut short by a [`CancelToken`] (explicit cancel
    /// or deadline). Counts/embeddings are then a valid partial result.
    pub cancelled: bool,
    /// Merged per-depth profile across workers (when
    /// [`ParallelOptions::profile`] was set).
    pub profile: Option<crate::DepthProfile>,
}

impl ParallelResult {
    /// Modeled makespan on a machine with one core per worker:
    /// decomposition/distribution overhead plus the busiest worker's CPU
    /// time. On hosts with fewer physical cores than workers this is the
    /// honest scalability figure — threads timeshare, so wall time cannot
    /// show the speedup, but per-worker busy time can.
    pub fn modeled_makespan(&self) -> Duration {
        self.distribute_time
            + self
                .worker_busy
                .iter()
                .max()
                .copied()
                .unwrap_or(Duration::ZERO)
    }

    /// Total CPU time across workers (the single-core equivalent cost).
    pub fn total_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }
}

/// Runs parallel enumeration over a built CECI.
///
/// # Examples
///
/// ```
/// use ceci_core::{enumerate_parallel, Ceci, ParallelOptions, Strategy};
/// use ceci_graph::{vid, Graph};
/// use ceci_query::{PaperQuery, QueryPlan};
///
/// let graph = Graph::unlabeled(4, &[
///     (vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(0)),
///     (vid(1), vid(3)), (vid(2), vid(3)),
/// ]);
/// let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
/// let ceci = Ceci::build(&graph, &plan);
/// let result = enumerate_parallel(&graph, &plan, &ceci, &ParallelOptions {
///     workers: 2,
///     strategy: Strategy::FineDynamic { beta: 0.2 },
///     collect: true,
///     ..Default::default()
/// });
/// assert_eq!(result.total_embeddings, 2);
/// assert_eq!(result.embeddings.unwrap().len(), 2);
/// ```
pub fn enumerate_parallel(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &ParallelOptions,
) -> ParallelResult {
    enumerate_parallel_cancellable(graph, plan, ceci, options, None)
}

/// [`enumerate_parallel`] with an optional cooperative [`CancelToken`]
/// (explicit cancellation or a wall-clock deadline). Workers poll the token
/// between work units, inside the recursion (periodically), and on every
/// emission, so a tripped token unwinds the whole pool in bounded time; the
/// result then carries `cancelled = true` and valid partial counts.
pub fn enumerate_parallel_cancellable(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &ParallelOptions,
    cancel: Option<Arc<CancelToken>>,
) -> ParallelResult {
    enumerate_parallel_pinned(graph, plan, ceci, options, cancel, None)
}

/// [`enumerate_parallel_cancellable`] with optional per-depth intersection
/// kernel pins from the adaptive planner's profile feedback (see
/// [`crate::adaptive::kernels_from_profile`]). `None` — or an empty slice —
/// keeps the global `options.kernel` dispatch. Pins change only *how*
/// intersections are computed, never their results, so counts are identical
/// with and without them.
pub fn enumerate_parallel_pinned(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: &ParallelOptions,
    cancel: Option<Arc<CancelToken>>,
    depth_kernels: Option<&[Kernel]>,
) -> ParallelResult {
    assert!(options.workers >= 1, "need at least one worker");
    let t0 = Instant::now();
    let enum_opts = EnumOptions {
        verify: options.verify,
        kernel: options.kernel,
        build_threads: options.build_threads,
        prune_redundant: options.prune_redundant,
    };
    let units: Vec<WorkUnit> = match options.strategy {
        Strategy::FineDynamic { beta } => {
            decompose_with(graph, plan, ceci, options.workers, beta, enum_opts)
        }
        _ => ceci
            .pivots()
            .iter()
            .map(|&(pivot, card)| WorkUnit {
                prefix: vec![pivot],
                workload: card as f64,
            })
            .collect(),
    };
    let distribute_time = t0.elapsed();
    let num_units = units.len();

    let budget = SharedBudget::new(options.limit);
    let next = AtomicUsize::new(0);

    // Static pre-assignment: worker w owns units with index ≡ w (mod k) —
    // "equal number of embedding clusters to each worker" with no pulling.
    let workers = options.workers;
    let t1 = Instant::now();
    type WorkerOut = (
        Counters,
        Duration,
        Vec<Vec<VertexId>>,
        Option<Box<crate::DepthProfile>>,
    );
    let results: Vec<WorkerOut> = scoped_workers(workers, |w| {
        let units = &units;
        let budget = budget.clone();
        let cancel = cancel.clone();
        let mut counters = Counters::default();
        let mut busy = Duration::ZERO;
        let mut collected: Vec<Vec<VertexId>> = Vec::new();
        let mut enumerator = Enumerator::new(graph, plan, ceci, enum_opts);
        enumerator.set_cancel(cancel.clone());
        if let Some(pins) = depth_kernels {
            enumerator.set_depth_kernels(pins);
        }
        if options.profile {
            enumerator.enable_profile();
        }
        let stop_now = |budget: &SharedBudget| budget.stopped() || is_cancelled(cancel.as_deref());
        if matches!(options.strategy, Strategy::Static) {
            // Static pre-assignment: worker w owns units w, w+k, ...
            let mut i = w;
            while i < units.len() {
                if stop_now(&budget) {
                    break;
                }
                let start = ThreadTimer::start();
                run_unit(
                    &mut enumerator,
                    &units[i],
                    &budget,
                    cancel.as_ref(),
                    options.collect,
                    &mut collected,
                    &mut counters,
                );
                busy += start.elapsed();
                i += workers;
            }
        } else {
            // Pull-based dynamic distribution: grab the next unit.
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(i) else { break };
                if stop_now(&budget) {
                    break;
                }
                let start = ThreadTimer::start();
                run_unit(
                    &mut enumerator,
                    unit,
                    &budget,
                    cancel.as_ref(),
                    options.collect,
                    &mut collected,
                    &mut counters,
                );
                busy += start.elapsed();
            }
        }
        (counters, busy, collected, enumerator.take_profile())
    });
    let enumerate_time = t1.elapsed();

    let mut counters = Counters::default();
    let mut worker_busy = Vec::with_capacity(workers);
    let mut all: Vec<Vec<VertexId>> = Vec::new();
    let mut profile: Option<crate::DepthProfile> = None;
    for (c, busy, collected, worker_profile) in results {
        counters.merge(&c);
        worker_busy.push(busy);
        all.extend(collected);
        if let Some(p) = worker_profile {
            match profile.as_mut() {
                Some(merged) => merged.merge(&p),
                None => profile = Some(*p),
            }
        }
    }
    let embeddings = if options.collect {
        all.sort();
        if let Some(limit) = options.limit {
            all.truncate(limit as usize);
        }
        Some(all)
    } else {
        None
    };
    ParallelResult {
        total_embeddings: counters.embeddings,
        counters,
        worker_busy,
        num_units,
        distribute_time,
        enumerate_time,
        embeddings,
        cancelled: is_cancelled(cancel.as_deref()),
        profile,
    }
}

#[inline]
fn is_cancelled(cancel: Option<&CancelToken>) -> bool {
    cancel.map(|t| t.is_cancelled()).unwrap_or(false)
}

fn run_unit(
    enumerator: &mut Enumerator<'_>,
    unit: &WorkUnit,
    budget: &Arc<SharedBudget>,
    cancel: Option<&Arc<CancelToken>>,
    collect: bool,
    collected: &mut Vec<Vec<VertexId>>,
    counters: &mut Counters,
) {
    if collect {
        let mut inner = CollectSink::unbounded();
        {
            let mut limited = SharedLimitSink::new(&mut inner, budget.clone());
            match cancel {
                Some(token) => {
                    let mut sink = DeadlineSink::new(&mut limited, token.clone());
                    enumerator.enumerate_prefix(&unit.prefix, &mut sink, counters);
                }
                None => {
                    enumerator.enumerate_prefix(&unit.prefix, &mut limited, counters);
                }
            }
        }
        collected.extend(inner.into_embeddings());
    } else {
        let mut inner = CountSink::unbounded();
        let mut limited = SharedLimitSink::new(&mut inner, budget.clone());
        match cancel {
            Some(token) => {
                let mut sink = DeadlineSink::new(&mut limited, token.clone());
                enumerator.enumerate_prefix(&unit.prefix, &mut sink, counters);
            }
            None => {
                enumerator.enumerate_prefix(&unit.prefix, &mut limited, counters);
            }
        }
    }
}

/// Convenience: parallel count with a given strategy.
pub fn count_parallel(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    workers: usize,
    strategy: Strategy,
) -> u64 {
    enumerate_parallel(
        graph,
        plan,
        ceci,
        &ParallelOptions {
            workers,
            strategy,
            ..Default::default()
        },
    )
    .total_embeddings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::collect_embeddings;
    use crate::fixtures::paper;
    use ceci_graph::vid;
    use ceci_query::PaperQuery;

    fn skewed_graph() -> Graph {
        // Hub fan: vertex 0 connected to 1..=24, consecutive ring among
        // 1..=24 → many triangles through the hub (an ExtremeCluster for the
        // hub pivot).
        let mut edges = Vec::new();
        for i in 1..=24u32 {
            edges.push((vid(0), vid(i)));
        }
        for i in 1..24u32 {
            edges.push((vid(i), vid(i + 1)));
        }
        Graph::unlabeled(25, &edges)
    }

    fn expected(graph: &Graph, plan: &QueryPlan, ceci: &Ceci) -> Vec<Vec<VertexId>> {
        collect_embeddings(graph, plan, ceci)
    }

    #[test]
    fn all_strategies_agree_with_sequential() {
        let graph = skewed_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let reference = expected(&graph, &plan, &ceci);
        assert!(!reference.is_empty());
        for strategy in [
            Strategy::Static,
            Strategy::CoarseDynamic,
            Strategy::FineDynamic { beta: 0.2 },
        ] {
            for workers in [1, 2, 4] {
                let result = enumerate_parallel(
                    &graph,
                    &plan,
                    &ceci,
                    &ParallelOptions {
                        workers,
                        strategy,
                        collect: true,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    result.embeddings.as_ref().unwrap(),
                    &reference,
                    "{} × {workers} workers",
                    strategy.abbrev()
                );
                assert_eq!(result.total_embeddings, reference.len() as u64);
                assert_eq!(result.worker_busy.len(), workers);
            }
        }
    }

    #[test]
    fn figure1_parallel() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let result = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 3,
                strategy: Strategy::FineDynamic { beta: 0.5 },
                collect: true,
                ..Default::default()
            },
        );
        assert_eq!(
            result.embeddings.unwrap(),
            crate::sink::canonicalize(paper::expected_embeddings())
        );
    }

    #[test]
    fn limit_stops_globally() {
        let graph = skewed_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let total = expected(&graph, &plan, &ceci).len() as u64;
        assert!(total > 5);
        let result = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 4,
                strategy: Strategy::CoarseDynamic,
                limit: Some(5),
                collect: true,
                ..Default::default()
            },
        );
        let got = result.embeddings.unwrap();
        assert_eq!(got.len(), 5);
        // Each reported embedding is genuine.
        for emb in &got {
            assert!(crate::enumerate::is_valid_embedding(&graph, &plan, emb));
        }
    }

    #[test]
    fn fgd_creates_more_units_than_cgd() {
        let graph = skewed_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let cgd = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 4,
                strategy: Strategy::CoarseDynamic,
                ..Default::default()
            },
        );
        let fgd = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 4,
                strategy: Strategy::FineDynamic { beta: 0.1 },
                ..Default::default()
            },
        );
        assert!(fgd.num_units > cgd.num_units);
    }

    #[test]
    fn cancel_stops_all_strategies() {
        // A pre-cancelled token must stop ST, CGD, and FGD workers before
        // (or immediately after) their first work unit: the partial count is
        // strictly below the full count and the result is flagged.
        let graph = skewed_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let total = expected(&graph, &plan, &ceci).len() as u64;
        assert!(total > 4);
        for strategy in [
            Strategy::Static,
            Strategy::CoarseDynamic,
            Strategy::FineDynamic { beta: 0.2 },
        ] {
            for workers in [1, 2, 4] {
                let token = CancelToken::new();
                token.cancel();
                let result = enumerate_parallel_cancellable(
                    &graph,
                    &plan,
                    &ceci,
                    &ParallelOptions {
                        workers,
                        strategy,
                        ..Default::default()
                    },
                    Some(token.clone()),
                );
                assert!(result.cancelled, "{} × {workers}", strategy.abbrev());
                assert!(
                    result.total_embeddings < total,
                    "{} × {workers}: cancelled run found {} of {total}",
                    strategy.abbrev(),
                    result.total_embeddings
                );
            }
        }
    }

    #[test]
    fn expired_deadline_returns_partial_counts() {
        let graph = skewed_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let token = CancelToken::after(Duration::ZERO);
        let result = enumerate_parallel_cancellable(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 2,
                strategy: Strategy::CoarseDynamic,
                collect: true,
                ..Default::default()
            },
            Some(token),
        );
        assert!(result.cancelled);
        // Whatever was collected before the stop is genuine.
        for emb in result.embeddings.as_deref().unwrap_or(&[]) {
            assert!(crate::enumerate::is_valid_embedding(&graph, &plan, emb));
        }
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let token = CancelToken::new();
        let result = enumerate_parallel_cancellable(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 2,
                collect: true,
                ..Default::default()
            },
            Some(token),
        );
        assert!(!result.cancelled);
        assert_eq!(
            result.embeddings.unwrap(),
            crate::sink::canonicalize(paper::expected_embeddings())
        );
    }

    #[test]
    fn count_parallel_convenience() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        assert_eq!(count_parallel(&graph, &plan, &ceci, 2, Strategy::Static), 2);
    }

    #[test]
    fn pinned_kernels_do_not_change_counts() {
        use ceci_graph::generators::kronecker_default;
        use ceci_query::PaperQuery;
        let graph = kronecker_default(9, 5, 13);
        let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
        let ceci = Ceci::build(&graph, &plan);
        let options = ParallelOptions {
            workers: 2,
            ..Default::default()
        };
        let baseline = enumerate_parallel(&graph, &plan, &ceci, &options);
        let n = plan.matching_order().len();
        for kernel in [Kernel::Merge, Kernel::Gallop, Kernel::Simd] {
            let pins = vec![kernel; n];
            let pinned =
                enumerate_parallel_pinned(&graph, &plan, &ceci, &options, None, Some(&pins));
            assert_eq!(
                pinned.total_embeddings, baseline.total_embeddings,
                "{kernel:?} pins changed the count"
            );
        }
        // Mixed pins, too.
        let mixed: Vec<Kernel> = (0..n)
            .map(|d| match d % 3 {
                0 => Kernel::Gallop,
                1 => Kernel::BranchlessMerge,
                _ => Kernel::Adaptive,
            })
            .collect();
        let pinned = enumerate_parallel_pinned(&graph, &plan, &ceci, &options, None, Some(&mixed));
        assert_eq!(pinned.total_embeddings, baseline.total_embeddings);
    }
}
