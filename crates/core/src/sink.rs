//! Embedding sinks: where enumeration results go.
//!
//! An embedding is reported as a slice indexed by *query vertex id*
//! (`embedding[u] = matched data vertex`). Sinks decide whether enumeration
//! continues — returning `false` stops the search, which is how the paper's
//! "first 1,024 embeddings" experiments (§6.2) terminate early.

use ceci_graph::VertexId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consumer of embeddings.
pub trait EmbeddingSink {
    /// Handles one embedding; returns `false` to stop enumeration.
    fn emit(&mut self, embedding: &[VertexId]) -> bool;

    /// Whether this sink accepts [`EmbeddingSink::emit_bulk`] batches —
    /// count-only sinks that don't materialize embeddings. Redundant-
    /// extension elimination needs this: a reused sibling subtree yields a
    /// *count* of embeddings, not the embeddings themselves. Sinks that
    /// collect embeddings (or enforce an exact first-k cutoff) answer
    /// `false` and enumeration falls back to full recursion.
    fn supports_bulk(&self) -> bool {
        false
    }

    /// Accepts `count` embeddings at once without materializing them;
    /// returns `false` to stop enumeration. Only called after
    /// [`EmbeddingSink::supports_bulk`] answered `true`.
    fn emit_bulk(&mut self, count: u64) -> bool {
        let _ = count;
        unreachable!("emit_bulk called on a sink without bulk support");
    }
}

/// Counts embeddings, optionally stopping after a limit.
#[derive(Debug, Default)]
pub struct CountSink {
    count: u64,
    limit: Option<u64>,
}

impl CountSink {
    /// Counts without bound.
    pub fn unbounded() -> Self {
        CountSink {
            count: 0,
            limit: None,
        }
    }

    /// Stops after `limit` embeddings.
    pub fn with_limit(limit: u64) -> Self {
        CountSink {
            count: 0,
            limit: Some(limit),
        }
    }

    /// Embeddings seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EmbeddingSink for CountSink {
    fn emit(&mut self, _embedding: &[VertexId]) -> bool {
        self.count += 1;
        match self.limit {
            Some(l) => self.count < l,
            None => true,
        }
    }

    /// Bulk counting is only sound without a limit: a bulk batch could
    /// overshoot an exact first-k cutoff.
    fn supports_bulk(&self) -> bool {
        self.limit.is_none()
    }

    fn emit_bulk(&mut self, count: u64) -> bool {
        debug_assert!(self.limit.is_none());
        self.count += count;
        true
    }
}

/// Collects embeddings into a vector, optionally bounded.
#[derive(Debug, Default)]
pub struct CollectSink {
    embeddings: Vec<Vec<VertexId>>,
    limit: Option<usize>,
}

impl CollectSink {
    /// Collects everything.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Collects at most `limit` embeddings.
    pub fn with_limit(limit: usize) -> Self {
        CollectSink {
            embeddings: Vec::new(),
            limit: Some(limit),
        }
    }

    /// The collected embeddings.
    pub fn into_embeddings(self) -> Vec<Vec<VertexId>> {
        self.embeddings
    }

    /// Number collected so far.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// `true` if nothing collected.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }
}

impl EmbeddingSink for CollectSink {
    fn emit(&mut self, embedding: &[VertexId]) -> bool {
        self.embeddings.push(embedding.to_vec());
        match self.limit {
            Some(l) => self.embeddings.len() < l,
            None => true,
        }
    }
}

/// Shared cross-worker budget for parallel first-k runs: a global count and
/// a stop flag. Each worker wraps its local sink in a [`SharedLimitSink`].
#[derive(Debug)]
pub struct SharedBudget {
    emitted: AtomicU64,
    stop: AtomicBool,
    limit: Option<u64>,
}

impl SharedBudget {
    /// A budget with an optional global embedding limit.
    pub fn new(limit: Option<u64>) -> Arc<Self> {
        Arc::new(SharedBudget {
            emitted: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            limit,
        })
    }

    /// Total embeddings emitted across workers.
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Has some worker tripped the stop flag?
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Requests a global stop (used on limit hit).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Per-worker sink that forwards to an inner sink while honoring a shared
/// [`SharedBudget`].
pub struct SharedLimitSink<'a, S: EmbeddingSink> {
    inner: &'a mut S,
    budget: Arc<SharedBudget>,
}

impl<'a, S: EmbeddingSink> SharedLimitSink<'a, S> {
    /// Wraps `inner` under `budget`.
    pub fn new(inner: &'a mut S, budget: Arc<SharedBudget>) -> Self {
        SharedLimitSink { inner, budget }
    }
}

impl<S: EmbeddingSink> EmbeddingSink for SharedLimitSink<'_, S> {
    fn emit(&mut self, embedding: &[VertexId]) -> bool {
        if self.budget.stopped() {
            return false;
        }
        if let Some(limit) = self.budget.limit {
            let prior = self.budget.emitted.fetch_add(1, Ordering::Relaxed);
            if prior >= limit {
                self.budget.request_stop();
                return false;
            }
            let keep_local = self.inner.emit(embedding);
            if prior + 1 >= limit {
                self.budget.request_stop();
                return false;
            }
            keep_local
        } else {
            self.budget.emitted.fetch_add(1, Ordering::Relaxed);
            self.inner.emit(embedding)
        }
    }

    /// Bulk passes through only when no global limit is set (a batch could
    /// overshoot an exact first-k budget) and the inner sink supports it.
    fn supports_bulk(&self) -> bool {
        self.budget.limit.is_none() && self.inner.supports_bulk()
    }

    fn emit_bulk(&mut self, count: u64) -> bool {
        if self.budget.stopped() {
            return false;
        }
        self.budget.emitted.fetch_add(count, Ordering::Relaxed);
        self.inner.emit_bulk(count)
    }
}

/// A shared cooperative-cancellation token: an explicit stop flag plus an
/// optional wall-clock deadline.
///
/// Enumeration is a deep recursion that can run for a very long time; a
/// serving layer cannot afford to wedge a worker on one runaway request.
/// Every cancellation point (sink emissions via [`DeadlineSink`], the
/// periodic check inside the enumeration recursion, and the parallel worker
/// loop between work units) polls the same token, so a request past its
/// deadline unwinds everywhere within a bounded number of steps and the
/// partial results observed so far remain valid.
#[derive(Debug)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline (cancellable only via [`CancelToken::cancel`]).
    pub fn new() -> Arc<Self> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: None,
        })
    }

    /// A token that trips once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Arc<Self> {
        Arc::new(CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        })
    }

    /// A token that trips `timeout` from now.
    pub fn after(timeout: Duration) -> Arc<Self> {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Requests cancellation explicitly.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once the token is cancelled or its deadline has passed. The
    /// fast path is a single relaxed atomic load; the deadline clock is only
    /// consulted until it first trips (the result is then latched).
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Wraps any [`EmbeddingSink`] with a shared [`CancelToken`]: emissions stop
/// (returning `false` to the enumerator) as soon as the token is cancelled
/// or its deadline passes. Partial results already delivered to the inner
/// sink remain available — the serving layer returns them with a
/// `DEADLINE_EXCEEDED` status instead of discarding the work.
pub struct DeadlineSink<'a, S: EmbeddingSink> {
    inner: &'a mut S,
    token: Arc<CancelToken>,
}

impl<'a, S: EmbeddingSink> DeadlineSink<'a, S> {
    /// Wraps `inner` under `token`.
    pub fn new(inner: &'a mut S, token: Arc<CancelToken>) -> Self {
        DeadlineSink { inner, token }
    }
}

impl<S: EmbeddingSink> EmbeddingSink for DeadlineSink<'_, S> {
    fn emit(&mut self, embedding: &[VertexId]) -> bool {
        if self.token.is_cancelled() {
            return false;
        }
        self.inner.emit(embedding)
    }

    fn supports_bulk(&self) -> bool {
        self.inner.supports_bulk()
    }

    fn emit_bulk(&mut self, count: u64) -> bool {
        if self.token.is_cancelled() {
            return false;
        }
        self.inner.emit_bulk(count)
    }
}

/// Sorts embeddings lexicographically — canonical form for comparing result
/// sets across engines and worker counts.
pub fn canonicalize(mut embeddings: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
    embeddings.sort();
    embeddings
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    #[test]
    fn count_sink_unbounded() {
        let mut s = CountSink::unbounded();
        for _ in 0..5 {
            assert!(s.emit(&[vid(0)]));
        }
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn count_sink_limit() {
        let mut s = CountSink::with_limit(3);
        assert!(s.emit(&[vid(0)]));
        assert!(s.emit(&[vid(0)]));
        assert!(!s.emit(&[vid(0)])); // third emission says stop
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn collect_sink_gathers() {
        let mut s = CollectSink::unbounded();
        assert!(s.emit(&[vid(1), vid(2)]));
        assert!(s.emit(&[vid(3), vid(4)]));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let out = s.into_embeddings();
        assert_eq!(out, vec![vec![vid(1), vid(2)], vec![vid(3), vid(4)]]);
    }

    #[test]
    fn collect_sink_limit() {
        let mut s = CollectSink::with_limit(1);
        assert!(!s.emit(&[vid(1)]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shared_budget_limits_across_sinks() {
        let budget = SharedBudget::new(Some(3));
        let mut a = CountSink::unbounded();
        let mut b = CountSink::unbounded();
        {
            let mut sa = SharedLimitSink::new(&mut a, budget.clone());
            let mut sb = SharedLimitSink::new(&mut b, budget.clone());
            assert!(sa.emit(&[vid(0)]));
            assert!(sb.emit(&[vid(0)]));
            // Third emission reaches the limit: accepted but stops.
            assert!(!sa.emit(&[vid(0)]));
            // Fourth emission is rejected outright.
            assert!(!sb.emit(&[vid(0)]));
        }
        assert_eq!(a.count() + b.count(), 3);
        assert!(budget.stopped());
        assert!(budget.emitted() >= 3);
    }

    #[test]
    fn shared_budget_unlimited_counts() {
        let budget = SharedBudget::new(None);
        let mut a = CountSink::unbounded();
        let mut s = SharedLimitSink::new(&mut a, budget.clone());
        assert!(s.emit(&[vid(0)]));
        assert!(s.emit(&[vid(0)]));
        assert_eq!(budget.emitted(), 2);
        assert!(!budget.stopped());
    }

    #[test]
    fn deadline_sink_stops_on_cancel() {
        let token = CancelToken::new();
        let mut inner = CountSink::unbounded();
        let mut sink = DeadlineSink::new(&mut inner, token.clone());
        assert!(sink.emit(&[vid(0)]));
        assert!(sink.emit(&[vid(1)]));
        token.cancel();
        assert!(!sink.emit(&[vid(2)]));
        // Partial results survive cancellation.
        assert_eq!(inner.count(), 2);
    }

    #[test]
    fn deadline_sink_trips_on_expired_deadline() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let mut inner = CountSink::unbounded();
        let mut sink = DeadlineSink::new(&mut inner, token.clone());
        assert!(!sink.emit(&[vid(0)]));
        assert_eq!(inner.count(), 0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_token_latches() {
        let token = CancelToken::after(Duration::ZERO);
        assert!(token.is_cancelled());
        assert!(token.is_cancelled()); // latched, no un-cancel
        let free = CancelToken::new();
        assert!(!free.is_cancelled());
        assert!(free.deadline().is_none());
        free.cancel();
        assert!(free.is_cancelled());
    }

    #[test]
    fn bulk_support_matrix() {
        assert!(CountSink::unbounded().supports_bulk());
        assert!(!CountSink::with_limit(3).supports_bulk());
        assert!(!CollectSink::unbounded().supports_bulk());
        let mut c = CountSink::unbounded();
        assert!(c.emit_bulk(5));
        assert!(c.emit(&[vid(0)]));
        assert_eq!(c.count(), 6);
    }

    #[test]
    fn shared_limit_sink_bulk_passthrough() {
        let budget = SharedBudget::new(None);
        let mut a = CountSink::unbounded();
        let mut s = SharedLimitSink::new(&mut a, budget.clone());
        assert!(s.supports_bulk());
        assert!(s.emit_bulk(7));
        assert_eq!(budget.emitted(), 7);
        assert_eq!(a.count(), 7);

        let limited = SharedBudget::new(Some(10));
        let mut b = CountSink::unbounded();
        let s = SharedLimitSink::new(&mut b, limited);
        assert!(!s.supports_bulk(), "limits disable bulk");
    }

    #[test]
    fn deadline_sink_bulk_honors_token() {
        let token = CancelToken::new();
        let mut inner = CountSink::unbounded();
        let mut sink = DeadlineSink::new(&mut inner, token.clone());
        assert!(sink.supports_bulk());
        assert!(sink.emit_bulk(4));
        token.cancel();
        assert!(!sink.emit_bulk(4));
        assert_eq!(inner.count(), 4);
    }

    #[test]
    fn canonicalize_sorts() {
        let out = canonicalize(vec![vec![vid(2)], vec![vid(1)], vec![vid(3)]]);
        assert_eq!(out, vec![vec![vid(1)], vec![vid(2)], vec![vid(3)]]);
    }
}
