//! CECI creation and BFS-based filtering — Algorithm 1 (§3.2).
//!
//! Phase A walks the query tree in matching order, expanding each node's
//! frontier (the parent's surviving candidates) through the label (LF),
//! degree (DF), and neighborhood-label-count (NLCF) filters to fill the
//! TE_Candidates tables. A frontier vertex whose expansion comes up empty is
//! removed from the parent's candidate set and from the already-built tables
//! of the parent's other children (Algorithm 1 lines 9–12).
//!
//! Phase B builds the NTE_Candidates tables for every backward non-tree
//! edge the same way, keyed by the NTE parent's surviving candidates, with
//! the same empty-entry cascade.

use ceci_graph::{Graph, LabelId, VertexId};
use ceci_query::candidates::{degree_filter, label_filter, nlc_filter};
use ceci_query::QueryPlan;

use crate::tables::BuildTable;

/// Mutable CECI under construction: pivots plus per-node TE/NTE tables.
#[derive(Debug)]
pub struct BuilderState {
    /// Surviving candidates of the root (cluster pivots), sorted.
    pub pivots: Vec<VertexId>,
    /// `te[u]` — TE table of non-root query node `u`, keyed by candidates of
    /// its tree parent. `None` for the root.
    pub te: Vec<Option<BuildTable>>,
    /// `nte[u]` — one `(nte_parent, table)` per backward non-tree edge of `u`.
    pub nte: Vec<Vec<(VertexId, BuildTable)>>,
}

impl BuilderState {
    /// Candidate set of query node `u`: pivots for the root, otherwise the
    /// value union of its TE table.
    pub fn candidates_of(&self, plan: &QueryPlan, u: VertexId) -> Vec<VertexId> {
        if u == plan.root() {
            self.pivots.clone()
        } else {
            self.te[u.index()]
                .as_ref()
                .expect("non-root nodes have TE tables")
                .value_union()
        }
    }

    /// Total TE candidate-edge entries.
    pub fn te_entries(&self) -> usize {
        self.te.iter().flatten().map(|t| t.num_entries()).sum()
    }

    /// Total NTE candidate-edge entries.
    pub fn nte_entries(&self) -> usize {
        self.nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.num_entries())
            .sum()
    }

    /// Removes `v` from the candidate set of query node `u`, cascading the
    /// key removal into every *already built* table keyed by `u`'s
    /// candidates (TE tables of `u`'s tree children, NTE tables whose parent
    /// is `u`).
    pub fn remove_candidate(&mut self, plan: &QueryPlan, u: VertexId, v: VertexId) {
        if u == plan.root() {
            if let Ok(i) = self.pivots.binary_search(&v) {
                self.pivots.remove(i);
            }
        } else if let Some(table) = self.te[u.index()].as_mut() {
            table.remove_value_everywhere(v);
        }
        for (un, table) in self.nte[u.index()].iter_mut() {
            let _ = un;
            table.remove_value_everywhere(v);
        }
        for &uc in plan.tree().children(u) {
            if let Some(child_table) = self.te[uc.index()].as_mut() {
                child_table.remove_key(v);
            }
        }
        for &uf in plan.forward_nte(u) {
            for (parent, table) in self.nte[uf.index()].iter_mut() {
                if *parent == u {
                    table.remove_key(v);
                }
            }
        }
    }
}

/// Per-query-node filter context, precomputed once.
struct NodeFilter {
    /// Query-side NLC profile of the node.
    nlc: Vec<(LabelId, u32)>,
}

/// Runs Algorithm 1: seeds the pivots from the plan's initial root
/// candidates and fills all TE tables in matching order, then all backward
/// NTE tables. Returns the builder state.
pub fn bfs_filter(graph: &Graph, plan: &QueryPlan) -> BuilderState {
    bfs_filter_from(graph, plan, plan.initial_candidates(plan.root()).to_vec())
}

/// Runs Algorithm 1 from an explicit pivot set — used by the distributed
/// simulation, where each machine indexes only its assigned embedding
/// clusters (§5). `pivots` must be sorted and a subset of the root's
/// initial candidates.
pub fn bfs_filter_from(graph: &Graph, plan: &QueryPlan, pivots: Vec<VertexId>) -> BuilderState {
    debug_assert!(
        pivots.windows(2).all(|w| w[0] < w[1]),
        "pivots must be sorted"
    );
    let n = plan.query().num_vertices();
    let mut state = BuilderState {
        pivots,
        te: (0..n).map(|_| None).collect(),
        nte: vec![Vec::new(); n],
    };
    let filters: Vec<NodeFilter> = plan
        .query()
        .vertices()
        .map(|u| NodeFilter {
            nlc: plan.query().neighborhood_label_counts(u),
        })
        .collect();

    // Phase A: TE tables in matching order (root skipped).
    for &u in plan.matching_order().iter().skip(1) {
        let up = plan
            .tree()
            .parent(u)
            .expect("non-root nodes have tree parents");
        let frontier = state.candidates_of(plan, up);
        let mut table = BuildTable::new();
        let mut emptied: Vec<VertexId> = Vec::new();
        for vf in frontier {
            let values = filtered_neighbors(graph, plan, &filters, u, vf);
            if values.is_empty() {
                emptied.push(vf);
            } else {
                table.push_key(vf, values);
            }
        }
        state.te[u.index()] = Some(table);
        for vf in emptied {
            state.remove_candidate(plan, up, vf);
        }
    }

    // Phase B: NTE tables in matching order.
    for &u in plan.matching_order().iter() {
        for &un in plan.backward_nte(u) {
            let frontier = state.candidates_of(plan, un);
            let mut table = BuildTable::new();
            let mut emptied: Vec<VertexId> = Vec::new();
            for vf in frontier {
                let values = filtered_neighbors(graph, plan, &filters, u, vf);
                if values.is_empty() {
                    emptied.push(vf);
                } else {
                    table.push_key(vf, values);
                }
            }
            state.nte[u.index()].push((un, table));
            for vf in emptied {
                state.remove_candidate(plan, un, vf);
            }
        }
    }
    state
}

/// Neighbors of `vf` passing LF, DF, and NLCF for query node `u`. Output is
/// sorted because adjacency lists are sorted and filtering preserves order.
fn filtered_neighbors(
    graph: &Graph,
    plan: &QueryPlan,
    filters: &[NodeFilter],
    u: VertexId,
    vf: VertexId,
) -> Vec<VertexId> {
    let query = plan.query();
    let nlc = &filters[u.index()].nlc;
    graph
        .neighbors(vf)
        .iter()
        .copied()
        .filter(|&v| label_filter(query, graph, u, v))
        .filter(|&v| degree_filter(query, graph, u, v))
        .filter(|&v| nlc_filter(nlc, graph, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper;
    use ceci_graph::vid;

    #[test]
    fn paper_te_tables_after_filtering() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // Pivots: v2 removed by the cascade (te[u3][v2] empty after NLCF
        // prunes v8) → only v1 survives.
        assert_eq!(state.pivots, vec![paper::v(1)]);
        // te[u2]: <v1, {v3, v5, v7}> (key v2 cascaded away).
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert_eq!(
            te_u2.get(paper::v(1)),
            Some(&[paper::v(3), paper::v(5), paper::v(7)][..])
        );
        assert_eq!(te_u2.get(paper::v(2)), None);
        // te[u3]: <v1, {v4, v6}>.
        let te_u3 = state.te[paper::u(3).index()].as_ref().unwrap();
        assert_eq!(
            te_u3.get(paper::v(1)),
            Some(&[paper::v(4), paper::v(6)][..])
        );
        assert_eq!(te_u3.get(paper::v(2)), None);
        // te[u4]: <v3,{v11}>, <v5,{v13}>, <v7,{v15}>.
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert_eq!(te_u4.get(paper::v(3)), Some(&[paper::v(11)][..]));
        assert_eq!(te_u4.get(paper::v(5)), Some(&[paper::v(13)][..]));
        assert_eq!(te_u4.get(paper::v(7)), Some(&[paper::v(15)][..]));
        // te[u5]: <v4,{v12}>, <v6,{v14}>.
        let te_u5 = state.te[paper::u(5).index()].as_ref().unwrap();
        assert_eq!(te_u5.get(paper::v(4)), Some(&[paper::v(12)][..]));
        assert_eq!(te_u5.get(paper::v(6)), Some(&[paper::v(14)][..]));
    }

    #[test]
    fn paper_nte_tables_after_filtering() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // nte[u3] (parent u2): <v3,{v4}>, <v5,{v4,v6}>, <v7,{v6}> — v8 pruned
        // by NLCF.
        let nte_u3 = &state.nte[paper::u(3).index()];
        assert_eq!(nte_u3.len(), 1);
        assert_eq!(nte_u3[0].0, paper::u(2));
        let t = &nte_u3[0].1;
        assert_eq!(t.get(paper::v(3)), Some(&[paper::v(4)][..]));
        assert_eq!(t.get(paper::v(5)), Some(&[paper::v(4), paper::v(6)][..]));
        assert_eq!(t.get(paper::v(7)), Some(&[paper::v(6)][..]));
        // nte[u4] (parent u3): <v4,{v11}>, <v6,{v13}>.
        let nte_u4 = &state.nte[paper::u(4).index()];
        assert_eq!(nte_u4.len(), 1);
        assert_eq!(nte_u4[0].0, paper::u(3));
        let t = &nte_u4[0].1;
        assert_eq!(t.get(paper::v(4)), Some(&[paper::v(11)][..]));
        assert_eq!(t.get(paper::v(6)), Some(&[paper::v(13)][..]));
    }

    #[test]
    fn candidate_sets_match_paper() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        assert_eq!(
            state.candidates_of(&plan, paper::u(2)),
            vec![paper::v(3), paper::v(5), paper::v(7)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(3)),
            vec![paper::v(4), paper::v(6)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(4)),
            vec![paper::v(11), paper::v(13), paper::v(15)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(5)),
            vec![paper::v(12), paper::v(14)]
        );
    }

    #[test]
    fn entry_counts() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // TE: u2:3 + u3:2 + u4:3 + u5:2 = 10
        assert_eq!(state.te_entries(), 10);
        // NTE: u3:4 + u4:2 = 6
        assert_eq!(state.nte_entries(), 6);
    }

    #[test]
    fn single_vertex_query_only_pivots() {
        let graph = ceci_graph::Graph::unlabeled(3, &[(vid(0), vid(1))]);
        let query = ceci_query::QueryGraph::unlabeled(1, &[]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let state = bfs_filter(&graph, &plan);
        assert_eq!(state.pivots.len(), 3);
        assert_eq!(state.te_entries(), 0);
    }
}
