//! CECI creation and BFS-based filtering — Algorithm 1 (§3.2).
//!
//! Phase A walks the query tree in matching order, expanding each node's
//! frontier (the parent's surviving candidates) through the label (LF),
//! degree (DF), and neighborhood-label-count (NLCF) filters to fill the
//! TE_Candidates tables. A frontier vertex whose expansion comes up empty is
//! removed from the parent's candidate set and from the already-built tables
//! of the parent's other children (Algorithm 1 lines 9–12).
//!
//! Phase B builds the NTE_Candidates tables for every backward non-tree
//! edge the same way, keyed by the NTE parent's surviving candidates, with
//! the same empty-entry cascade.
//!
//! # Parallel construction
//!
//! Each table's frontier expansion is embarrassingly parallel: the filtered
//! neighborhood of frontier vertex `vf` depends only on the immutable data
//! graph, never on other frontier vertices. [`bfs_filter_from_with`] fans
//! each frontier out across a scoped worker pool
//! ([`crate::parallel::scoped_workers`]): the frontier is split into
//! contiguous chunks, worker `w` filters chunks `w, w+threads, …` into a
//! private arena (static stride — the work split is independent of OS
//! scheduling), and a deterministic merge stitches the chunk runs back
//! **in chunk order** — which is frontier order — via
//! [`BuildTable::push_run`]. Because the sequential path
//! processes the same frontier in the same order, the merged table (keys,
//! spans, arena contents, value counts) is bit-identical to the sequential
//! build, and the empty-entry cascade — applied only after the merge, in
//! frontier order — removes the same candidates in the same order. The
//! `threads = 1` path skips chunking entirely and filters straight into the
//! table arena (zero staging copies), so it is never slower than the
//! pre-parallel sequential build.
//!
//! Candidate sets are cached in [`BuilderState`] and kept in sync by
//! [`BuilderState::remove_candidate`], so [`BuilderState::candidates_of`]
//! is a borrow instead of a per-call `value_union()` allocation.

use std::time::{Duration, Instant};

use ceci_graph::{Graph, LabelId, VertexId};
use ceci_query::candidates::{degree_filter, label_filter, nlc_filter};
use ceci_query::QueryPlan;

use crate::metrics::ThreadTimer;
use crate::parallel::scoped_workers;
use crate::tables::BuildTable;

/// Frontiers below this size are filtered on the calling thread even when a
/// worker pool is available — the fan-out overhead would dominate.
const PARALLEL_FRONTIER_MIN: usize = 128;

/// Minimum chunk size handed to one worker pull.
const CHUNK_MIN: usize = 64;

/// Mutable CECI under construction: pivots plus per-node TE/NTE tables.
#[derive(Debug)]
pub struct BuilderState {
    /// Surviving candidates of the root (cluster pivots), sorted.
    pub pivots: Vec<VertexId>,
    /// `te[u]` — TE table of non-root query node `u`, keyed by candidates of
    /// its tree parent. `None` for the root.
    pub te: Vec<Option<BuildTable>>,
    /// `nte[u]` — one `(nte_parent, table)` per backward non-tree edge of `u`.
    pub nte: Vec<Vec<(VertexId, BuildTable)>>,
    /// Cached candidate set per non-root node — the value union of `te[u]`,
    /// maintained incrementally by [`BuilderState::remove_candidate`] so
    /// [`BuilderState::candidates_of`] never allocates. The root's set lives
    /// in `pivots`.
    candidates: Vec<Vec<VertexId>>,
}

impl BuilderState {
    /// Candidate set of query node `u`: pivots for the root, otherwise the
    /// cached value union of its TE table. Borrowed — no per-call allocation
    /// or union recomputation.
    pub fn candidates_of(&self, plan: &QueryPlan, u: VertexId) -> &[VertexId] {
        if u == plan.root() {
            &self.pivots
        } else {
            debug_assert!(
                self.te[u.index()].is_some(),
                "non-root nodes have TE tables"
            );
            &self.candidates[u.index()]
        }
    }

    /// Total TE candidate-edge entries.
    pub fn te_entries(&self) -> usize {
        self.te.iter().flatten().map(|t| t.num_entries()).sum()
    }

    /// Total NTE candidate-edge entries.
    pub fn nte_entries(&self) -> usize {
        self.nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.num_entries())
            .sum()
    }

    /// Build-time arena bytes currently held across all tables.
    pub fn arena_bytes(&self) -> usize {
        let te: usize = self.te.iter().flatten().map(|t| t.arena_bytes()).sum();
        let nte: usize = self
            .nte
            .iter()
            .flat_map(|v| v.iter())
            .map(|(_, t)| t.arena_bytes())
            .sum();
        te + nte
    }

    /// Removes `v` from the candidate set of query node `u`, cascading the
    /// key removal into every *already built* table keyed by `u`'s
    /// candidates (TE tables of `u`'s tree children, NTE tables whose parent
    /// is `u`). Cached candidate sets are kept in sync: values that vanish
    /// from a child table's union are dropped from the child's cache.
    pub fn remove_candidate(&mut self, plan: &QueryPlan, u: VertexId, v: VertexId) {
        if u == plan.root() {
            if let Ok(i) = self.pivots.binary_search(&v) {
                self.pivots.remove(i);
            }
        } else if let Some(table) = self.te[u.index()].as_mut() {
            table.remove_value_everywhere(v);
            if let Ok(i) = self.candidates[u.index()].binary_search(&v) {
                self.candidates[u.index()].remove(i);
            }
        }
        for (un, table) in self.nte[u.index()].iter_mut() {
            let _ = un;
            table.remove_value_everywhere(v);
        }
        for &uc in plan.tree().children(u) {
            if let Some(child_table) = self.te[uc.index()].as_mut() {
                for w in child_table.remove_key(v) {
                    if let Ok(i) = self.candidates[uc.index()].binary_search(&w) {
                        self.candidates[uc.index()].remove(i);
                    }
                }
            }
        }
        for &uf in plan.forward_nte(u) {
            for (parent, table) in self.nte[uf.index()].iter_mut() {
                if *parent == u {
                    table.remove_key(v);
                }
            }
        }
    }

    /// Consumes the state, releasing `(pivots, te, nte)` for freezing.
    pub fn into_parts(self) -> BuilderParts {
        (self.pivots, self.te, self.nte)
    }

    /// Reassembles a `BuilderState` from externally built parts, recomputing
    /// the per-node candidate caches as the value union of each TE table.
    ///
    /// This is the inverse of [`BuilderState::into_parts`] for the streaming
    /// repair path: the incremental maintainer patches raw TE/NTE tables
    /// across mutation batches and rebuilds the state here before handing it
    /// to refinement. Invariants expected from the caller (and `debug_assert`ed):
    /// `pivots` sorted ascending; `te[u]` present exactly for non-root nodes
    /// and keyed by (a superset of) the parent's candidates; all value lists
    /// sorted — i.e. the same shape [`bfs_filter`] produces, minus the
    /// empty-entry cascade (refinement subsumes it for counts).
    pub fn from_parts(
        plan: &QueryPlan,
        pivots: Vec<VertexId>,
        te: Vec<Option<BuildTable>>,
        nte: Vec<Vec<(VertexId, BuildTable)>>,
    ) -> BuilderState {
        debug_assert!(pivots.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(te.len(), plan.query().num_vertices());
        debug_assert_eq!(nte.len(), plan.query().num_vertices());
        let candidates: Vec<Vec<VertexId>> = te
            .iter()
            .map(|t| t.as_ref().map(BuildTable::value_union).unwrap_or_default())
            .collect();
        BuilderState {
            pivots,
            te,
            nte,
            candidates,
        }
    }
}

/// What [`BuilderState::into_parts`] releases: the surviving pivots, the
/// per-node TE tables (indexed by query-vertex id; `None` for the root),
/// and the per-node NTE tables keyed by the non-tree parent.
pub type BuilderParts = (
    Vec<VertexId>,
    Vec<Option<BuildTable>>,
    Vec<Vec<(VertexId, BuildTable)>>,
);

/// Timing profile of one BFS-filter run — the parallel-construction
/// breakdown surfaced through `BuildStats`.
#[derive(Clone, Debug, Default)]
pub struct FilterProfile {
    /// Worker-pool width the filter ran with.
    pub threads: usize,
    /// Per-worker CPU busy time accumulated across all parallel fan-out
    /// sections (thread-CPU clock, the basis of the modeled build time on
    /// machines with fewer cores than workers).
    pub worker_busy: Vec<Duration>,
    /// Wall time spent inside parallel fan-out sections (spawn → join).
    pub fanout_wall: Duration,
    /// Wall time of the deterministic chunk merge.
    pub merge_time: Duration,
}

impl FilterProfile {
    fn new(threads: usize) -> Self {
        FilterProfile {
            threads,
            worker_busy: vec![Duration::ZERO; threads],
            fanout_wall: Duration::ZERO,
            merge_time: Duration::ZERO,
        }
    }

    /// Longest per-worker CPU busy time — the modeled parallel span of the
    /// fan-out sections.
    pub fn busy_max(&self) -> Duration {
        self.worker_busy.iter().copied().max().unwrap_or_default()
    }

    /// Total CPU busy time across workers.
    pub fn busy_total(&self) -> Duration {
        self.worker_busy.iter().sum()
    }
}

/// Per-query-node filter context, precomputed once.
struct NodeFilter {
    /// Query-side NLC profile of the node.
    nlc: Vec<(LabelId, u32)>,
}

/// Runs Algorithm 1: seeds the pivots from the plan's initial root
/// candidates and fills all TE tables in matching order, then all backward
/// NTE tables. Returns the builder state.
pub fn bfs_filter(graph: &Graph, plan: &QueryPlan) -> BuilderState {
    bfs_filter_from(graph, plan, plan.initial_candidates(plan.root()).to_vec())
}

/// Runs Algorithm 1 from an explicit pivot set — used by the distributed
/// simulation, where each machine indexes only its assigned embedding
/// clusters (§5). `pivots` must be sorted and a subset of the root's
/// initial candidates.
pub fn bfs_filter_from(graph: &Graph, plan: &QueryPlan, pivots: Vec<VertexId>) -> BuilderState {
    bfs_filter_from_with(graph, plan, pivots, 1).0
}

/// [`bfs_filter_from`] with an explicit worker count and timing profile.
/// The result is bit-identical for every `threads` value (see module docs);
/// `threads = 1` runs fully on the calling thread.
pub fn bfs_filter_from_with(
    graph: &Graph,
    plan: &QueryPlan,
    pivots: Vec<VertexId>,
    threads: usize,
) -> (BuilderState, FilterProfile) {
    debug_assert!(
        pivots.windows(2).all(|w| w[0] < w[1]),
        "pivots must be sorted"
    );
    let threads = threads.max(1);
    let n = plan.query().num_vertices();
    let mut state = BuilderState {
        pivots,
        te: (0..n).map(|_| None).collect(),
        nte: vec![Vec::new(); n],
        candidates: vec![Vec::new(); n],
    };
    let mut profile = FilterProfile::new(threads);
    let filters: Vec<NodeFilter> = plan
        .query()
        .vertices()
        .map(|u| NodeFilter {
            nlc: plan.query().neighborhood_label_counts(u),
        })
        .collect();

    let mut frontier: Vec<VertexId> = Vec::new();

    // Phase A: TE tables in matching order (root skipped).
    for &u in plan.matching_order().iter().skip(1) {
        let up = plan
            .tree()
            .parent(u)
            .expect("non-root nodes have tree parents");
        frontier.clear();
        frontier.extend_from_slice(state.candidates_of(plan, up));
        let (table, emptied) =
            fill_table(graph, plan, &filters, u, &frontier, threads, &mut profile);
        state.candidates[u.index()] = table.value_union();
        state.te[u.index()] = Some(table);
        for vf in emptied {
            state.remove_candidate(plan, up, vf);
        }
    }

    // Phase B: NTE tables in matching order.
    for &u in plan.matching_order().iter() {
        for &un in plan.backward_nte(u) {
            frontier.clear();
            frontier.extend_from_slice(state.candidates_of(plan, un));
            let (table, emptied) =
                fill_table(graph, plan, &filters, u, &frontier, threads, &mut profile);
            state.nte[u.index()].push((un, table));
            for vf in emptied {
                state.remove_candidate(plan, un, vf);
            }
        }
    }
    (state, profile)
}

/// One chunk's output from a parallel fan-out: a private mini-table in
/// frontier order.
struct ChunkRun {
    /// Chunk index — merge order.
    chunk: usize,
    /// `(frontier vertex, value count)` for non-empty entries, in order.
    keys: Vec<(VertexId, u32)>,
    /// Concatenated value lists of `keys`.
    arena: Vec<VertexId>,
    /// Frontier vertices whose expansion came up empty (cascade input).
    emptied: Vec<VertexId>,
}

/// Expands one table's frontier, sequentially or across the worker pool.
/// Returns the filled table and the emptied frontier vertices in frontier
/// order.
fn fill_table(
    graph: &Graph,
    plan: &QueryPlan,
    filters: &[NodeFilter],
    u: VertexId,
    frontier: &[VertexId],
    threads: usize,
    profile: &mut FilterProfile,
) -> (BuildTable, Vec<VertexId>) {
    if threads <= 1 || frontier.len() < PARALLEL_FRONTIER_MIN {
        return fill_table_sequential(graph, plan, filters, u, frontier);
    }
    fill_table_parallel(graph, plan, filters, u, frontier, threads, profile)
}

/// Sequential path: filters every frontier vertex straight into the table
/// arena ([`BuildTable::push_key_with`] — zero staging copies).
fn fill_table_sequential(
    graph: &Graph,
    plan: &QueryPlan,
    filters: &[NodeFilter],
    u: VertexId,
    frontier: &[VertexId],
) -> (BuildTable, Vec<VertexId>) {
    let mut table = BuildTable::with_capacity(frontier.len(), 0);
    let mut emptied: Vec<VertexId> = Vec::new();
    for &vf in frontier {
        let written = table.push_key_with(vf, |arena| {
            filter_into(graph, plan, filters, u, vf, arena);
        });
        if written == 0 {
            emptied.push(vf);
        }
    }
    (table, emptied)
}

/// Parallel path: contiguous frontier chunks are assigned to workers in a
/// strided round-robin (worker `w` takes chunks `w, w+threads, …`) and
/// filtered into private arenas; the merge stitches the chunk runs in chunk
/// (= frontier) order, reproducing the sequential table exactly. The static
/// stride keeps the per-worker work split independent of OS scheduling, so
/// the measured per-worker CPU busy time models a `threads`-core machine
/// even when the host has fewer cores.
fn fill_table_parallel(
    graph: &Graph,
    plan: &QueryPlan,
    filters: &[NodeFilter],
    u: VertexId,
    frontier: &[VertexId],
    threads: usize,
    profile: &mut FilterProfile,
) -> (BuildTable, Vec<VertexId>) {
    let chunk_size = frontier.len().div_ceil(threads * 4).max(CHUNK_MIN);
    let num_chunks = frontier.len().div_ceil(chunk_size);

    let t_fanout = Instant::now();
    let worker_results: Vec<(Duration, Vec<ChunkRun>)> = scoped_workers(threads, |w| {
        let timer = ThreadTimer::start();
        let mut runs: Vec<ChunkRun> = Vec::new();
        let mut c = w;
        while c < num_chunks {
            let lo = c * chunk_size;
            let hi = ((c + 1) * chunk_size).min(frontier.len());
            let mut run = ChunkRun {
                chunk: c,
                keys: Vec::new(),
                arena: Vec::new(),
                emptied: Vec::new(),
            };
            for &vf in &frontier[lo..hi] {
                let before = run.arena.len();
                filter_into(graph, plan, filters, u, vf, &mut run.arena);
                let len = run.arena.len() - before;
                if len == 0 {
                    run.emptied.push(vf);
                } else {
                    run.keys.push((vf, len as u32));
                }
            }
            runs.push(run);
            c += threads;
        }
        (timer.elapsed(), runs)
    });
    profile.fanout_wall += t_fanout.elapsed();

    let t_merge = Instant::now();
    let mut by_chunk: Vec<Option<ChunkRun>> = (0..num_chunks).map(|_| None).collect();
    let mut total_entries = 0usize;
    for (w, (busy, runs)) in worker_results.into_iter().enumerate() {
        profile.worker_busy[w] += busy;
        for run in runs {
            total_entries += run.arena.len();
            let c = run.chunk;
            by_chunk[c] = Some(run);
        }
    }
    let mut table = BuildTable::with_capacity(frontier.len(), total_entries);
    let mut emptied: Vec<VertexId> = Vec::new();
    for run in by_chunk.into_iter() {
        let run = run.expect("every chunk produces a run");
        table.push_run(&run.keys, &run.arena);
        emptied.extend(run.emptied);
    }
    profile.merge_time += t_merge.elapsed();
    (table, emptied)
}

/// Appends the neighbors of `vf` passing LF, DF, and NLCF for query node `u`
/// to `out`. Appended values are sorted because adjacency lists are sorted
/// and filtering preserves order.
fn filter_into(
    graph: &Graph,
    plan: &QueryPlan,
    filters: &[NodeFilter],
    u: VertexId,
    vf: VertexId,
    out: &mut Vec<VertexId>,
) {
    let query = plan.query();
    let nlc = &filters[u.index()].nlc;
    out.extend(
        graph
            .neighbors(vf)
            .iter()
            .copied()
            .filter(|&v| label_filter(query, graph, u, v))
            .filter(|&v| degree_filter(query, graph, u, v))
            .filter(|&v| nlc_filter(nlc, graph, v)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper;
    use ceci_graph::vid;

    #[test]
    fn paper_te_tables_after_filtering() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // Pivots: v2 removed by the cascade (te[u3][v2] empty after NLCF
        // prunes v8) → only v1 survives.
        assert_eq!(state.pivots, vec![paper::v(1)]);
        // te[u2]: <v1, {v3, v5, v7}> (key v2 cascaded away).
        let te_u2 = state.te[paper::u(2).index()].as_ref().unwrap();
        assert_eq!(
            te_u2.get(paper::v(1)),
            Some(&[paper::v(3), paper::v(5), paper::v(7)][..])
        );
        assert_eq!(te_u2.get(paper::v(2)), None);
        // te[u3]: <v1, {v4, v6}>.
        let te_u3 = state.te[paper::u(3).index()].as_ref().unwrap();
        assert_eq!(
            te_u3.get(paper::v(1)),
            Some(&[paper::v(4), paper::v(6)][..])
        );
        assert_eq!(te_u3.get(paper::v(2)), None);
        // te[u4]: <v3,{v11}>, <v5,{v13}>, <v7,{v15}>.
        let te_u4 = state.te[paper::u(4).index()].as_ref().unwrap();
        assert_eq!(te_u4.get(paper::v(3)), Some(&[paper::v(11)][..]));
        assert_eq!(te_u4.get(paper::v(5)), Some(&[paper::v(13)][..]));
        assert_eq!(te_u4.get(paper::v(7)), Some(&[paper::v(15)][..]));
        // te[u5]: <v4,{v12}>, <v6,{v14}>.
        let te_u5 = state.te[paper::u(5).index()].as_ref().unwrap();
        assert_eq!(te_u5.get(paper::v(4)), Some(&[paper::v(12)][..]));
        assert_eq!(te_u5.get(paper::v(6)), Some(&[paper::v(14)][..]));
    }

    #[test]
    fn paper_nte_tables_after_filtering() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // nte[u3] (parent u2): <v3,{v4}>, <v5,{v4,v6}>, <v7,{v6}> — v8 pruned
        // by NLCF.
        let nte_u3 = &state.nte[paper::u(3).index()];
        assert_eq!(nte_u3.len(), 1);
        assert_eq!(nte_u3[0].0, paper::u(2));
        let t = &nte_u3[0].1;
        assert_eq!(t.get(paper::v(3)), Some(&[paper::v(4)][..]));
        assert_eq!(t.get(paper::v(5)), Some(&[paper::v(4), paper::v(6)][..]));
        assert_eq!(t.get(paper::v(7)), Some(&[paper::v(6)][..]));
        // nte[u4] (parent u3): <v4,{v11}>, <v6,{v13}>.
        let nte_u4 = &state.nte[paper::u(4).index()];
        assert_eq!(nte_u4.len(), 1);
        assert_eq!(nte_u4[0].0, paper::u(3));
        let t = &nte_u4[0].1;
        assert_eq!(t.get(paper::v(4)), Some(&[paper::v(11)][..]));
        assert_eq!(t.get(paper::v(6)), Some(&[paper::v(13)][..]));
    }

    #[test]
    fn candidate_sets_match_paper() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        assert_eq!(
            state.candidates_of(&plan, paper::u(2)),
            &[paper::v(3), paper::v(5), paper::v(7)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(3)),
            &[paper::v(4), paper::v(6)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(4)),
            &[paper::v(11), paper::v(13), paper::v(15)]
        );
        assert_eq!(
            state.candidates_of(&plan, paper::u(5)),
            &[paper::v(12), paper::v(14)]
        );
    }

    #[test]
    fn cached_candidates_track_value_unions() {
        // The cache must equal a fresh value_union() at every observation
        // point — during filtering the only mutation path is
        // remove_candidate, which maintains it.
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        for u in plan.query().vertices() {
            if u == plan.root() {
                continue;
            }
            let cached = state.candidates_of(&plan, u).to_vec();
            let fresh = state.te[u.index()].as_ref().unwrap().value_union();
            assert_eq!(cached, fresh, "cache out of sync at node {u:?}");
        }
    }

    #[test]
    fn entry_counts() {
        let (graph, plan) = paper::figure1();
        let state = bfs_filter(&graph, &plan);
        // TE: u2:3 + u3:2 + u4:3 + u5:2 = 10
        assert_eq!(state.te_entries(), 10);
        // NTE: u3:4 + u4:2 = 6
        assert_eq!(state.nte_entries(), 6);
        assert!(state.arena_bytes() >= 16 * std::mem::size_of::<VertexId>());
    }

    #[test]
    fn single_vertex_query_only_pivots() {
        let graph = ceci_graph::Graph::unlabeled(3, &[(vid(0), vid(1))]);
        let query = ceci_query::QueryGraph::unlabeled(1, &[]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let state = bfs_filter(&graph, &plan);
        assert_eq!(state.pivots.len(), 3);
        assert_eq!(state.te_entries(), 0);
    }

    #[test]
    fn parallel_build_matches_sequential_on_fixture() {
        let (graph, plan) = paper::figure1();
        let pivots = plan.initial_candidates(plan.root()).to_vec();
        let (seq, p1) = bfs_filter_from_with(&graph, &plan, pivots.clone(), 1);
        for threads in [2usize, 4, 8] {
            let (par, pp) = bfs_filter_from_with(&graph, &plan, pivots.clone(), threads);
            assert_eq!(pp.threads, threads);
            assert_eq!(seq.pivots, par.pivots);
            assert_eq!(seq.te_entries(), par.te_entries());
            assert_eq!(seq.nte_entries(), par.nte_entries());
            for u in plan.query().vertices() {
                assert_eq!(
                    seq.candidates_of(&plan, u),
                    par.candidates_of(&plan, u),
                    "candidates diverge at {u:?} with {threads} threads"
                );
            }
        }
        assert_eq!(p1.threads, 1);
        assert_eq!(p1.fanout_wall, Duration::ZERO);
    }

    #[test]
    fn parallel_fanout_engages_on_large_frontier() {
        // A star graph gives the root's child a frontier of `n` hub
        // candidates... too small; instead use many root candidates: an
        // unlabeled edge query on a large random-ish graph so the root
        // frontier exceeds PARALLEL_FRONTIER_MIN.
        let n = 512u32;
        let edges: Vec<(VertexId, VertexId)> = (0..n).map(|i| (vid(i), vid((i + 1) % n))).collect();
        let graph = ceci_graph::Graph::unlabeled(n as usize, &edges);
        let query = ceci_query::QueryGraph::unlabeled(2, &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(query, &graph);
        let pivots = plan.initial_candidates(plan.root()).to_vec();
        assert!(pivots.len() >= PARALLEL_FRONTIER_MIN);
        let (seq, _) = bfs_filter_from_with(&graph, &plan, pivots.clone(), 1);
        let (par, profile) = bfs_filter_from_with(&graph, &plan, pivots, 4);
        assert!(profile.fanout_wall > Duration::ZERO, "fan-out never ran");
        assert_eq!(profile.worker_busy.len(), 4);
        assert_eq!(seq.te_entries(), par.te_entries());
        for u in plan.query().vertices() {
            assert_eq!(seq.candidates_of(&plan, u), par.candidates_of(&plan, u));
        }
    }
}
