//! Sorted-set intersection kernels (§4, §4.1).
//!
//! CECI replaces per-candidate edge verification with set intersection
//! between TE and NTE candidate lists. Lists are sorted `u32` id vectors, so
//! intersection is a linear merge — or a galloping binary search when one
//! side is much shorter. Kernels report the number of element comparisons
//! into the caller's counter so the §4.1 ablation can compare work done.

use ceci_graph::VertexId;

/// Threshold ratio above which the galloping kernel beats the merge kernel.
const GALLOP_RATIO: usize = 16;

/// Intersects two sorted slices into `out` (cleared first). Adds the number
/// of comparisons performed to `ops`.
pub fn intersect_into(
    a: &[VertexId],
    b: &[VertexId],
    out: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if large.len() / small.len() >= GALLOP_RATIO {
        gallop_intersect(small, large, out, ops);
    } else {
        merge_intersect(a, b, out, ops);
    }
}

fn merge_intersect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>, ops: &mut u64) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        *ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn gallop_intersect(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>, ops: &mut u64) {
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from `lo`. After the loop, everything before
        // `base` is `< x` and the probe stopped at `hi` with
        // `large[hi] >= x` (or ran off the end), so the candidate window is
        // `[base, hi]` inclusive.
        let mut step = 1usize;
        let mut base = lo;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            *ops += 1;
            base = hi + 1;
            hi += step;
            step *= 2;
        }
        let end = large.len().min(hi + 1);
        let window = &large[base..end];
        *ops += (window.len().max(1) as f64).log2().ceil() as u64 + 1;
        match window.binary_search(&x) {
            Ok(k) => {
                out.push(x);
                lo = base + k + 1;
            }
            Err(k) => {
                lo = base + k;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Intersects `base` with each list in `others`, writing the final result to
/// `out`. Uses `scratch` as the ping-pong buffer. Short-circuits to empty.
pub fn intersect_many_into(
    base: &[VertexId],
    others: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    out.clear();
    out.extend_from_slice(base);
    for list in others {
        if out.is_empty() {
            return;
        }
        scratch.clear();
        std::mem::swap(out, scratch);
        intersect_into(scratch, list, out, ops);
    }
}

/// Membership test on a sorted slice, counting comparisons.
#[inline]
pub fn sorted_contains(list: &[VertexId], x: VertexId, ops: &mut u64) -> bool {
    *ops += (list.len().max(1) as f64).log2().ceil() as u64 + 1;
    list.binary_search(&x).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| vid(i)).collect()
    }

    #[test]
    fn merge_basic() {
        let mut out = Vec::new();
        let mut ops = 0;
        intersect_into(&v(&[1, 3, 5, 7]), &v(&[2, 3, 6, 7, 9]), &mut out, &mut ops);
        assert_eq!(out, v(&[3, 7]));
        assert!(ops > 0);
    }

    #[test]
    fn empty_inputs() {
        let mut out = v(&[9]);
        let mut ops = 0;
        intersect_into(&v(&[]), &v(&[1, 2]), &mut out, &mut ops);
        assert!(out.is_empty());
        intersect_into(&v(&[1, 2]), &v(&[]), &mut out, &mut ops);
        assert!(out.is_empty());
        assert_eq!(ops, 0);
    }

    #[test]
    fn disjoint_and_identical() {
        let mut out = Vec::new();
        let mut ops = 0;
        intersect_into(&v(&[1, 2]), &v(&[3, 4]), &mut out, &mut ops);
        assert!(out.is_empty());
        intersect_into(&v(&[1, 2, 3]), &v(&[1, 2, 3]), &mut out, &mut ops);
        assert_eq!(out, v(&[1, 2, 3]));
    }

    #[test]
    fn gallop_kicks_in_for_skewed_sizes() {
        let small = v(&[5, 500, 995]);
        let large: Vec<VertexId> = (0..1000).map(vid).collect();
        let mut out = Vec::new();
        let mut ops = 0;
        intersect_into(&small, &large, &mut out, &mut ops);
        assert_eq!(out, v(&[5, 500, 995]));
        // Galloping must do far fewer comparisons than a full merge.
        assert!(ops < 500, "gallop ops = {ops}");
    }

    #[test]
    fn gallop_matches_merge_results() {
        // Cross-check the two kernels on assorted skewed inputs.
        for (si, li) in [(3usize, 100usize), (5, 200), (1, 50), (7, 400)] {
            let small: Vec<VertexId> = (0..si as u32).map(|i| vid(i * 13 + 1)).collect();
            let large: Vec<VertexId> = (0..li as u32).map(|i| vid(i * 2)).collect();
            let (mut out_g, mut out_m) = (Vec::new(), Vec::new());
            let mut ops = 0;
            gallop_intersect(&small, &large, &mut out_g, &mut ops);
            merge_intersect(&small, &large, &mut out_m, &mut ops);
            assert_eq!(out_g, out_m, "mismatch for sizes ({si},{li})");
        }
    }

    #[test]
    fn gallop_hits_probe_boundary_matches() {
        // Regression: an element equal to the value at the probe's stopping
        // position must not be skipped (window must be inclusive of `hi`).
        let large: Vec<VertexId> = (0..64u32).map(|i| vid(i * 2)).collect();
        // x = 2 stops the very first probe at index 1 where large[1] == 2.
        let small = v(&[2]);
        let mut out = Vec::new();
        let mut ops = 0;
        gallop_intersect(&small, &large, &mut out, &mut ops);
        assert_eq!(out, v(&[2]));
        // First element of `large` itself (empty probe loop).
        let mut out = Vec::new();
        gallop_intersect(&v(&[0]), &large, &mut out, &mut ops);
        assert_eq!(out, v(&[0]));
    }

    #[test]
    fn gallop_exhaustive_cross_check() {
        // Every subset size against a fixed large list, all offsets: gallop
        // and merge must agree element-for-element.
        let large: Vec<VertexId> = (0..200u32).map(|i| vid(i * 3 + 1)).collect();
        for stride in 1..8u32 {
            for offset in 0..6u32 {
                let small: Vec<VertexId> =
                    (0..40u32).map(|i| vid(i * stride * 3 + offset)).collect();
                let (mut g, mut m) = (Vec::new(), Vec::new());
                let mut ops = 0;
                gallop_intersect(&small, &large, &mut g, &mut ops);
                merge_intersect(&small, &large, &mut m, &mut ops);
                assert_eq!(g, m, "stride {stride} offset {offset}");
            }
        }
    }

    #[test]
    fn many_way_intersection() {
        let base = v(&[1, 2, 3, 4, 5, 6]);
        let b = v(&[2, 4, 6, 8]);
        let c = v(&[1, 2, 4, 5, 6]);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ops = 0;
        intersect_many_into(&base, &[&b, &c], &mut out, &mut scratch, &mut ops);
        assert_eq!(out, v(&[2, 4, 6]));
    }

    #[test]
    fn many_way_short_circuits() {
        let base = v(&[1, 2]);
        let empty = v(&[]);
        let c = v(&[1]);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ops = 0;
        intersect_many_into(&base, &[&empty, &c], &mut out, &mut scratch, &mut ops);
        assert!(out.is_empty());
    }

    #[test]
    fn many_way_no_others_copies_base() {
        let base = v(&[4, 8]);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ops = 0;
        intersect_many_into(&base, &[], &mut out, &mut scratch, &mut ops);
        assert_eq!(out, base);
    }

    #[test]
    fn sorted_contains_counts() {
        let list = v(&[1, 4, 9]);
        let mut ops = 0;
        assert!(sorted_contains(&list, vid(4), &mut ops));
        assert!(!sorted_contains(&list, vid(5), &mut ops));
        assert!(ops >= 2);
    }
}
