//! Sorted-set intersection kernels (§4, §4.1).
//!
//! CECI replaces per-candidate edge verification with set intersection
//! between TE and NTE candidate lists. Lists are sorted `u32` id vectors, so
//! intersection is a linear merge — or a galloping binary search when one
//! side is much shorter, or a SIMD block scan when the hardware has 128-bit
//! compares. This module provides the full kernel suite behind a single
//! [`Kernel`] selector so the §4.1 ablation can pin any kernel, plus an
//! adaptive dispatcher driven by the size ratio of the two lists.
//!
//! Kernels report the number of element comparisons into the caller's
//! counter. Counting is **exact integer math** (actual probes, no
//! `log2`-based estimates) so ablation numbers reproduce bit-for-bit across
//! platforms. For SIMD probes, one 4-lane vector compare counts as 4
//! element comparisons — the scalar-equivalent work, keeping op counts
//! comparable across kernels.

use ceci_graph::VertexId;

/// Threshold ratio above which the galloping kernel beats the merge-style
/// kernels. Tuned on the skew sweep in `crates/bench/benches/intersection.rs`.
pub const GALLOP_RATIO: usize = 16;

/// Width of one SIMD probe block in `u32` lanes (two 128-bit SSE2 vectors).
const SIMD_BLOCK: usize = 8;

/// Selects the intersection kernel used by the enumeration hot path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Pick per call site by size ratio: galloping for skewed pairs, SIMD
    /// block scan otherwise (branchless merge where SIMD is unavailable).
    #[default]
    Adaptive,
    /// Scalar two-pointer merge — the reference kernel.
    Merge,
    /// Branch-free two-pointer merge (predicated advances, unconditional
    /// writes) — avoids the branch mispredictions of [`Kernel::Merge`] on
    /// unpredictable data.
    BranchlessMerge,
    /// Exponential probe + binary search of the larger list for each element
    /// of the smaller list.
    Gallop,
    /// Block scan of the larger list with chunked `u32` equality compares
    /// (SSE2 on x86_64, an auto-vectorizable portable loop elsewhere).
    Simd,
}

impl Kernel {
    /// All concrete (non-adaptive) kernels, for ablation sweeps.
    pub const CONCRETE: [Kernel; 4] = [
        Kernel::Merge,
        Kernel::BranchlessMerge,
        Kernel::Gallop,
        Kernel::Simd,
    ];

    /// Short display name (bench labels, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Adaptive => "adaptive",
            Kernel::Merge => "merge",
            Kernel::BranchlessMerge => "branchless",
            Kernel::Gallop => "gallop",
            Kernel::Simd => "simd",
        }
    }

    /// Parses a kernel name as produced by [`Kernel::name`].
    pub fn parse(name: &str) -> Option<Kernel> {
        match name {
            "adaptive" => Some(Kernel::Adaptive),
            "merge" => Some(Kernel::Merge),
            "branchless" => Some(Kernel::BranchlessMerge),
            "gallop" => Some(Kernel::Gallop),
            "simd" => Some(Kernel::Simd),
            _ => None,
        }
    }
}

/// Intersects two sorted slices into `out` (cleared first) using the
/// adaptive kernel. Adds the number of comparisons performed to `ops`.
#[inline]
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>, ops: &mut u64) {
    intersect_with(Kernel::Adaptive, a, b, out, ops);
}

/// Intersects two sorted slices into `out` (cleared first) with an explicit
/// kernel. Adds the number of comparisons performed to `ops`.
pub fn intersect_with(
    kernel: Kernel,
    a: &[VertexId],
    b: &[VertexId],
    out: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match kernel {
        Kernel::Adaptive => {
            if large.len() / small.len() >= GALLOP_RATIO {
                gallop_intersect(small, large, out, ops);
            } else if cfg!(target_arch = "x86_64") {
                simd_intersect(small, large, out, ops);
            } else {
                branchless_merge_intersect(small, large, out, ops);
            }
        }
        Kernel::Merge => merge_intersect(small, large, out, ops),
        Kernel::BranchlessMerge => branchless_merge_intersect(small, large, out, ops),
        Kernel::Gallop => gallop_intersect(small, large, out, ops),
        Kernel::Simd => simd_intersect(small, large, out, ops),
    }
}

/// Scalar two-pointer merge — the reference kernel every other kernel is
/// differentially tested against.
pub fn merge_intersect(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>, ops: &mut u64) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        *ops += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Branch-free two-pointer merge: the match is written unconditionally and
/// the output cursor advances by the comparison result, so the loop body has
/// no data-dependent branches for the predictor to miss.
pub fn branchless_merge_intersect(
    a: &[VertexId],
    b: &[VertexId],
    out: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    let cap = a.len().min(b.len());
    // Unconditional writes need writable slots; the buffer is truncated to
    // the real size afterwards. `resize` reuses capacity across calls, so
    // steady-state recursion does not allocate.
    out.resize(cap, VertexId(0));
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i].0, b[j].0);
        out[k] = a[i];
        k += (x == y) as usize;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
        *ops += 1;
    }
    out.truncate(k);
}

/// Exponential probe + exact-counted binary search of `large` for each
/// element of `small`. Comparisons are counted per actual probe — no
/// estimates — so op totals are deterministic across platforms.
pub fn gallop_intersect(
    small: &[VertexId],
    large: &[VertexId],
    out: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from `lo`. After the loop, everything before
        // `base` is `< x` and the probe stopped at `hi` with
        // `large[hi] >= x` (or ran off the end), so the candidate window is
        // `[base, hi]` inclusive.
        let mut step = 1usize;
        let mut base = lo;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            *ops += 1;
            base = hi + 1;
            hi += step;
            step *= 2;
        }
        if hi < large.len() {
            // The probe comparison that stopped the loop.
            *ops += 1;
        }
        let end = large.len().min(hi + 1);
        match counted_binary_search(&large[base..end], x, ops) {
            Ok(k) => {
                out.push(x);
                lo = base + k + 1;
            }
            Err(k) => {
                lo = base + k;
            }
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Binary search that counts every element comparison it performs.
#[inline]
fn counted_binary_search(window: &[VertexId], x: VertexId, ops: &mut u64) -> Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, window.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *ops += 1;
        match window[mid].cmp(&x) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Reinterprets a sorted candidate list as raw `u32` lanes.
///
/// Sound because [`VertexId`] is `#[repr(transparent)]` over `u32`.
#[inline]
fn as_lanes(v: &[VertexId]) -> &[u32] {
    // SAFETY: VertexId is repr(transparent) over u32, so the slices have
    // identical layout, alignment, and length.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u32>(), v.len()) }
}

/// Block-scan intersection: for each element of `small`, skip 8-lane blocks
/// of `large` whose maximum is below the needle, then equality-test the
/// block with two 128-bit compares (SSE2) or an auto-vectorizable portable
/// loop. The block cursor only moves forward, so total work is
/// `O(|small| + |large|/8 + hits)` at every size ratio.
pub fn simd_intersect(
    small: &[VertexId],
    large: &[VertexId],
    out: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    let lanes = as_lanes(large);
    let full_blocks = lanes.len() / SIMD_BLOCK;
    let mut block = 0usize;
    let mut i = 0usize;
    while i < small.len() {
        let x = small[i].0;
        // Skip whole blocks strictly below the needle. One comparison
        // against the block maximum per skipped/tested block.
        while block < full_blocks {
            *ops += 1;
            if lanes[block * SIMD_BLOCK + SIMD_BLOCK - 1] < x {
                block += 1;
            } else {
                break;
            }
        }
        if block == full_blocks {
            break; // fall through to the scalar tail below
        }
        let start = block * SIMD_BLOCK;
        if probe_block_eq(&lanes[start..start + SIMD_BLOCK], x, ops) {
            out.push(small[i]);
        }
        i += 1;
    }
    if i < small.len() {
        // Scalar tail: the remaining needles against the < 8 trailing lanes.
        let tail_start = full_blocks * SIMD_BLOCK;
        merge_intersect(&small[i..], &large[tail_start..], out, ops);
    }
}

/// Equality-tests one 8-lane block against a broadcast needle. Returns
/// whether the needle occurs. Counts one op per 4-lane vector compare ×
/// 4 lanes (scalar-equivalent work).
#[inline]
fn probe_block_eq(block: &[u32], x: u32, ops: &mut u64) -> bool {
    debug_assert_eq!(block.len(), SIMD_BLOCK);
    *ops += SIMD_BLOCK as u64;
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is part of the x86_64 baseline; the two loads read
        // 16 bytes each from a slice asserted to hold 8 u32 lanes.
        unsafe {
            use std::arch::x86_64::{
                _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi32,
            };
            let needle = _mm_set1_epi32(x as i32);
            let lo = _mm_loadu_si128(block.as_ptr().cast());
            let hi = _mm_loadu_si128(block.as_ptr().add(4).cast());
            let eq = _mm_or_si128(_mm_cmpeq_epi32(lo, needle), _mm_cmpeq_epi32(hi, needle));
            _mm_movemask_epi8(eq) != 0
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Portable 8-wide equality reduction; LLVM vectorizes this shape.
        let mut hit = false;
        for &lane in block {
            hit |= lane == x;
        }
        hit
    }
}

/// Intersects `base` with each list in `others`, writing the final result to
/// `out`. Uses `scratch` as the ping-pong buffer (buffers are reused, not
/// reallocated). Short-circuits to empty. Uses the adaptive kernel.
#[inline]
pub fn intersect_many_into(
    base: &[VertexId],
    others: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    intersect_many_with(Kernel::Adaptive, base, others, out, scratch, ops);
}

/// [`intersect_many_into`] with an explicit kernel.
pub fn intersect_many_with(
    kernel: Kernel,
    base: &[VertexId],
    others: &[&[VertexId]],
    out: &mut Vec<VertexId>,
    scratch: &mut Vec<VertexId>,
    ops: &mut u64,
) {
    out.clear();
    out.extend_from_slice(base);
    for list in others {
        if out.is_empty() {
            return;
        }
        std::mem::swap(out, scratch);
        intersect_with(kernel, scratch, list, out, ops);
    }
}

/// Membership test on a sorted slice, counting each probe actually made.
#[inline]
pub fn sorted_contains(list: &[VertexId], x: VertexId, ops: &mut u64) -> bool {
    counted_binary_search(list, x, ops).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_graph::vid;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| vid(i)).collect()
    }

    fn run(kernel: Kernel, a: &[VertexId], b: &[VertexId]) -> (Vec<VertexId>, u64) {
        let mut out = Vec::new();
        let mut ops = 0;
        intersect_with(kernel, a, b, &mut out, &mut ops);
        (out, ops)
    }

    #[test]
    fn merge_basic() {
        let (out, ops) = run(Kernel::Merge, &v(&[1, 3, 5, 7]), &v(&[2, 3, 6, 7, 9]));
        assert_eq!(out, v(&[3, 7]));
        assert!(ops > 0);
    }

    #[test]
    fn empty_inputs_all_kernels() {
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let (out, ops) = run(kernel, &v(&[]), &v(&[1, 2]));
            assert!(out.is_empty(), "{kernel:?}");
            assert_eq!(ops, 0, "{kernel:?}");
            let (out, _) = run(kernel, &v(&[1, 2]), &v(&[]));
            assert!(out.is_empty(), "{kernel:?}");
        }
    }

    #[test]
    fn disjoint_and_identical_all_kernels() {
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let (out, _) = run(kernel, &v(&[1, 2]), &v(&[3, 4]));
            assert!(out.is_empty(), "{kernel:?}");
            let (out, _) = run(kernel, &v(&[1, 2, 3]), &v(&[1, 2, 3]));
            assert_eq!(out, v(&[1, 2, 3]), "{kernel:?}");
        }
    }

    #[test]
    fn gallop_kicks_in_for_skewed_sizes() {
        let small = v(&[5, 500, 995]);
        let large: Vec<VertexId> = (0..1000).map(vid).collect();
        let (out, ops) = run(Kernel::Adaptive, &small, &large);
        assert_eq!(out, v(&[5, 500, 995]));
        // Galloping must do far fewer comparisons than a full merge.
        assert!(ops < 500, "gallop ops = {ops}");
    }

    #[test]
    fn all_kernels_match_reference() {
        // Cross-check every kernel on assorted skewed inputs.
        for (si, li) in [(3usize, 100usize), (5, 200), (1, 50), (7, 400), (64, 64)] {
            let small: Vec<VertexId> = (0..si as u32).map(|i| vid(i * 13 + 1)).collect();
            let large: Vec<VertexId> = (0..li as u32).map(|i| vid(i * 2)).collect();
            let (reference, _) = run(Kernel::Merge, &small, &large);
            for kernel in [
                Kernel::BranchlessMerge,
                Kernel::Gallop,
                Kernel::Simd,
                Kernel::Adaptive,
            ] {
                let (out, _) = run(kernel, &small, &large);
                assert_eq!(out, reference, "{kernel:?} mismatch for sizes ({si},{li})");
            }
        }
    }

    #[test]
    fn gallop_hits_probe_boundary_matches() {
        // Regression: an element equal to the value at the probe's stopping
        // position must not be skipped (window must be inclusive of `hi`).
        let large: Vec<VertexId> = (0..64u32).map(|i| vid(i * 2)).collect();
        // x = 2 stops the very first probe at index 1 where large[1] == 2.
        let small = v(&[2]);
        let mut out = Vec::new();
        let mut ops = 0;
        gallop_intersect(&small, &large, &mut out, &mut ops);
        assert_eq!(out, v(&[2]));
        // First element of `large` itself (empty probe loop).
        let mut out = Vec::new();
        gallop_intersect(&v(&[0]), &large, &mut out, &mut ops);
        assert_eq!(out, v(&[0]));
    }

    #[test]
    fn exhaustive_cross_check() {
        // Every kernel against the merge reference across strides/offsets.
        let large: Vec<VertexId> = (0..200u32).map(|i| vid(i * 3 + 1)).collect();
        for stride in 1..8u32 {
            for offset in 0..6u32 {
                let small: Vec<VertexId> =
                    (0..40u32).map(|i| vid(i * stride * 3 + offset)).collect();
                let (reference, _) = run(Kernel::Merge, &small, &large);
                for kernel in [Kernel::BranchlessMerge, Kernel::Gallop, Kernel::Simd] {
                    let (out, _) = run(kernel, &small, &large);
                    assert_eq!(out, reference, "{kernel:?} stride {stride} offset {offset}");
                }
            }
        }
    }

    #[test]
    fn simd_block_boundaries() {
        // Matches at every lane position of a block, lists not a multiple of
        // the block width, and needles beyond the last block.
        let large: Vec<VertexId> = (0..37u32).map(|i| vid(i * 5)).collect();
        for lane in 0..37u32 {
            let needle = v(&[lane * 5]);
            let (out, _) = run(Kernel::Simd, &needle, &large);
            assert_eq!(out, needle, "lane {lane}");
            let miss = v(&[lane * 5 + 1]);
            let (out, _) = run(Kernel::Simd, &miss, &large);
            assert!(out.is_empty(), "lane {lane} false positive");
        }
    }

    #[test]
    fn simd_tail_only_lists() {
        // Lists shorter than one block exercise the scalar tail exclusively.
        let a = v(&[1, 4, 6]);
        let b = v(&[2, 4, 6, 9]);
        let (out, _) = run(Kernel::Simd, &a, &b);
        assert_eq!(out, v(&[4, 6]));
    }

    #[test]
    fn op_counts_are_deterministic() {
        let a: Vec<VertexId> = (0..123u32).map(|i| vid(i * 7 + 3)).collect();
        let b: Vec<VertexId> = (0..999u32).map(|i| vid(i * 2)).collect();
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let (_, ops1) = run(kernel, &a, &b);
            let (_, ops2) = run(kernel, &a, &b);
            assert_eq!(ops1, ops2, "{kernel:?} non-deterministic ops");
            assert!(ops1 > 0, "{kernel:?} counted no work");
        }
    }

    #[test]
    fn gallop_counts_fewer_ops_than_merge_when_skewed() {
        let small: Vec<VertexId> = (0..8u32).map(|i| vid(i * 100)).collect();
        let large: Vec<VertexId> = (0..4096u32).map(vid).collect();
        let (_, merge_ops) = run(Kernel::Merge, &small, &large);
        let (_, gallop_ops) = run(Kernel::Gallop, &small, &large);
        assert!(
            gallop_ops < merge_ops / 4,
            "gallop {gallop_ops} vs merge {merge_ops}"
        );
    }

    #[test]
    fn kernel_names_roundtrip() {
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            assert_eq!(Kernel::parse(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::parse("nope"), None);
    }

    #[test]
    fn many_way_intersection() {
        let base = v(&[1, 2, 3, 4, 5, 6]);
        let b = v(&[2, 4, 6, 8]);
        let c = v(&[1, 2, 4, 5, 6]);
        for kernel in Kernel::CONCRETE.into_iter().chain([Kernel::Adaptive]) {
            let mut out = Vec::new();
            let mut scratch = Vec::new();
            let mut ops = 0;
            intersect_many_with(kernel, &base, &[&b, &c], &mut out, &mut scratch, &mut ops);
            assert_eq!(out, v(&[2, 4, 6]), "{kernel:?}");
        }
    }

    #[test]
    fn many_way_short_circuits() {
        let base = v(&[1, 2]);
        let empty = v(&[]);
        let c = v(&[1]);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ops = 0;
        intersect_many_into(&base, &[&empty, &c], &mut out, &mut scratch, &mut ops);
        assert!(out.is_empty());
    }

    #[test]
    fn many_way_no_others_copies_base() {
        let base = v(&[4, 8]);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let mut ops = 0;
        intersect_many_into(&base, &[], &mut out, &mut scratch, &mut ops);
        assert_eq!(out, base);
    }

    #[test]
    fn sorted_contains_counts_exact_probes() {
        let list = v(&[1, 4, 9]);
        let mut ops = 0;
        assert!(sorted_contains(&list, vid(4), &mut ops));
        // Hit at the midpoint: exactly one probe.
        assert_eq!(ops, 1);
        assert!(!sorted_contains(&list, vid(5), &mut ops));
        // Miss: probes 4 (hit-mid? no — greater/less chain) then 9 then done.
        assert!(ops >= 3);
        let mut empty_ops = 0;
        assert!(!sorted_contains(&[], vid(1), &mut empty_ops));
        assert_eq!(empty_ops, 0);
    }

    #[test]
    fn branchless_reuses_capacity() {
        let a: Vec<VertexId> = (0..64u32).map(|i| vid(i * 2)).collect();
        let b: Vec<VertexId> = (0..64u32).map(|i| vid(i * 3)).collect();
        let mut out = Vec::new();
        let mut ops = 0;
        branchless_merge_intersect(&a, &b, &mut out, &mut ops);
        let cap = out.capacity();
        for _ in 0..8 {
            out.clear();
            branchless_merge_intersect(&a, &b, &mut out, &mut ops);
        }
        assert_eq!(out.capacity(), cap, "steady-state reallocation");
    }
}
