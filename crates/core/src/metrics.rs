//! Instrumentation: counters and phase timelines.
//!
//! Every figure in the paper's evaluation needs one of these numbers —
//! recursive calls (Fig 18), intersection vs edge-verification work (§4.1),
//! per-stage index sizes (Table 2), phase-tagged utilization (Fig 15), and
//! per-worker busy times (Fig 12).

use std::time::{Duration, Instant};

/// CPU time consumed by the *calling thread* so far. Unlike wall-clock
/// [`Instant`], this is immune to preemption: when more workers run than the
/// host has cores (always true for the scalability experiments on small
/// hosts), per-worker CPU time still measures each worker's share of the
/// work, which is what the modeled makespans need.
#[cfg(unix)]
pub fn thread_cpu_time() -> Duration {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; the clock id is a constant.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    } else {
        Duration::ZERO
    }
}

/// Fallback for non-unix targets: wall time since an arbitrary epoch.
#[cfg(not(unix))]
pub fn thread_cpu_time() -> Duration {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Measures the calling thread's CPU time across a region.
#[derive(Clone, Copy, Debug)]
pub struct ThreadTimer {
    start: Duration,
}

impl ThreadTimer {
    /// Starts the timer on the calling thread.
    pub fn start() -> Self {
        ThreadTimer {
            start: thread_cpu_time(),
        }
    }

    /// CPU time this thread has spent since [`ThreadTimer::start`].
    pub fn elapsed(&self) -> Duration {
        thread_cpu_time().saturating_sub(self.start)
    }
}

/// Counters collected by one enumeration run (single worker). Workers each
/// own a `Counters` and the pool merges them, so the hot path has no atomics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Recursive calls into the matching routine — the paper's search-space
    /// proxy (§6.6): one per intermediate-embedding expansion attempt.
    pub recursive_calls: u64,
    /// Embeddings emitted.
    pub embeddings: u64,
    /// Set-intersection operations performed (element comparisons). Counted
    /// exactly as integers — every kernel charges each comparison / probe /
    /// SIMD block-test it actually executes, so the figure is deterministic
    /// and bit-identical across platforms (no floating-point estimates).
    pub intersection_ops: u64,
    /// Edge verifications performed (only in edge-verify ablation mode).
    pub edge_verifications: u64,
    /// Candidates rejected by the injectivity (already-used) check.
    pub injectivity_rejections: u64,
    /// Candidates rejected by symmetry-breaking bounds.
    pub symmetry_rejections: u64,
    /// Sibling subtrees answered by redundant-extension elimination: the
    /// leaf candidate set was provably identical to an already-computed
    /// sibling's, so its result multiset was reused instead of re-enumerated
    /// (CEMR-style pruning; requires `EnumOptions::prune_redundant`).
    pub reused_subtrees: u64,
}

impl Counters {
    /// Sums another worker's counters into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.recursive_calls += other.recursive_calls;
        self.embeddings += other.embeddings;
        self.intersection_ops += other.intersection_ops;
        self.edge_verifications += other.edge_verifications;
        self.injectivity_rejections += other.injectivity_rejections;
        self.symmetry_rejections += other.symmetry_rejections;
        self.reused_subtrees += other.reused_subtrees;
    }
}

/// Program phases for the utilization timeline (Fig 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph loading / IO.
    Load,
    /// Preprocessing: root selection, tree, order, symmetry.
    Preprocess,
    /// CECI creation: BFS filtering.
    Filter,
    /// CECI refinement: reverse-BFS + cardinality.
    Refine,
    /// Work distribution (cluster decomposition, queue setup).
    Distribute,
    /// Parallel embedding enumeration.
    Enumerate,
}

impl Phase {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Load => "load",
            Phase::Preprocess => "preprocess",
            Phase::Filter => "filter",
            Phase::Refine => "refine",
            Phase::Distribute => "distribute",
            Phase::Enumerate => "enumerate",
        }
    }
}

/// A wall-clock record of which phase ran when, and with what parallelism.
/// Drives the Fig 15 CPU-utilization reproduction: utilization during a
/// phase ≈ `active_workers / total_workers`.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimeline {
    entries: Vec<PhaseSpan>,
}

/// One completed phase span.
#[derive(Clone, Copy, Debug)]
pub struct PhaseSpan {
    /// The phase.
    pub phase: Phase,
    /// Wall time the phase took.
    pub duration: Duration,
    /// Workers actively computing during the phase (1 for serial phases).
    pub active_workers: usize,
}

impl PhaseTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` as one span of `phase` with `active_workers` parallelism.
    pub fn record<T>(&mut self, phase: Phase, active_workers: usize, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.entries.push(PhaseSpan {
            phase,
            duration: start.elapsed(),
            active_workers,
        });
        out
    }

    /// Appends a span measured externally.
    pub fn push(&mut self, span: PhaseSpan) {
        self.entries.push(span);
    }

    /// All recorded spans in order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.entries
    }

    /// Total wall time across all spans.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|s| s.duration).sum()
    }

    /// Total time spent in one phase.
    pub fn phase_total(&self, phase: Phase) -> Duration {
        self.entries
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.duration)
            .sum()
    }

    /// Fraction of total wall time spent in `phase` (0 if nothing recorded).
    pub fn phase_fraction(&self, phase: Phase) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.phase_total(phase).as_secs_f64() / total
    }

    /// Mean CPU utilization over the timeline for a machine with
    /// `total_workers` cores: time-weighted `active / total`.
    pub fn mean_utilization(&self, total_workers: usize) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 || total_workers == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .entries
            .iter()
            .map(|s| {
                s.duration.as_secs_f64()
                    * (s.active_workers.min(total_workers) as f64 / total_workers as f64)
            })
            .sum();
        weighted / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = Counters {
            recursive_calls: 10,
            embeddings: 2,
            intersection_ops: 100,
            edge_verifications: 0,
            injectivity_rejections: 3,
            symmetry_rejections: 4,
            reused_subtrees: 2,
        };
        let b = Counters {
            recursive_calls: 5,
            embeddings: 1,
            intersection_ops: 50,
            edge_verifications: 7,
            injectivity_rejections: 1,
            symmetry_rejections: 0,
            reused_subtrees: 1,
        };
        a.merge(&b);
        assert_eq!(a.recursive_calls, 15);
        assert_eq!(a.embeddings, 3);
        assert_eq!(a.intersection_ops, 150);
        assert_eq!(a.edge_verifications, 7);
        assert_eq!(a.injectivity_rejections, 4);
        assert_eq!(a.symmetry_rejections, 4);
        assert_eq!(a.reused_subtrees, 3);
    }

    #[test]
    fn timeline_records_phases() {
        let mut tl = PhaseTimeline::new();
        let x = tl.record(Phase::Filter, 1, || 42);
        assert_eq!(x, 42);
        tl.record(Phase::Enumerate, 8, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        assert_eq!(tl.spans().len(), 2);
        assert!(tl.phase_total(Phase::Enumerate) >= Duration::from_millis(2));
        assert!(tl.total() >= tl.phase_total(Phase::Enumerate));
        assert!(tl.phase_fraction(Phase::Enumerate) > 0.0);
    }

    #[test]
    fn utilization_weighting() {
        let mut tl = PhaseTimeline::new();
        tl.push(PhaseSpan {
            phase: Phase::Filter,
            duration: Duration::from_secs(1),
            active_workers: 1,
        });
        tl.push(PhaseSpan {
            phase: Phase::Enumerate,
            duration: Duration::from_secs(1),
            active_workers: 4,
        });
        // (1·(1/4) + 1·(4/4)) / 2 = 0.625
        assert!((tl.mean_utilization(4) - 0.625).abs() < 1e-9);
        // Active workers clamp to total.
        assert!((tl.mean_utilization(2) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let tl = PhaseTimeline::new();
        assert_eq!(tl.total(), Duration::ZERO);
        assert_eq!(tl.mean_utilization(8), 0.0);
        assert_eq!(tl.phase_fraction(Phase::Load), 0.0);
    }

    #[test]
    fn thread_timer_advances_with_cpu_work() {
        let t = ThreadTimer::start();
        // Busy-spin a little actual CPU work.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(acc);
        assert!(t.elapsed() > Duration::ZERO);
    }

    #[test]
    fn thread_timer_ignores_sleep() {
        // Sleeping consumes (almost) no CPU time.
        let t = ThreadTimer::start();
        std::thread::sleep(Duration::from_millis(30));
        assert!(t.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn phase_names() {
        assert_eq!(Phase::Filter.name(), "filter");
        assert_eq!(Phase::Enumerate.name(), "enumerate");
    }
}
