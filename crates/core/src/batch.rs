//! Shared-prefix batched execution for multi-query workloads.
//!
//! Concurrent MATCHes frequently share the *shape* of the first few
//! matching-order vertices — same label sets, same edges among them — even
//! when their suffixes differ. The per-query work for that prefix (candidate
//! scan, adjacency checks, injectivity) is then identical across the group,
//! so it can be done **once**: build a *shared frontier* of all injective,
//! label- and edge-satisfying assignments of the prefix shape, then fork each
//! query's enumeration from every frontier entry via
//! [`crate::Enumerator::enumerate_prefix`].
//!
//! ## Soundness (superset-frontier argument)
//!
//! The frontier is built *structurally* from the data graph — no per-query
//! CECI refinement — so it is a **superset** of every group member's true
//! prefix space. Forking from a frontier entry outside a member's candidate
//! space yields zero embeddings (the first TE/NTE lookup keyed by a
//! non-candidate image finds no list), never a wrong one: every emission
//! still passes the member's own TE/NTE membership, injectivity, and
//! symmetry checks. Conversely every true embedding's prefix satisfies the
//! structural constraints and therefore appears in the frontier. Counts are
//! bit-identical to unbatched enumeration; the only cost of the superset is
//! wasted forks, bounded by the frontier size.
//!
//! Symmetry constraints *between prefix positions* are per-query (they
//! depend on the suffix automorphisms), so they are applied at fork time by
//! [`enumerate_from_frontier`], not baked into the frontier.

use ceci_graph::{Graph, LabelSet, VertexId};
use ceci_query::QueryPlan;

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::enumerate::{EnumOptions, Enumerator};
use crate::index::Ceci;
use crate::metrics::Counters;
use crate::sink::EmbeddingSink;

/// The structural shape of a matching-order prefix: per-position label sets
/// plus the query edges whose endpoints both fall inside the prefix. Two
/// plans with equal `PrefixSpec`s induce the *same* frontier on the same
/// data graph, which is what makes the frontier shareable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixSpec {
    labels: Vec<LabelSet>,
    /// Prefix-internal edges as `(i, j)` position pairs with `i < j`,
    /// sorted — part of the equality key.
    edges: Vec<(usize, usize)>,
}

impl PrefixSpec {
    /// Extracts the prefix shape of the first `depth` matching-order
    /// vertices. Returns `None` when the order is too short to leave a
    /// non-empty suffix (`depth >= order.len()`) or the prefix is trivial
    /// (`depth == 0`).
    pub fn from_plan(plan: &QueryPlan, depth: usize) -> Option<PrefixSpec> {
        let order = plan.matching_order();
        if depth == 0 || depth >= order.len() {
            return None;
        }
        let query = plan.query();
        let labels: Vec<LabelSet> = order[..depth]
            .iter()
            .map(|&u| query.labels(u).clone())
            .collect();
        let mut edges = Vec::new();
        for &(a, b) in query.edges() {
            let (pa, pb) = (plan.position(a), plan.position(b));
            if pa < depth && pb < depth {
                edges.push((pa.min(pb), pa.max(pb)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Some(PrefixSpec { labels, edges })
    }

    /// Number of prefix positions.
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// A 64-bit grouping signature. Equal specs hash equal; collisions are
    /// tolerable for *grouping* only when the caller re-verifies with `==`
    /// before actually sharing a frontier.
    pub fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for ls in &self.labels {
            ls.as_slice().hash(&mut h);
        }
        self.edges.hash(&mut h);
        h.finish()
    }

    /// All injective assignments of the prefix shape onto `graph`: every
    /// entry maps position `i` to a vertex carrying `labels[i]` with every
    /// prefix-internal edge present. Entries are produced in lexicographic
    /// position order, so the frontier is deterministic.
    pub fn build_frontier(&self, graph: &Graph) -> Vec<Vec<VertexId>> {
        let d = self.depth();
        let mut out = Vec::new();
        let mut partial: Vec<VertexId> = Vec::with_capacity(d);
        self.extend_frontier(graph, &mut partial, &mut out);
        out
    }

    fn extend_frontier(
        &self,
        graph: &Graph,
        partial: &mut Vec<VertexId>,
        out: &mut Vec<Vec<VertexId>>,
    ) {
        let i = partial.len();
        if i == self.depth() {
            out.push(partial.clone());
            return;
        }
        // Prefer extending along a prefix-internal edge (neighbor scan beats
        // a full label scan); fall back to the label index for positions
        // with no earlier neighbor.
        let anchor = self
            .edges
            .iter()
            .find(|&&(a, b)| b == i && a < i)
            .map(|&(a, _)| partial[a]);
        let candidates: &[VertexId] = match anchor {
            Some(v) => graph.neighbors(v),
            None => graph.vertices_with_label(self.labels[i].primary()),
        };
        'cand: for &v in candidates {
            if !self.labels[i].is_subset_of(graph.labels(v)) {
                continue;
            }
            if partial.contains(&v) {
                continue;
            }
            for &(a, b) in &self.edges {
                // Check remaining internal edges ending at i (the anchor
                // edge is adjacency-true by construction but rechecking is
                // cheap and keeps the loop branch-free of special cases).
                if b == i && !graph.has_edge(partial[a], v) {
                    continue 'cand;
                }
            }
            partial.push(v);
            self.extend_frontier(graph, partial, out);
            partial.pop();
        }
    }
}

/// Whether a frontier prefix satisfies `plan`'s symmetry constraints whose
/// endpoints both fall inside the prefix (constraints straddling the suffix
/// are enforced by the recursion as usual).
pub fn prefix_satisfies_symmetry(plan: &QueryPlan, prefix: &[VertexId]) -> bool {
    let d = prefix.len();
    plan.symmetry_constraints().iter().all(|c| {
        let (ps, pl) = (plan.position(c.smaller), plan.position(c.larger));
        ps >= d || pl >= d || prefix[ps] < prefix[pl]
    })
}

/// Forks one query's enumeration from a shared frontier: each frontier
/// entry that passes the query's prefix-internal symmetry constraints seeds
/// [`Enumerator::enumerate_prefix`]. Returns the merged counters; stops
/// early if the sink requests it.
///
/// The frontier must have been built from a [`PrefixSpec`] **equal** to
/// `PrefixSpec::from_plan(plan, depth)` for the same data graph — the
/// caller (the service's frontier cache) verifies spec equality before
/// sharing.
pub fn enumerate_from_frontier<S: EmbeddingSink>(
    graph: &Graph,
    plan: &QueryPlan,
    ceci: &Ceci,
    options: EnumOptions,
    frontier: &[Vec<VertexId>],
    sink: &mut S,
) -> Counters {
    let mut counters = Counters::default();
    let mut e = Enumerator::new(graph, plan, ceci, options);
    for prefix in frontier {
        if !prefix_satisfies_symmetry(plan, prefix) {
            continue;
        }
        if !e.enumerate_prefix(prefix, sink, &mut counters) {
            break;
        }
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_embeddings;
    use crate::fixtures::paper;
    use crate::sink::CountSink;
    use ceci_graph::extract_query;
    use ceci_graph::generators::{erdos_renyi, inject_random_labels};
    use ceci_query::QueryGraph;

    fn batched_count(graph: &Graph, plan: &QueryPlan, ceci: &Ceci, depth: usize) -> u64 {
        let spec = PrefixSpec::from_plan(plan, depth).expect("prefix depth in range");
        let frontier = spec.build_frontier(graph);
        let mut sink = CountSink::unbounded();
        enumerate_from_frontier(
            graph,
            plan,
            ceci,
            EnumOptions::default(),
            &frontier,
            &mut sink,
        );
        sink.count()
    }

    #[test]
    fn paper_fixture_counts_match_at_every_prefix_depth() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let base = count_embeddings(&graph, &plan, &ceci);
        assert_eq!(base, 2);
        for depth in 1..plan.matching_order().len() {
            assert_eq!(
                batched_count(&graph, &plan, &ceci, depth),
                base,
                "depth={depth}"
            );
        }
    }

    #[test]
    fn spec_equality_groups_shared_prefixes() {
        let (graph, fixture_plan) = paper::figure1();
        // Same query planned twice the same way: specs and signatures agree
        // at every depth (the planner is deterministic).
        let plan = QueryPlan::new(fixture_plan.query().clone(), &graph);
        let plan2 = QueryPlan::new(fixture_plan.query().clone(), &graph);
        for depth in 1..plan.matching_order().len() {
            let a = PrefixSpec::from_plan(&plan, depth).unwrap();
            let b = PrefixSpec::from_plan(&plan2, depth).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.signature(), b.signature());
        }
        // Depth out of range refuses.
        assert!(PrefixSpec::from_plan(&plan, 0).is_none());
        assert!(PrefixSpec::from_plan(&plan, plan.matching_order().len()).is_none());
    }

    #[test]
    fn frontier_is_superset_of_cluster_pivots() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let spec = PrefixSpec::from_plan(&plan, 1).unwrap();
        let frontier = spec.build_frontier(&graph);
        for &(pivot, _) in ceci.pivots() {
            assert!(
                frontier.iter().any(|p| p[0] == pivot),
                "pivot {pivot:?} missing from structural frontier"
            );
        }
    }

    #[test]
    fn random_graph_differential_across_depths() {
        for seed in 0..5u64 {
            let graph = inject_random_labels(&erdos_renyi(150, 500, seed), 3, seed ^ 0xA5A5);
            for size in [3usize, 4, 5] {
                let Some(extracted) = extract_query(&graph, size, seed * 17 + 3, 5) else {
                    continue;
                };
                let Ok(query) = QueryGraph::from_graph(&extracted.pattern) else {
                    continue;
                };
                let plan = QueryPlan::new(query, &graph);
                let ceci = Ceci::build(&graph, &plan);
                let base = count_embeddings(&graph, &plan, &ceci);
                for depth in 1..plan.matching_order().len().min(3) {
                    assert_eq!(
                        batched_count(&graph, &plan, &ceci, depth),
                        base,
                        "seed={seed} size={size} depth={depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn batching_composes_with_redundant_pruning() {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        let base = count_embeddings(&graph, &plan, &ceci);
        let spec = PrefixSpec::from_plan(&plan, 2).unwrap();
        let frontier = spec.build_frontier(&graph);
        let mut sink = CountSink::unbounded();
        enumerate_from_frontier(
            &graph,
            &plan,
            &ceci,
            EnumOptions {
                prune_redundant: true,
                ..Default::default()
            },
            &frontier,
            &mut sink,
        );
        assert_eq!(sink.count(), base);
    }
}
