//! Delta enumeration: counting embeddings that use specific data edges.
//!
//! Continuous queries need, per mutation batch, the number of *new* matches
//! (embeddings of the post-batch graph using at least one added edge) and
//! *retired* matches (embeddings of the pre-batch graph using at least one
//! deleted edge). Because a batch's additions are absent from the old graph
//! and its deletions present, every embedding of exactly one of the two
//! snapshots is classified by whether it touches the batch:
//!
//! ```text
//! total' = total + new − retired
//! ```
//!
//! which is the identity the differential tests pin against a full rebuild.
//!
//! Counting "embeddings using ≥ 1 edge of a set `S`" runs one *pinned*
//! backtracking search per `(S-edge, query edge, orientation)` triple: the
//! query edge is pre-assigned onto the data edge and the rest of the query
//! is matched outward from that anchor, so each search explores only the
//! local neighborhood of one mutated edge — never the whole graph. Two
//! dedup arguments make the count exact:
//!
//! * **Within one pin**: an embedding is injective, so at most one query
//!   edge (in one orientation) can map onto a given data edge — distinct
//!   query-edge pins over the same data edge can never find the same
//!   embedding twice.
//! * **Across pins**: an embedding using several `S`-edges is found once
//!   per such edge; it is counted only in the search pinning its
//!   *lowest-indexed* `S`-edge.
//!
//! Accepted embeddings satisfy exactly the [`crate::is_valid_embedding`]
//! semantics — injectivity, label containment, edge preservation, and the
//! plan's symmetry-breaking constraints — so delta counts compose with the
//! symmetry-broken totals the rest of the system reports.

use std::collections::HashMap;

use ceci_graph::{Graph, VertexId};
use ceci_query::{QueryPlan, VertexFilters};

/// Packs an undirected edge into an orientation-free key.
#[inline]
fn edge_key(a: VertexId, b: VertexId) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo.0 as u64) << 32) | hi.0 as u64
}

/// New/retired embedding counts for one mutation batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchDelta {
    /// Embeddings of the post-batch graph using at least one added edge.
    pub new_matches: u64,
    /// Embeddings of the pre-batch graph using at least one deleted edge.
    pub retired_matches: u64,
}

impl BatchDelta {
    /// Applies the delta identity to a pre-batch total.
    pub fn apply_to(&self, total: u64) -> u64 {
        total + self.new_matches - self.retired_matches
    }
}

/// Computes the per-batch embedding delta between two graph snapshots.
///
/// `added` must be absent from `old_graph` and present in `new_graph`;
/// `deleted` the reverse — exactly what a net-applied mutation batch
/// guarantees. Only `plan.query()` and `plan.symmetry_constraints()` are
/// consulted (both graph-independent), so a plan built against either
/// snapshot works.
pub fn batch_delta(
    old_graph: &Graph,
    new_graph: &Graph,
    plan: &QueryPlan,
    added: &[(VertexId, VertexId)],
    deleted: &[(VertexId, VertexId)],
) -> BatchDelta {
    BatchDelta {
        new_matches: count_matches_using(new_graph, plan, added),
        retired_matches: count_matches_using(old_graph, plan, deleted),
    }
}

/// Counts embeddings of `plan.query()` on `graph` (under the plan's
/// symmetry-breaking constraints) that map at least one query edge onto an
/// edge of `edges`, each embedding counted exactly once. Duplicate and
/// reversed entries in `edges` are tolerated.
pub fn count_matches_using(graph: &Graph, plan: &QueryPlan, edges: &[(VertexId, VertexId)]) -> u64 {
    let query = plan.query();
    if edges.is_empty() || query.num_edges() == 0 {
        return 0;
    }
    // Orientation-free S-edge index; first occurrence wins on duplicates.
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut distinct: Vec<(VertexId, VertexId)> = Vec::new();
    for &(a, b) in edges {
        if a == b {
            continue;
        }
        index.entry(edge_key(a, b)).or_insert_with(|| {
            distinct.push((a, b));
            distinct.len() - 1
        });
    }

    let filters = VertexFilters::new(query);
    let searcher = PinnedSearch::new(graph, plan, &filters, &index);
    let mut total = 0u64;
    for (i, &(x, y)) in distinct.iter().enumerate() {
        if !graph.has_edge(x, y) {
            // The caller's batch bookkeeping guarantees presence; tolerate
            // anyway so the function is safe on arbitrary edge sets.
            continue;
        }
        for qe in 0..query.num_edges() {
            total += searcher.count(qe, i, x, y);
            total += searcher.count(qe, i, y, x);
        }
    }
    total
}

/// One pinned backtracking search context, shared across pins.
struct PinnedSearch<'a> {
    graph: &'a Graph,
    plan: &'a QueryPlan,
    filters: &'a VertexFilters<'a>,
    /// S-edge key → index, for the lowest-index dedup rule.
    edge_index: &'a HashMap<u64, usize>,
    /// Per query edge: an anchored traversal order starting at that edge's
    /// endpoints — `orders[e][k] = (u, anchor)` where `anchor` is a query
    /// neighbor of `u` placed earlier in the order (`u` itself for the two
    /// pinned roots).
    orders: Vec<Vec<(VertexId, VertexId)>>,
}

impl<'a> PinnedSearch<'a> {
    fn new(
        graph: &'a Graph,
        plan: &'a QueryPlan,
        filters: &'a VertexFilters<'a>,
        edge_index: &'a HashMap<u64, usize>,
    ) -> Self {
        let query = plan.query();
        let n = query.num_vertices();
        let orders = query
            .edges()
            .iter()
            .map(|&(u1, u2)| {
                // BFS from the pinned edge so every later vertex has an
                // earlier query neighbor to extend from (queries are
                // connected).
                let mut order = vec![(u1, u1), (u2, u2)];
                let mut placed = vec![false; n];
                placed[u1.index()] = true;
                placed[u2.index()] = true;
                let mut head = 0;
                while head < order.len() {
                    let (u, _) = order[head];
                    head += 1;
                    for &un in query.neighbors(u) {
                        if !placed[un.index()] {
                            placed[un.index()] = true;
                            order.push((un, u));
                        }
                    }
                }
                debug_assert_eq!(order.len(), n, "query must be connected");
                order
            })
            .collect();
        PinnedSearch {
            graph,
            plan,
            filters,
            edge_index,
            orders,
        }
    }

    /// Counts completions of the pin `query.edges()[qe] → (x, y)` whose
    /// lowest-indexed used S-edge is `pin_index`.
    fn count(&self, qe: usize, pin_index: usize, x: VertexId, y: VertexId) -> u64 {
        let query = self.plan.query();
        let (u1, u2) = query.edges()[qe];
        if x == y
            || !self.filters.passes(self.graph, u1, x)
            || !self.filters.passes(self.graph, u2, y)
        {
            return 0;
        }
        let mut mapping: Vec<Option<VertexId>> = vec![None; query.num_vertices()];
        mapping[u1.index()] = Some(x);
        mapping[u2.index()] = Some(y);
        if !self.partial_ok(u1, x, &mapping) || !self.partial_ok(u2, y, &mapping) {
            return 0;
        }
        let mut count = 0u64;
        self.extend(&self.orders[qe], 2, &mut mapping, pin_index, &mut count);
        count
    }

    /// Checks the backward query edges and partially-assigned symmetry
    /// constraints of `u ↦ v` against the current mapping.
    fn partial_ok(&self, u: VertexId, v: VertexId, mapping: &[Option<VertexId>]) -> bool {
        let query = self.plan.query();
        for &un in query.neighbors(u) {
            if let Some(w) = mapping[un.index()] {
                if w != v && !self.graph.has_edge(v, w) {
                    return false;
                }
            }
        }
        self.plan.symmetry_constraints().iter().all(|c| {
            match (mapping[c.smaller.index()], mapping[c.larger.index()]) {
                (Some(s), Some(l)) => s < l,
                _ => true,
            }
        })
    }

    fn extend(
        &self,
        order: &[(VertexId, VertexId)],
        depth: usize,
        mapping: &mut Vec<Option<VertexId>>,
        pin_index: usize,
        count: &mut u64,
    ) {
        let query = self.plan.query();
        if depth == order.len() {
            // Lowest-index dedup: accept only if no used S-edge has a
            // smaller index than the pinned one.
            let min_used = query
                .edges()
                .iter()
                .filter_map(|&(a, b)| {
                    let (va, vb) = (
                        mapping[a.index()].expect("complete"),
                        mapping[b.index()].expect("complete"),
                    );
                    self.edge_index.get(&edge_key(va, vb)).copied()
                })
                .min();
            if min_used == Some(pin_index) {
                *count += 1;
            }
            return;
        }
        let (u, anchor) = order[depth];
        let from = mapping[anchor.index()].expect("anchor is assigned earlier");
        for &v in self.graph.neighbors(from) {
            if mapping.contains(&Some(v)) {
                continue; // injectivity
            }
            if !self.filters.passes(self.graph, u, v) {
                continue;
            }
            mapping[u.index()] = Some(v);
            if self.partial_ok(u, v, mapping) {
                self.extend(order, depth + 1, mapping, pin_index, count);
            }
            mapping[u.index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{collect_embeddings, count_embeddings};
    use crate::index::Ceci;
    use ceci_graph::{vid, Graph};
    use ceci_query::{PaperQuery, QueryPlan};

    fn triangle_graph() -> Graph {
        // Two triangles sharing edge 1-2.
        Graph::unlabeled(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(0)),
                (vid(1), vid(3)),
                (vid(2), vid(3)),
            ],
        )
    }

    fn count_using_reference(
        graph: &Graph,
        plan: &QueryPlan,
        edges: &[(VertexId, VertexId)],
    ) -> u64 {
        // Brute force: enumerate everything and filter by edge usage.
        let keys: std::collections::HashSet<u64> =
            edges.iter().map(|&(a, b)| edge_key(a, b)).collect();
        let ceci = Ceci::build(graph, plan);
        collect_embeddings(graph, plan, &ceci)
            .into_iter()
            .filter(|emb| {
                plan.query()
                    .edges()
                    .iter()
                    .any(|&(a, b)| keys.contains(&edge_key(emb[a.index()], emb[b.index()])))
            })
            .count() as u64
    }

    #[test]
    fn matches_using_shared_edge() {
        let g = triangle_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        assert_eq!(count_embeddings(&g, &plan, &Ceci::build(&g, &plan)), 2);
        // Both triangles use edge 1-2.
        let edges = [(vid(1), vid(2))];
        assert_eq!(count_matches_using(&g, &plan, &edges), 2);
        assert_eq!(count_using_reference(&g, &plan, &edges), 2);
        // Edge 0-1 is used by one triangle only.
        let edges = [(vid(0), vid(1))];
        assert_eq!(count_matches_using(&g, &plan, &edges), 1);
        // Overlapping set still counts each triangle once.
        let edges = [(vid(1), vid(2)), (vid(2), vid(0)), (vid(0), vid(1))];
        assert_eq!(count_matches_using(&g, &plan, &edges), 2);
        assert_eq!(count_using_reference(&g, &plan, &edges), 2);
    }

    #[test]
    fn duplicates_reversals_and_absent_edges_tolerated() {
        let g = triangle_graph();
        let plan = QueryPlan::new(PaperQuery::Qg1.build(), &g);
        let edges = [
            (vid(1), vid(2)),
            (vid(2), vid(1)), // reversed duplicate
            (vid(0), vid(3)), // not an edge
            (vid(3), vid(3)), // self loop
        ];
        assert_eq!(count_matches_using(&g, &plan, &edges), 2);
        assert_eq!(count_matches_using(&g, &plan, &[]), 0);
    }

    #[test]
    fn batch_delta_identity_on_addition() {
        // Path 0-1-2-3; adding 3-0 closes a 4-cycle.
        let old = Graph::unlabeled(4, &[(vid(0), vid(1)), (vid(1), vid(2)), (vid(2), vid(3))]);
        let new = Graph::unlabeled(
            4,
            &[
                (vid(0), vid(1)),
                (vid(1), vid(2)),
                (vid(2), vid(3)),
                (vid(3), vid(0)),
            ],
        );
        // Per-snapshot plans for the reference totals (initial candidates
        // are graph-dependent); symmetry constraints derive from the query
        // alone, so the totals compose with one shared delta plan.
        let plan = QueryPlan::new(PaperQuery::Qg2.build(), &old);
        let plan_new = QueryPlan::new(PaperQuery::Qg2.build(), &new);
        let old_total = count_embeddings(&old, &plan, &Ceci::build(&old, &plan));
        let new_total = count_embeddings(&new, &plan_new, &Ceci::build(&new, &plan_new));
        let delta = batch_delta(&old, &new, &plan, &[(vid(3), vid(0))], &[]);
        assert_eq!(delta.retired_matches, 0);
        assert_eq!(delta.apply_to(old_total), new_total);
        // And the reverse direction as a deletion.
        let back = batch_delta(&new, &old, &plan, &[], &[(vid(0), vid(3))]);
        assert_eq!(back.new_matches, 0);
        assert_eq!(back.apply_to(new_total), old_total);
    }
}
