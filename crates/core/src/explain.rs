//! EXPLAIN-style reports for plans and indexes.
//!
//! Subgraph matching performance hinges on decisions a user can't otherwise
//! see: which root was chosen, how the matching order runs, how hard each
//! filter hit, how skewed the embedding clusters are. [`explain_plan`] and
//! [`explain_index`] render those as plain-text reports (used by
//! `ceci-match --stats` and handy in tests and notebooks).

use std::fmt::Write as _;

use ceci_graph::{Graph, VertexId};
use ceci_query::QueryPlan;

use crate::adaptive::PlanChoice;
use crate::estimate::CostEstimate;
use crate::index::Ceci;
use crate::metrics::Counters;
use ceci_trace::DepthProfile;

/// Renders a per-matching-order-depth enumeration profile (the
/// `EXPLAIN ANALYZE` table) as machine-parseable `key=value` rows plus a
/// totals row carrying the run's exact global [`Counters`]. Per-depth
/// `isect` values are exact op counts, so their sum always equals
/// `intersection_ops` in the totals row.
pub fn explain_profile(plan: &QueryPlan, profile: &DepthProfile, counters: &Counters) -> String {
    let order = plan.matching_order();
    let mut out = String::new();
    let total_time = profile.total_time_ns().max(1);
    for (d, s) in profile.depths().iter().enumerate() {
        let node = order
            .get(d)
            .map(|u| format!("u{u}"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "depth={d} node={node} calls={} cand={} isect={} emit={} back={} time_us={} samples={} time_pct={:.1}",
            s.calls,
            s.candidates,
            s.intersections,
            s.emitted,
            s.backtracks,
            s.time_ns / 1_000,
            s.samples,
            s.time_ns as f64 * 100.0 / total_time as f64,
        );
    }
    let _ = writeln!(
        out,
        "totals depths={} calls={} cand={} isect={} emit={} sampled_us={} recursive_calls={} intersection_ops={} edge_verifications={} embeddings={} injectivity_rejections={} symmetry_rejections={}",
        profile.len(),
        profile.total_calls(),
        profile.total_candidates(),
        profile.total_intersections(),
        profile.total_emitted(),
        profile.total_time_ns() / 1_000,
        counters.recursive_calls,
        counters.intersection_ops,
        counters.edge_verifications,
        counters.embeddings,
        counters.injectivity_rejections,
        counters.symmetry_rejections,
    );
    out
}

/// Renders the preprocessing decisions of a plan.
pub fn explain_plan(plan: &QueryPlan, graph: &Graph) -> String {
    let query = plan.query();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query: {} vertices, {} edges ({} tree + {} non-tree)",
        query.num_vertices(),
        query.num_edges(),
        plan.tree().tree_edges().len(),
        plan.tree().non_tree_edges().len(),
    );
    let _ = writeln!(
        out,
        "data graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );
    let _ = writeln!(
        out,
        "root: u{} | matching order: {:?}",
        plan.root(),
        plan.matching_order()
    );
    let _ = writeln!(
        out,
        "symmetry: {} constraints ({})",
        plan.symmetry_constraints().len(),
        if plan.symmetry_complete() {
            "complete — each embedding listed once"
        } else {
            "incomplete — duplicates possible"
        }
    );
    let _ = writeln!(out, "per-node preprocessing:");
    for &u in plan.matching_order() {
        let parent = plan
            .tree()
            .parent(u)
            .map(|p| format!("u{p}"))
            .unwrap_or_else(|| "-".into());
        let ntes: Vec<String> = plan
            .backward_nte(u)
            .iter()
            .map(|w| format!("u{w}"))
            .collect();
        let _ = writeln!(
            out,
            "  u{u}: parent {parent:>3} | NTE from [{}] | {} initial candidates",
            ntes.join(", "),
            plan.initial_candidates(u).len(),
        );
    }
    out
}

/// Renders the adaptive planner's decision record: every candidate order
/// considered with its estimated intermediate-result volume, the winner,
/// and the execution choices (strategy, workers, per-depth kernel pins)
/// derived from the winning estimate.
pub fn explain_choice(choice: &PlanChoice) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan choice: candidates={} score_us={} replanned={}",
        choice.candidates.len(),
        choice.score_time.as_micros(),
        choice.replanned,
    );
    for (i, c) in choice.candidates.iter().enumerate() {
        let order: Vec<String> = c.order.iter().map(|u| format!("u{u}")).collect();
        let _ = writeln!(
            out,
            "  cand={i} strategy={:?} root=u{} volume={:.1} work={:.1} chosen={} order=[{}]",
            c.strategy,
            c.root,
            c.volume,
            c.work,
            if c.chosen { 1 } else { 0 },
            order.join(", "),
        );
    }
    let est = &choice.cost.estimate;
    let (lo, hi) = est.ci95();
    let _ = writeln!(
        out,
        "exec: strategy={} workers={} est_count={:.1} est_se={:.1} ci95=[{:.1}, {:.1}] est_volume={:.1} predicted_us={}",
        choice.strategy.abbrev(),
        choice.workers,
        est.mean,
        est.std_error,
        lo,
        hi,
        choice.cost.volume(),
        choice.predicted().as_micros(),
    );
    let pins: Vec<String> = choice
        .depth_kernels
        .iter()
        .enumerate()
        .map(|(d, k)| format!("d{d}={k:?}"))
        .collect();
    let _ = writeln!(out, "kernels: {}", pins.join(" "));
    out
}

/// Renders estimated vs actual cardinality per matching-order depth (the
/// `EXPLAIN ANALYZE` mis-estimate view). The actual partial-embedding count
/// at depth `d` is read from the observed profile: recursive calls entering
/// depth `d + 1` for interior depths, emissions (plus reuse) at the leaf.
/// `qerr` is the usual max(est/actual, actual/est), blank when either side
/// is zero.
pub fn explain_estimates(plan: &QueryPlan, cost: &CostEstimate, profile: &DepthProfile) -> String {
    let order = plan.matching_order();
    let stats = profile.depths();
    let n = order.len();
    let mut out = String::new();
    for (d, &est) in cost.depth_volumes.iter().enumerate().take(n) {
        let actual = if d + 1 < stats.len() {
            stats[d + 1].calls + stats[d + 1].reused
        } else {
            stats.get(d).map(|s| s.emitted + s.reused).unwrap_or(0)
        };
        let qerr = if est > 0.0 && actual > 0 {
            let a = actual as f64;
            format!("{:.2}", (est / a).max(a / est))
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "estimate depth={d} node=u{} est={est:.1} actual={actual} qerr={qerr}",
            order[d],
        );
    }
    out
}

/// Renders the built index: per-node table sizes, cluster-size skew, stage
/// statistics.
pub fn explain_index(ceci: &Ceci, plan: &QueryPlan) -> String {
    let mut out = String::new();
    let stats = ceci.stats();
    let _ = writeln!(
        out,
        "pivots: {} of {} initial root candidates survive",
        stats.pivots_final, stats.pivots_initial
    );
    let _ = writeln!(
        out,
        "entries: TE {} -> {} | NTE {} -> {} (filter -> refine)",
        stats.te_entries_after_filter,
        stats.te_entries_after_refine,
        stats.nte_entries_after_filter,
        stats.nte_entries_after_refine,
    );
    let entry_bytes = (stats.te_entries_after_refine + stats.nte_entries_after_refine) * 8;
    let _ = writeln!(
        out,
        "size: {entry_bytes} candidate-edge bytes ({:.0}% under the |Eq|x|Eg| bound of {} bytes); resident structure {} bytes",
        stats.percent_saved(),
        stats.theoretical_bytes,
        stats.size_bytes,
    );
    let _ = writeln!(
        out,
        "build: filter {:?}, refine {:?}",
        stats.filter_time, stats.refine_time
    );
    let _ = writeln!(out, "per-node candidates after refinement:");
    for &u in plan.matching_order() {
        let te = ceci
            .te(u)
            .map(|t| format!("{} keys / {} entries", t.num_keys(), t.num_entries()))
            .unwrap_or_else(|| "root".into());
        let nte: usize = ceci.nte(u).iter().map(|(_, t)| t.num_entries()).sum();
        let _ = writeln!(
            out,
            "  u{u}: {} candidates | TE {te} | NTE entries {nte}",
            ceci.candidates(u).len(),
        );
    }
    let _ = writeln!(out, "cluster cardinality distribution:");
    let summary = cluster_skew(ceci);
    let _ = writeln!(
        out,
        "  clusters {} | total cardinality {} | max {} | p50 {} | skew(max/mean) {:.1}",
        summary.clusters, summary.total, summary.max, summary.median, summary.skew
    );
    out
}

/// Summary of the cluster-size distribution — the quantity that decides
/// whether ExtremeCluster decomposition matters (§4.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSkew {
    /// Number of clusters.
    pub clusters: usize,
    /// Σ cardinalities.
    pub total: u64,
    /// Largest cluster cardinality.
    pub max: u64,
    /// Median cluster cardinality.
    pub median: u64,
    /// `max / mean` (1.0 for perfectly uniform clusters; 0 if empty).
    pub skew: f64,
}

/// Computes the cluster-size skew summary.
pub fn cluster_skew(ceci: &Ceci) -> ClusterSkew {
    let mut cards: Vec<u64> = ceci.pivots().iter().map(|&(_, c)| c).collect();
    cards.sort_unstable();
    let clusters = cards.len();
    let total: u64 = cards.iter().sum();
    let max = cards.last().copied().unwrap_or(0);
    let median = if clusters == 0 {
        0
    } else {
        cards[clusters / 2]
    };
    let mean = if clusters == 0 {
        0.0
    } else {
        total as f64 / clusters as f64
    };
    let skew = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    ClusterSkew {
        clusters,
        total,
        max,
        median,
        skew,
    }
}

/// Candidates of `u` that survive refinement, per initial candidate — the
/// per-filter effectiveness view.
pub fn filter_effectiveness(plan: &QueryPlan, ceci: &Ceci) -> Vec<(VertexId, usize, usize)> {
    plan.query()
        .vertices()
        .map(|u| {
            (
                u,
                plan.initial_candidates(u).len(),
                ceci.candidates(u).len(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper;

    fn setup() -> (ceci_graph::Graph, QueryPlan, Ceci) {
        let (graph, plan) = paper::figure1();
        let ceci = Ceci::build(&graph, &plan);
        (graph, plan, ceci)
    }

    #[test]
    fn plan_report_mentions_key_facts() {
        let (graph, plan, _) = setup();
        let report = explain_plan(&plan, &graph);
        assert!(report.contains("root: u0"));
        assert!(report.contains("5 vertices, 6 edges (4 tree + 2 non-tree)"));
        assert!(report.contains("complete — each embedding listed once"));
        // u3 (paper u4) has an NTE from u2 (paper u3).
        assert!(report.contains("NTE from [u2]"), "report:\n{report}");
    }

    #[test]
    fn index_report_mentions_sizes() {
        let (_, plan, ceci) = setup();
        let report = explain_index(&ceci, &plan);
        assert!(report.contains("pivots: 1 of 2"));
        assert!(report.contains("entries: TE 10 -> 8 | NTE 6 -> 5"));
        assert!(report.contains("cluster cardinality distribution"));
    }

    #[test]
    fn skew_summary_on_figure5() {
        use crate::fixtures::figure5;
        let (graph, plan) = figure5::setup();
        let ceci = Ceci::build(&graph, &plan);
        let s = cluster_skew(&ceci);
        assert_eq!(s.clusters, 2);
        assert_eq!(s.total, 10);
        assert_eq!(s.max, 9);
        // mean 5 → skew 1.8
        assert!((s.skew - 1.8).abs() < 1e-9);
    }

    #[test]
    fn skew_empty_index() {
        let graph = ceci_graph::Graph::unlabeled(2, &[]);
        let q = ceci_query::QueryGraph::unlabeled(2, &[(0, 1)]).unwrap();
        let plan = QueryPlan::new(q, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let s = cluster_skew(&ceci);
        assert_eq!(s.clusters, 0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn choice_report_lists_candidates_and_exec() {
        use crate::adaptive::{plan_adaptive, AdaptiveOptions};
        let (graph, plan) = paper::figure1();
        let (_, choice) = plan_adaptive(plan.query().clone(), &graph, &AdaptiveOptions::default());
        let report = explain_choice(&choice);
        assert!(report.contains("plan choice: candidates="), "{report}");
        assert!(report.contains("chosen=1"), "{report}");
        assert!(report.contains("exec: strategy="), "{report}");
        assert!(report.contains("kernels: d0="), "{report}");
    }

    #[test]
    fn estimate_report_compares_depths() {
        use crate::estimate::{estimate_cost, EstimateOptions};
        use crate::sink::CountSink;
        let (graph, plan, ceci) = setup();
        let cost = estimate_cost(&graph, &plan, &ceci, &EstimateOptions::default());
        let mut enumerator =
            crate::enumerate::Enumerator::new(&graph, &plan, &ceci, Default::default());
        enumerator.enable_profile();
        let mut counters = Counters::default();
        let mut sink = CountSink::unbounded();
        for &(pivot, _) in ceci.pivots() {
            enumerator.enumerate_cluster(pivot, &mut sink, &mut counters);
        }
        let profile = enumerator.take_profile().unwrap();
        let report = explain_estimates(&plan, &cost, &profile);
        assert_eq!(
            report.lines().count(),
            plan.matching_order().len(),
            "{report}"
        );
        assert!(report.contains("estimate depth=0"), "{report}");
        assert!(report.contains("qerr="), "{report}");
    }

    #[test]
    fn filter_effectiveness_monotone() {
        let (_, plan, ceci) = setup();
        for (u, initial, final_) in filter_effectiveness(&plan, &ceci) {
            assert!(final_ <= initial, "u{u}: {final_} > {initial}");
        }
    }
}
