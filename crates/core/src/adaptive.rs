//! Cost-model-driven adaptive planning (ROADMAP item 4).
//!
//! Closes the loop estimator → planner → runtime → profile feedback:
//!
//! 1. **Plan selection** — [`plan_adaptive`] generates a small portfolio of
//!    candidate plans (the paper's BFS default plus the ranked greedy orders
//!    over the 2–3 best roots), scores each with a cheap random-walk budget
//!    over a *pilot* index ([`Ceci::build_for_pivots`] on a sampled pivot
//!    subset, so scoring costs ≪ one full build), and picks the order with
//!    the smallest estimated intermediate-result volume.
//! 2. **Strategy + worker choice** — [`choose_execution`] maps the winning
//!    estimate's volume, pivot population, and per-depth branch factors to
//!    ST / CGD / FGD and a worker count.
//! 3. **Kernel pinning** — [`kernels_from_profile`] converts an observed
//!    [`DepthProfile`] from a prior execution of the same canonical query
//!    into per-depth intersection-kernel pins, replacing global adaptive
//!    dispatch once real behavior is known.
//! 4. **Deadline admission** — [`admit`] predicts feasibility against a
//!    deadline and answers exact, approximate, or infeasible.
//!
//! Only the *order* choice affects the enumeration; every candidate order
//! satisfies the parent-precedes-child invariant, so exact counts are
//! identical (bit-for-bit) across all portfolio members. Mis-estimates can
//! only cost time, never correctness.

use std::time::{Duration, Instant};

use ceci_graph::{Graph, VertexId};
use ceci_query::candidates::compute_candidates;
use ceci_query::root::select_root;
use ceci_query::{OrderStrategy, PlanOptions, QueryGraph, QueryPlan};
use ceci_trace::DepthProfile;

use crate::estimate::{estimate_cost, CostEstimate, EstimateOptions};
use crate::index::{BuildOptions, Ceci};
use crate::intersect::Kernel;
use crate::parallel::Strategy;

/// Knobs for the adaptive planner.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveOptions {
    /// Random-walk budget per candidate plan (small: scoring must stay well
    /// under the cost of one full index build).
    pub walks: u64,
    /// RNG seed — plan choice is deterministic per seed.
    pub seed: u64,
    /// Pivot-sample cap per pilot build. The pilot index is built from every
    /// k-th root candidate so that at most this many pivots survive into
    /// scoring; estimates are scaled back by the sampling ratio.
    pub max_pilot_pivots: usize,
    /// Number of distinct root choices to include in the portfolio (the
    /// best-scoring roots by the paper's `|candidates| / degree` rule).
    pub roots: usize,
    /// Upper bound on the worker count the planner may recommend (the
    /// server's per-request clamp).
    pub max_workers: usize,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            walks: 64,
            seed: 0xADA7,
            max_pilot_pivots: 64,
            roots: 3,
            max_workers: 1,
        }
    }
}

/// One scored member of the plan portfolio, kept for EXPLAIN.
#[derive(Clone, Debug)]
pub struct CandidatePlan {
    /// Order strategy this candidate used.
    pub strategy: OrderStrategy,
    /// Root vertex this candidate used.
    pub root: VertexId,
    /// The resulting matching order.
    pub order: Vec<VertexId>,
    /// Estimated total intermediate-result volume (scaled to the full pivot
    /// population) — the deadline-admission cost unit.
    pub volume: f64,
    /// Estimated enumeration work (intersection comparisons plus one unit
    /// per intermediate result); the planner minimizes this.
    pub work: f64,
    /// Whether this candidate won.
    pub chosen: bool,
}

/// The planner's full decision record: the winning plan's cost estimate plus
/// everything EXPLAIN needs to show why it won.
#[derive(Clone, Debug)]
pub struct PlanChoice {
    /// All scored candidates (deduplicated by matching order).
    pub candidates: Vec<CandidatePlan>,
    /// Cost estimate of the winning plan, scaled to the full pivot
    /// population.
    pub cost: CostEstimate,
    /// Recommended parallel strategy.
    pub strategy: Strategy,
    /// Recommended worker count (already clamped to
    /// [`AdaptiveOptions::max_workers`]).
    pub workers: usize,
    /// Per-depth intersection-kernel pins. All-[`Kernel::Adaptive`] until an
    /// observed profile refines them via [`kernels_from_profile`].
    pub depth_kernels: Vec<Kernel>,
    /// Wall time spent scoring the portfolio.
    pub score_time: Duration,
    /// `true` when the winning order differs from the paper-default plan
    /// (best root, BFS order) — i.e. the cost model actually changed the
    /// plan.
    pub replanned: bool,
}

impl PlanChoice {
    /// Predicted sequential execution time of the winning plan.
    pub fn predicted(&self) -> Duration {
        predicted_time(self.cost.volume(), DEFAULT_NS_PER_UNIT)
    }
}

/// Default modeled cost of producing one partial embedding (intersection,
/// injectivity and symmetry checks, bookkeeping), in nanoseconds. Refined
/// per query by [`ns_per_unit_from_profile`] once a profiled execution
/// exists.
pub const DEFAULT_NS_PER_UNIT: f64 = 150.0;

/// Predicted sequential enumeration time for an estimated intermediate
/// volume at a modeled per-unit cost.
pub fn predicted_time(volume: f64, ns_per_unit: f64) -> Duration {
    Duration::from_nanos((volume.max(0.0) * ns_per_unit.max(0.0)) as u64)
}

/// Observed per-unit cost from a prior profiled execution: sampled time over
/// candidates produced. `None` when the profile saw too little work to be
/// meaningful.
pub fn ns_per_unit_from_profile(profile: &DepthProfile) -> Option<f64> {
    let units = profile.total_candidates();
    let time = profile.total_time_ns();
    if units < 1_000 || time == 0 {
        return None;
    }
    Some(time as f64 / units as f64)
}

/// Builds a plan honoring `options.order`: [`OrderStrategy::Adaptive`] runs
/// the portfolio planner and returns its decision record; any other
/// strategy delegates to [`QueryPlan::with_options`] with no choice record.
pub fn plan_with_options(
    query: QueryGraph,
    graph: &Graph,
    plan_options: &PlanOptions,
    adaptive: &AdaptiveOptions,
) -> (QueryPlan, Option<PlanChoice>) {
    if plan_options.order == OrderStrategy::Adaptive && plan_options.root_override.is_none() {
        let (plan, choice) = plan_adaptive(query, graph, adaptive);
        (plan, Some(choice))
    } else {
        (QueryPlan::with_options(query, graph, plan_options), None)
    }
}

/// Runs the portfolio planner: scores BFS plus the ranked greedy orders over
/// the best `options.roots` roots and returns the plan minimizing estimated
/// enumeration work ([`CostEstimate::work`] — intersection comparisons plus
/// intermediate-result volume), together with the full decision record.
pub fn plan_adaptive(
    query: QueryGraph,
    graph: &Graph,
    options: &AdaptiveOptions,
) -> (QueryPlan, PlanChoice) {
    let started = Instant::now();
    let sets = compute_candidates(&query, graph);
    let root_choice = select_root(&query, &sets);

    // Rank roots by the paper's score, best first; the default root leads so
    // cost ties resolve toward the paper-default plan.
    let mut ranked: Vec<VertexId> = query.vertices().collect();
    ranked.sort_by(|&a, &b| {
        root_choice.scores[a.index()]
            .partial_cmp(&root_choice.scores[b.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let roots: Vec<VertexId> = ranked.into_iter().take(options.roots.max(1)).collect();

    const STRATEGIES: [OrderStrategy; 3] = [
        OrderStrategy::Bfs,
        OrderStrategy::EdgeRank,
        OrderStrategy::PathRank,
    ];

    let mut plans: Vec<(OrderStrategy, QueryPlan)> = Vec::new();
    for &root in &roots {
        for strategy in STRATEGIES {
            let plan = QueryPlan::with_options(
                query.clone(),
                graph,
                &PlanOptions {
                    order: strategy,
                    root_override: Some(root),
                    ..PlanOptions::default()
                },
            );
            // Identical matching orders cost the same; keep the first
            // (earliest root rank, BFS before greedy).
            if !plans
                .iter()
                .any(|(_, p)| p.matching_order() == plan.matching_order())
            {
                plans.push((strategy, plan));
            }
        }
    }

    let mut scored: Vec<(CostEstimate, CandidatePlan)> = Vec::with_capacity(plans.len());
    for (strategy, plan) in &plans {
        let cost = pilot_cost(graph, plan, options);
        scored.push((
            cost.clone(),
            CandidatePlan {
                strategy: *strategy,
                root: plan.root(),
                order: plan.matching_order().to_vec(),
                volume: cost.volume(),
                work: cost.work(),
                chosen: false,
            },
        ));
    }

    // Argmin by estimated work; stable ties toward the earlier candidate
    // (the paper-default plan is index 0).
    let mut winner = 0usize;
    for (i, (cost, _)) in scored.iter().enumerate() {
        if cost.work() < scored[winner].0.work() {
            winner = i;
        }
    }
    let (cost, _) = scored[winner].clone();
    let mut candidates: Vec<CandidatePlan> = scored.into_iter().map(|(_, c)| c).collect();
    candidates[winner].chosen = true;
    let replanned = winner != 0;
    let (strategy, workers) = choose_execution(&cost, options.max_workers);
    let depths = query.num_vertices();

    let plan = plans.swap_remove(winner).1;
    let choice = PlanChoice {
        candidates,
        cost,
        strategy,
        workers,
        depth_kernels: vec![Kernel::Adaptive; depths],
        score_time: started.elapsed(),
        replanned,
    };
    (plan, choice)
}

/// Scores one candidate plan: builds a pilot index from a deterministic
/// sample of the plan's root candidates, runs the walk budget over it, and
/// scales the resulting cost back to the full pivot population.
fn pilot_cost(graph: &Graph, plan: &QueryPlan, options: &AdaptiveOptions) -> CostEstimate {
    let all = plan.initial_candidates(plan.root());
    let cap = options.max_pilot_pivots.max(1);
    let stride = all.len().div_ceil(cap).max(1);
    let sampled: Vec<VertexId> = all.iter().copied().step_by(stride).collect();
    let scale = if sampled.is_empty() {
        1.0
    } else {
        all.len() as f64 / sampled.len() as f64
    };
    let pilot = Ceci::build_for_pivots(graph, plan, BuildOptions::default(), sampled);
    let cost = estimate_cost(
        graph,
        plan,
        &pilot,
        &EstimateOptions {
            walks: options.walks,
            seed: options.seed,
        },
    );
    cost.scaled(scale)
}

/// Maps a cost estimate to a parallel strategy and worker count.
///
/// Volume thresholds are deliberately coarse: below ~100k modeled units a
/// second worker costs more in distribution than it saves, and the paper's
/// §6.3 result (FGD ≥ CGD ≥ ST under skew) decides the strategy once
/// parallelism pays. Skew is read from the per-depth branch factors: a
/// branch factor ≫ the mean at any depth means cluster workloads are
/// unbalanced and static assignment will straggle.
pub fn choose_execution(cost: &CostEstimate, max_workers: usize) -> (Strategy, usize) {
    let max_workers = max_workers.max(1);
    let volume = cost.volume();
    const UNITS_PER_WORKER: f64 = 100_000.0;
    let workers = if volume <= UNITS_PER_WORKER {
        1
    } else {
        ((volume / UNITS_PER_WORKER).ceil() as usize).min(max_workers)
    };
    if workers == 1 {
        return (Strategy::Static, 1);
    }
    let pivots = cost.depth_volumes.first().copied().unwrap_or(0.0);
    let factors = cost.branch_factors();
    let mean_bf = if factors.is_empty() {
        0.0
    } else {
        factors.iter().sum::<f64>() / factors.len() as f64
    };
    let max_bf = factors.iter().cloned().fold(0.0f64, f64::max);
    let skewed = max_bf > 4.0 * mean_bf.max(1.0);
    // Few clusters per worker, or skewed fan-out → decompose (FGD). A deep
    // pool of similar clusters → pull-based CGD is enough.
    if skewed || pivots < 4.0 * workers as f64 {
        (Strategy::FineDynamic { beta: 0.2 }, workers)
    } else {
        (Strategy::CoarseDynamic, workers)
    }
}

/// Pins an intersection kernel per depth from an observed [`DepthProfile`].
///
/// The signal is element operations per produced candidate: high (≫ 8)
/// means skewed list pairs where galloping's binary probes win; very low
/// (≤ 2) means dense overlap where the SIMD block scan streams; the middle
/// is the branchless merge's home turf. Depths the profile never reached
/// keep [`Kernel::Adaptive`].
pub fn kernels_from_profile(profile: &DepthProfile) -> Vec<Kernel> {
    profile
        .depths()
        .iter()
        .map(|s| {
            if s.calls == 0 || s.intersections == 0 {
                Kernel::Adaptive
            } else {
                let per_unit = s.intersections as f64 / s.candidates.max(1) as f64;
                if per_unit > 8.0 {
                    Kernel::Gallop
                } else if per_unit <= 2.0 {
                    Kernel::Simd
                } else {
                    Kernel::BranchlessMerge
                }
            }
        })
        .collect()
}

/// Deadline-admission verdict for a `MATCH … DEADLINE` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Predicted to finish within the deadline: run exact enumeration.
    Exact,
    /// Exact enumeration predicted to blow the deadline, but the estimate is
    /// trustworthy enough to answer approximately.
    Approx,
    /// Exact is infeasible *and* the estimate's relative error is too large
    /// to stand behind: reject.
    Infeasible,
}

/// Predicts feasibility of exact enumeration against `deadline`.
///
/// `ns_per_unit` is the modeled cost per intermediate-result unit —
/// [`DEFAULT_NS_PER_UNIT`] absent feedback, or the observed value from
/// [`ns_per_unit_from_profile`]. The prediction assumes the recommended
/// worker parallelism is already folded into `workers`.
pub fn admit(
    cost: &CostEstimate,
    deadline: Duration,
    ns_per_unit: f64,
    workers: usize,
) -> Admission {
    if cost.estimate.exact_zero {
        return Admission::Exact;
    }
    let predicted = predicted_time(cost.volume() / workers.max(1) as f64, ns_per_unit);
    if predicted <= deadline {
        return Admission::Exact;
    }
    // Exact won't fit. An estimate whose noise exceeds its signal is not an
    // answer we can stand behind.
    let rel_err = cost.estimate.std_error / cost.estimate.mean.max(1.0);
    if rel_err <= 1.0 {
        Admission::Approx
    } else {
        Admission::Infeasible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::count_embeddings;
    use crate::fixtures::paper;
    use ceci_graph::generators::kronecker_default;
    use ceci_query::{is_valid_order, PaperQuery};

    #[test]
    fn adaptive_plan_counts_match_bfs() {
        let graph = kronecker_default(9, 5, 42);
        for pq in [PaperQuery::Qg1, PaperQuery::Qg3, PaperQuery::Qg5] {
            let bfs_plan = QueryPlan::new(pq.build(), &graph);
            let bfs_ceci = Ceci::build(&graph, &bfs_plan);
            let exact = count_embeddings(&graph, &bfs_plan, &bfs_ceci);

            let (plan, choice) = plan_adaptive(pq.build(), &graph, &AdaptiveOptions::default());
            assert!(is_valid_order(plan.tree(), plan.matching_order()));
            let ceci = Ceci::build(&graph, &plan);
            let adaptive = count_embeddings(&graph, &plan, &ceci);
            assert_eq!(adaptive, exact, "{pq:?}: adaptive order changed the count");
            assert!(choice.candidates.iter().filter(|c| c.chosen).count() == 1);
        }
    }

    #[test]
    fn plan_with_options_respects_fixed_strategies() {
        let (graph, plan0) = paper::figure1();
        let query = plan0.query().clone();
        let (plan, choice) = plan_with_options(
            query.clone(),
            &graph,
            &PlanOptions::default(),
            &AdaptiveOptions::default(),
        );
        assert!(choice.is_none());
        let default_plan = QueryPlan::new(query.clone(), &graph);
        assert_eq!(plan.matching_order(), default_plan.matching_order());

        let (_, choice) = plan_with_options(
            query,
            &graph,
            &PlanOptions {
                order: OrderStrategy::Adaptive,
                ..PlanOptions::default()
            },
            &AdaptiveOptions::default(),
        );
        assert!(choice.is_some());
    }

    #[test]
    fn choice_is_deterministic() {
        let graph = kronecker_default(8, 5, 7);
        let opts = AdaptiveOptions::default();
        let (a, ca) = plan_adaptive(PaperQuery::Qg2.build(), &graph, &opts);
        let (b, cb) = plan_adaptive(PaperQuery::Qg2.build(), &graph, &opts);
        assert_eq!(a.matching_order(), b.matching_order());
        assert_eq!(ca.cost.volume(), cb.cost.volume());
        assert_eq!(ca.workers, cb.workers);
    }

    #[test]
    fn portfolio_dedups_identical_orders() {
        let (graph, plan0) = paper::figure1();
        let (_, choice) = plan_adaptive(plan0.query().clone(), &graph, &AdaptiveOptions::default());
        for (i, a) in choice.candidates.iter().enumerate() {
            for b in &choice.candidates[i + 1..] {
                assert_ne!(a.order, b.order, "duplicate orders survived dedup");
            }
        }
    }

    #[test]
    fn execution_choice_scales_with_volume() {
        let small = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 10.0,
                std_error: 1.0,
                walks: 64,
                exact_zero: false,
            },
            depth_volumes: vec![5.0, 10.0],
            depth_work: vec![5.0, 10.0],
        };
        assert_eq!(choose_execution(&small, 8), (Strategy::Static, 1));

        let big = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 1e7,
                std_error: 1e5,
                walks: 64,
                exact_zero: false,
            },
            depth_volumes: vec![1000.0, 1e6, 1e7],
            depth_work: vec![1000.0, 1e6, 1e7],
        };
        let (strategy, workers) = choose_execution(&big, 8);
        assert!(workers > 1);
        assert!(matches!(
            strategy,
            Strategy::CoarseDynamic | Strategy::FineDynamic { .. }
        ));
        // Skewed fan-out forces decomposition.
        let skewed = CostEstimate {
            depth_volumes: vec![2.0, 1e6, 1e7],
            ..big
        };
        let (strategy, _) = choose_execution(&skewed, 8);
        assert!(matches!(strategy, Strategy::FineDynamic { .. }));
    }

    #[test]
    fn admission_ladder() {
        let cheap = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 100.0,
                std_error: 10.0,
                walks: 64,
                exact_zero: false,
            },
            depth_volumes: vec![10.0, 100.0],
            depth_work: vec![10.0, 100.0],
        };
        assert_eq!(
            admit(&cheap, Duration::from_secs(1), DEFAULT_NS_PER_UNIT, 1),
            Admission::Exact
        );
        let huge = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 1e12,
                std_error: 1e11,
                walks: 64,
                exact_zero: false,
            },
            depth_volumes: vec![1e6, 1e12],
            depth_work: vec![1e6, 1e12],
        };
        assert_eq!(
            admit(&huge, Duration::from_millis(10), DEFAULT_NS_PER_UNIT, 1),
            Admission::Approx
        );
        let noisy = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 1e6,
                std_error: 1e9,
                walks: 64,
                exact_zero: false,
            },
            depth_volumes: vec![1e6, 1e12],
            depth_work: vec![1e6, 1e12],
        };
        assert_eq!(
            admit(&noisy, Duration::from_millis(10), DEFAULT_NS_PER_UNIT, 1),
            Admission::Infeasible
        );
        let zero = CostEstimate {
            estimate: crate::estimate::Estimate {
                mean: 0.0,
                std_error: 0.0,
                walks: 0,
                exact_zero: true,
            },
            depth_volumes: vec![0.0, 0.0],
            depth_work: vec![0.0, 0.0],
        };
        assert_eq!(
            admit(&zero, Duration::from_millis(1), DEFAULT_NS_PER_UNIT, 1),
            Admission::Exact
        );
    }

    #[test]
    fn kernel_pins_follow_profile_shape() {
        let mut profile = DepthProfile::new(3);
        // Depth 0: heavy probing per produced candidate → Gallop.
        profile.on_call(0);
        profile.on_expand(0, 10, 1000);
        // Depth 1: dense overlap → Simd.
        profile.on_call(1);
        profile.on_expand(1, 100, 150);
        // Depth 2: untouched → Adaptive.
        let pins = kernels_from_profile(&profile);
        assert_eq!(pins, vec![Kernel::Gallop, Kernel::Simd, Kernel::Adaptive]);
    }

    #[test]
    fn ns_per_unit_needs_enough_signal() {
        let mut profile = DepthProfile::with_stride(2, 0);
        profile.on_call(0);
        profile.on_expand(0, 10, 10);
        assert!(ns_per_unit_from_profile(&profile).is_none());
        for _ in 0..200 {
            profile.on_call(0);
            profile.on_expand(0, 10, 10);
        }
        // 2000+ candidates and sampled time on every call → a real estimate.
        let got = ns_per_unit_from_profile(&profile);
        assert!(got.is_some());
        assert!(got.unwrap() >= 0.0);
    }
}
