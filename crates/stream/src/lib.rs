//! # ceci-stream
//!
//! Incremental maintenance of CECI indexes over streaming graph mutations.
//!
//! A frozen [`ceci_core::Ceci`] is an immutable snapshot: every mutation
//! would force a full Algorithm-1 + Algorithm-2 rebuild. This crate keeps a
//! *maintainable* base form of the index per `(graph, query)` pair — the
//! [`StreamIndex`] — holding the **unrefined** per-vertex-filtered candidate
//! tables:
//!
//! * `pivots` — root candidates passing the LF / DF / NLCF vertex filters,
//! * `te[u]` — for each non-root query node, a map keyed by the *parent's*
//!   candidates `vf`, with value `F(u, vf)` = the filtered adjacency of
//!   `vf` for `u` (sorted; possibly empty),
//! * `nte[u]` — the backward non-tree-edge tables, same shape, keyed by the
//!   candidates of the non-tree parent `un`.
//!
//! An edge mutation `{a, b}` changes adjacency, degree, and neighborhood
//! label counts **only at the endpoints**, so the per-vertex filter verdict
//! can flip only for `a` and `b`, and a filtered adjacency `F(u, vf)` can
//! change only when `vf` is an endpoint or a current neighbor of one. That
//! makes repair local: [`StreamIndex::patch`] re-tests root candidacy at the
//! endpoints, recomputes `F` for the dirty keys of every table, and cascades
//! candidate additions/removals down the matching order via exact per-node
//! value refcounts — the Algorithm-2 refinement cascade is then re-run only
//! at materialization time, on the patched base.
//!
//! [`StreamIndex::materialize`] converts the base into a frozen `Ceci`
//! through [`ceci_core::BuilderState::from_parts`] +
//! `Ceci::from_filtered_state`, which applies refinement and freezing
//! exactly as a from-scratch build would. The contract is on *counts*, not
//! on index bytes: the base tables are sound (every value is a real
//! filtered neighbor) and complete (every embedding's vertices survive the
//! per-vertex filters), so enumeration over the materialized index returns
//! match counts bit-identical to a full rebuild on the mutated graph — the
//! differential invariant the streaming subsystem is gated on.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};

use ceci_core::tables::BuildTable;
use ceci_core::{BuilderState, Ceci};
use ceci_graph::{Graph, VertexId};
use ceci_query::{candidates_of, QueryPlan, VertexFilters};

/// One filtered-adjacency table of the base index: key `vf` (a candidate of
/// the parent node) → `F(u, vf)`, sorted, possibly empty.
type BaseTable = BTreeMap<VertexId, Vec<VertexId>>;

/// Structural cost accounting of one [`StreamIndex::patch`] call — how much
/// of the index the mutation batch actually touched, reported by the service
/// as `index_repair_*` metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Distinct dirty data vertices (endpoints ∪ their current neighbors).
    pub dirty_vertices: usize,
    /// Table keys recomputed in full (endpoint keys) or surgically
    /// corrected in place (endpoint membership in a neighbor's list).
    pub keys_recomputed: usize,
    /// Keys inserted because a vertex became a candidate of the keying node.
    pub keys_added: usize,
    /// Keys dropped because a vertex stopped being a candidate.
    pub keys_removed: usize,
}

impl RepairStats {
    /// Merges another patch's accounting into this one (per-batch roll-up).
    pub fn absorb(&mut self, other: &RepairStats) {
        self.dirty_vertices += other.dirty_vertices;
        self.keys_recomputed += other.keys_recomputed;
        self.keys_added += other.keys_added;
        self.keys_removed += other.keys_removed;
    }
}

/// Maintainable base candidate index for one `(graph, query)` pair.
///
/// Build once with [`StreamIndex::build`], then [`StreamIndex::patch`] after
/// each mutation batch (passing the batch's touched endpoints) and
/// [`StreamIndex::materialize`] whenever a frozen, refined [`Ceci`] is
/// needed for enumeration.
#[derive(Clone, Debug)]
pub struct StreamIndex {
    /// Sorted root candidates (pre-refinement).
    pivots: Vec<VertexId>,
    /// `te[u]` for non-root `u`, keyed by the tree parent's candidates.
    te: Vec<Option<BaseTable>>,
    /// `nte[u]`: one table per backward non-tree edge, tagged with the
    /// non-tree parent `un` and keyed by `un`'s candidates.
    nte: Vec<Vec<(VertexId, BaseTable)>>,
    /// `refs[u][v]` = number of `te[u]` value lists containing `v`; the
    /// candidate set of a non-root `u` is exactly the key set of `refs[u]`.
    refs: Vec<HashMap<VertexId, u32>>,
}

/// Bumps a value refcount, remembering the pre-patch count on first touch.
fn ref_inc(refs: &mut HashMap<VertexId, u32>, before: &mut HashMap<VertexId, u32>, v: VertexId) {
    let c = refs.get(&v).copied().unwrap_or(0);
    before.entry(v).or_insert(c);
    refs.insert(v, c + 1);
}

/// Drops a value refcount, remembering the pre-patch count on first touch.
fn ref_dec(refs: &mut HashMap<VertexId, u32>, before: &mut HashMap<VertexId, u32>, v: VertexId) {
    let c = refs.get(&v).copied().unwrap_or(0);
    before.entry(v).or_insert(c);
    debug_assert!(c > 0, "refcount underflow at {v:?}");
    if c <= 1 {
        refs.remove(&v);
    } else {
        refs.insert(v, c - 1);
    }
}

/// Applies the batch-local repair to one table: a full filtered-adjacency
/// recompute at endpoint keys, plus surgical endpoint-membership fixes at
/// their non-endpoint neighbor keys (`pairs`, sorted by key). `on_change`
/// observes every value added (`true`) / removed (`false`) from the table so
/// TE callers can maintain candidate refcounts; NTE callers pass a no-op.
///
/// Two strategies, picked by dirty-region size: point lookups for sparse
/// batches (a lone `ADDEDGE` should not scan the table), one sequential
/// merge over the key order for bulk batches (random B-tree probes cost an
/// order of magnitude more than sequential visits).
#[allow(clippy::too_many_arguments)]
fn repair_table(
    map: &mut BaseTable,
    graph: &Graph,
    filters: &VertexFilters,
    u: VertexId,
    eps: &[VertexId],
    eps_pass: &[bool],
    pairs: &[(VertexId, VertexId)],
    stats: &mut RepairStats,
    buf: &mut Vec<VertexId>,
    on_change: &mut dyn FnMut(VertexId, bool),
) {
    let recompute = |vf: VertexId,
                     list: &mut Vec<VertexId>,
                     buf: &mut Vec<VertexId>,
                     stats: &mut RepairStats,
                     on_change: &mut dyn FnMut(VertexId, bool)| {
        buf.clear();
        filters.filtered_neighbors_into(graph, u, vf, buf);
        stats.keys_recomputed += 1;
        for &v in list.iter() {
            on_change(v, false);
        }
        for &v in buf.iter() {
            on_change(v, true);
        }
        list.clear();
        list.extend_from_slice(buf);
    };
    let fix = |e: VertexId,
               list: &mut Vec<VertexId>,
               on_change: &mut dyn FnMut(VertexId, bool)|
     -> bool {
        let desired = eps_pass[eps.binary_search(&e).expect("pair endpoint")];
        match list.binary_search(&e) {
            Ok(i) if !desired => {
                list.remove(i);
                on_change(e, false);
                true
            }
            Err(i) if desired => {
                list.insert(i, e);
                on_change(e, true);
                true
            }
            _ => false,
        }
    };
    if (eps.len() + pairs.len()).saturating_mul(8) >= map.len() {
        // Dense: one merge pass over the table in key order.
        let (mut ei, mut pi) = (0usize, 0usize);
        for (&vf, list) in map.iter_mut() {
            while ei < eps.len() && eps[ei] < vf {
                ei += 1;
            }
            if ei < eps.len() && eps[ei] == vf {
                recompute(vf, list, buf, stats, on_change);
                continue;
            }
            while pi < pairs.len() && pairs[pi].0 < vf {
                pi += 1;
            }
            let mut touched = false;
            while pi < pairs.len() && pairs[pi].0 == vf {
                touched |= fix(pairs[pi].1, list, on_change);
                pi += 1;
            }
            if touched {
                stats.keys_recomputed += 1;
            }
        }
    } else {
        // Sparse: point lookups only.
        for &vf in eps {
            if let Some(list) = map.get_mut(&vf) {
                recompute(vf, list, buf, stats, on_change);
            }
        }
        let mut k = 0usize;
        while k < pairs.len() {
            let w = pairs[k].0;
            let Some(list) = map.get_mut(&w) else {
                while k < pairs.len() && pairs[k].0 == w {
                    k += 1;
                }
                continue;
            };
            let mut touched = false;
            while k < pairs.len() && pairs[k].0 == w {
                touched |= fix(pairs[k].1, list, on_change);
                k += 1;
            }
            if touched {
                stats.keys_recomputed += 1;
            }
        }
    }
}

impl StreamIndex {
    /// Builds the base index from scratch on `graph` (Algorithm 1 without
    /// the empty-entry cascade — refinement at materialization subsumes it).
    pub fn build(graph: &Graph, plan: &QueryPlan) -> StreamIndex {
        let n = plan.query().num_vertices();
        let filters = VertexFilters::new(plan.query());
        let mut idx = StreamIndex {
            pivots: candidates_of(plan.query(), graph, plan.root()),
            te: vec![None; n],
            nte: vec![Vec::new(); n],
            refs: vec![HashMap::new(); n],
        };
        let mut buf: Vec<VertexId> = Vec::new();
        for &u in plan.matching_order().iter().skip(1) {
            let parent = plan.tree().parent(u).expect("non-root node has a parent");
            let mut map = BaseTable::new();
            for vf in idx.candidates_sorted(plan, parent) {
                buf.clear();
                filters.filtered_neighbors_into(graph, u, vf, &mut buf);
                for &v in &buf {
                    *idx.refs[u.index()].entry(v).or_insert(0) += 1;
                }
                map.insert(vf, buf.clone());
            }
            idx.te[u.index()] = Some(map);
            for &un in plan.backward_nte(u) {
                let mut map = BaseTable::new();
                for vf in idx.candidates_sorted(plan, un) {
                    buf.clear();
                    filters.filtered_neighbors_into(graph, u, vf, &mut buf);
                    map.insert(vf, buf.clone());
                }
                idx.nte[u.index()].push((un, map));
            }
        }
        idx
    }

    /// The current (pre-refinement) candidate set of `u`, sorted ascending.
    fn candidates_sorted(&self, plan: &QueryPlan, u: VertexId) -> Vec<VertexId> {
        if u == plan.root() {
            self.pivots.clone()
        } else {
            let mut c: Vec<VertexId> = self.refs[u.index()].keys().copied().collect();
            c.sort_unstable();
            c
        }
    }

    /// Repairs the base index after a mutation batch whose touched edge
    /// endpoints are `endpoints`, against the **post-batch** graph snapshot.
    ///
    /// `graph` must reflect every mutation of the batch and `plan` must be
    /// the plan this index was built with (the matching order is structural;
    /// it stays valid across mutations). Endpoints may repeat and may list
    /// vertices whose edges were deleted.
    ///
    /// Locality argument: per-vertex filter inputs (labels, degree) change
    /// only at the batch's endpoints, and both sides of every mutated edge
    /// are endpoints. So an *endpoint* key's filtered adjacency is
    /// recomputed in full, while a non-endpoint key `w` can change only in
    /// the membership of an endpoint `e ∈ N(w)` (that edge is unmutated, so
    /// `w ∈ N_new(e)` reaches it) — fixed surgically without rescanning
    /// `w`'s adjacency. A deleted edge's far side is itself an endpoint, so
    /// `endpoints ∪ N_new(endpoints)` covers the batch's old neighborhood
    /// too — dirtiness is an overestimate, never a miss.
    pub fn patch(
        &mut self,
        graph: &Graph,
        plan: &QueryPlan,
        endpoints: &[VertexId],
    ) -> RepairStats {
        let filters = VertexFilters::new(plan.query());
        let mut stats = RepairStats::default();
        let n = plan.query().num_vertices();

        let mut eps: Vec<VertexId> = endpoints
            .iter()
            .copied()
            .filter(|e| e.index() < graph.num_vertices())
            .collect();
        eps.sort_unstable();
        eps.dedup();

        // Structural accounting only: the examined region of the index is
        // the endpoints plus their post-batch neighborhoods.
        let mut dirty: HashSet<VertexId> = HashSet::new();
        for &e in &eps {
            dirty.insert(e);
            dirty.extend(graph.neighbors(e).iter().copied());
        }
        stats.dirty_vertices = dirty.len();
        drop(dirty);

        // Non-endpoint neighbor keys whose lists may need an endpoint
        // membership fix, as sorted (key, endpoint) pairs.
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for &e in &eps {
            for &w in graph.neighbors(e) {
                if eps.binary_search(&w).is_err() {
                    pairs.push((w, e));
                }
            }
        }
        pairs.sort_unstable();

        // Per-node candidate transitions discovered so far this patch.
        let mut added_c: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut removed_c: Vec<Vec<VertexId>> = vec![Vec::new(); n];

        // Root membership can flip only at the endpoints themselves.
        let root = plan.root();
        for &e in &eps {
            let pass = filters.passes(graph, root, e);
            match self.pivots.binary_search(&e) {
                Ok(i) if !pass => {
                    self.pivots.remove(i);
                    removed_c[root.index()].push(e);
                }
                Err(i) if pass => {
                    self.pivots.insert(i, e);
                    added_c[root.index()].push(e);
                }
                _ => {}
            }
        }

        let mut buf: Vec<VertexId> = Vec::new();
        for &u in plan.matching_order().iter().skip(1) {
            let ui = u.index();
            let parent = plan.tree().parent(u).expect("non-root node has a parent");
            let mut before: HashMap<VertexId, u32> = HashMap::new();
            let eps_pass: Vec<bool> = eps.iter().map(|&e| filters.passes(graph, u, e)).collect();
            {
                let map = self.te[ui].as_mut().expect("non-root TE table");
                let refs = &mut self.refs[ui];
                // 1. Keys whose keying vertex left the parent's candidates.
                for &vf in &removed_c[parent.index()] {
                    if let Some(list) = map.remove(&vf) {
                        stats.keys_removed += 1;
                        for v in list {
                            ref_dec(refs, &mut before, v);
                        }
                    }
                }
                // 2. Endpoint keys recomputed in full, endpoint
                // membership in neighbor keys fixed surgically; refcount
                // transitions recorded for the candidate delta.
                {
                    let mut on_change = |v: VertexId, inc: bool| {
                        if inc {
                            ref_inc(refs, &mut before, v);
                        } else {
                            ref_dec(refs, &mut before, v);
                        }
                    };
                    repair_table(
                        map,
                        graph,
                        &filters,
                        u,
                        &eps,
                        &eps_pass,
                        &pairs,
                        &mut stats,
                        &mut buf,
                        &mut on_change,
                    );
                }
                // 3. Keys for vertices that just became parent candidates.
                for &vf in &added_c[parent.index()] {
                    debug_assert!(!map.contains_key(&vf), "fresh candidate already keyed");
                    buf.clear();
                    filters.filtered_neighbors_into(graph, u, vf, &mut buf);
                    stats.keys_added += 1;
                    for &v in &buf {
                        ref_inc(refs, &mut before, v);
                    }
                    map.insert(vf, buf.clone());
                }
                // Net refcount transitions define this node's candidate delta.
                for (v, b) in before {
                    let now = refs.get(&v).copied().unwrap_or(0);
                    if b == 0 && now > 0 {
                        added_c[ui].push(v);
                    } else if b > 0 && now == 0 {
                        removed_c[ui].push(v);
                    }
                }
            }
            // Backward NTE tables consume the non-tree parent's transitions
            // (already final — `un` precedes `u` in the matching order).
            for (un, map) in self.nte[ui].iter_mut() {
                for &vf in &removed_c[un.index()] {
                    if map.remove(&vf).is_some() {
                        stats.keys_removed += 1;
                    }
                }
                repair_table(
                    map,
                    graph,
                    &filters,
                    u,
                    &eps,
                    &eps_pass,
                    &pairs,
                    &mut stats,
                    &mut buf,
                    &mut |_, _| {},
                );
                for &vf in &added_c[un.index()] {
                    buf.clear();
                    filters.filtered_neighbors_into(graph, u, vf, &mut buf);
                    map.insert(vf, buf.clone());
                    stats.keys_added += 1;
                }
            }
        }
        stats
    }

    /// Freezes the current base into a refined, enumeration-ready [`Ceci`]
    /// via the shared Algorithm-2 + freeze tail of the from-scratch builder.
    pub fn materialize(&self, graph: &Graph, plan: &QueryPlan) -> Ceci {
        let n = plan.query().num_vertices();
        let mut te: Vec<Option<BuildTable>> = Vec::with_capacity(n);
        for u in 0..n {
            te.push(self.te[u].as_ref().map(freeze_base_table));
        }
        let nte: Vec<Vec<(VertexId, BuildTable)>> = self
            .nte
            .iter()
            .map(|tables| {
                tables
                    .iter()
                    .map(|(un, map)| (*un, freeze_base_table(map)))
                    .collect()
            })
            .collect();
        let state = BuilderState::from_parts(plan, self.pivots.clone(), te, nte);
        Ceci::from_filtered_state(graph, plan, state)
    }

    /// Number of root candidates currently in the base.
    pub fn num_pivots(&self) -> usize {
        self.pivots.len()
    }

    /// Approximate resident bytes of the base tables (for cache budgeting).
    pub fn size_bytes(&self) -> usize {
        let id = std::mem::size_of::<VertexId>();
        let mut bytes = std::mem::size_of::<StreamIndex>() + self.pivots.len() * id;
        let table = |map: &BaseTable| -> usize {
            map.values()
                .map(|l| (1 + l.len()) * id + 3 * std::mem::size_of::<usize>())
                .sum()
        };
        for map in self.te.iter().flatten() {
            bytes += table(map);
        }
        for (_, map) in self.nte.iter().flatten() {
            bytes += table(map);
        }
        for refs in &self.refs {
            bytes += refs.len() * (id + std::mem::size_of::<u32>() + std::mem::size_of::<usize>());
        }
        bytes
    }
}

/// Converts a base table into a [`BuildTable`] (ascending keys, empty value
/// lists elided — `push_key` skips zero-length entries, which is exactly the
/// shape refinement expects: a candidate with no extension sums to zero).
fn freeze_base_table(map: &BaseTable) -> BuildTable {
    let entries = map.values().map(Vec::len).sum();
    let mut t = BuildTable::with_capacity(map.len(), entries);
    for (&k, list) in map {
        if !list.is_empty() {
            t.push_key(k, list);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceci_core::count_embeddings;
    use ceci_graph::extract::extract_query;
    use ceci_graph::generators::{erdos_renyi, inject_random_labels};
    use ceci_graph::DeltaOverlay;
    use ceci_query::QueryGraph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_graph(seed: u64) -> Graph {
        inject_random_labels(&erdos_renyi(120, 420, seed), 3, seed ^ 0x5eed)
    }

    fn test_plan(graph: &Graph, seed: u64) -> QueryPlan {
        let pattern = extract_query(graph, 4, seed, 50)
            .expect("extractable")
            .pattern;
        let query = QueryGraph::from_graph(&pattern).unwrap();
        QueryPlan::new(query, graph)
    }

    fn rebuild_count(graph: &Graph, pattern_plan: &QueryPlan) -> u64 {
        // Fresh plan on the mutated graph — the from-scratch reference path.
        let query = pattern_plan.query().clone();
        let plan = QueryPlan::new(query, graph);
        let ceci = Ceci::build(graph, &plan);
        count_embeddings(graph, &plan, &ceci)
    }

    #[test]
    fn fresh_build_matches_from_scratch_counts() {
        for seed in [3u64, 11, 29] {
            let graph = test_graph(seed);
            let plan = test_plan(&graph, seed);
            let idx = StreamIndex::build(&graph, &plan);
            let ceci = idx.materialize(&graph, &plan);
            let got = count_embeddings(&graph, &plan, &ceci);
            let reference = {
                let ceci = Ceci::build(&graph, &plan);
                count_embeddings(&graph, &plan, &ceci)
            };
            assert_eq!(got, reference, "seed {seed}");
        }
    }

    /// Applies `batch` mutations to `graph` through an overlay, returning
    /// the new snapshot and the touched endpoints.
    fn apply_batch(
        graph: &Graph,
        rng: &mut StdRng,
        adds: usize,
        dels: usize,
    ) -> (Graph, Vec<VertexId>) {
        let n = graph.num_vertices() as u32;
        let mut overlay = DeltaOverlay::new();
        let mut endpoints = Vec::new();
        let mut applied = 0;
        let mut guard = 0;
        while applied < adds && guard < 10_000 {
            guard += 1;
            let a = VertexId(rng.gen_range(0..n));
            let b = VertexId(rng.gen_range(0..n));
            if overlay.add_edge(graph, a, b) {
                endpoints.extend([a, b]);
                applied += 1;
            }
        }
        applied = 0;
        guard = 0;
        while applied < dels && guard < 10_000 {
            guard += 1;
            let a = VertexId(rng.gen_range(0..n));
            let deg = graph.degree(a);
            if deg == 0 {
                continue;
            }
            let b = graph.neighbors(a)[rng.gen_range(0..deg)];
            if overlay.delete_edge(graph, a, b) {
                endpoints.extend([a, b]);
                applied += 1;
            }
        }
        (overlay.commit(graph), endpoints)
    }

    fn differential_loop(seed: u64, adds: usize, dels: usize, batches: usize) {
        let mut graph = test_graph(seed);
        let plan = test_plan(&graph, seed);
        let mut idx = StreamIndex::build(&graph, &plan);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        for batch in 0..batches {
            let (next, endpoints) = apply_batch(&graph, &mut rng, adds, dels);
            let stats = idx.patch(&next, &plan, &endpoints);
            assert!(stats.dirty_vertices > 0 || endpoints.is_empty());
            let ceci = idx.materialize(&next, &plan);
            let incremental = count_embeddings(&next, &plan, &ceci);
            let reference = rebuild_count(&next, &plan);
            assert_eq!(
                incremental, reference,
                "seed {seed} batch {batch}: incremental != rebuild"
            );
            graph = next;
        }
    }

    #[test]
    fn add_only_batches_match_rebuild() {
        differential_loop(7, 12, 0, 6);
    }

    #[test]
    fn delete_only_batches_match_rebuild() {
        differential_loop(13, 0, 12, 6);
    }

    #[test]
    fn mixed_batches_match_rebuild() {
        differential_loop(23, 8, 8, 8);
    }

    #[test]
    fn patch_reports_locality() {
        let graph = test_graph(5);
        let plan = test_plan(&graph, 5);
        let mut idx = StreamIndex::build(&graph, &plan);
        let mut rng = StdRng::seed_from_u64(99);
        let (next, endpoints) = apply_batch(&graph, &mut rng, 1, 0);
        let stats = idx.patch(&next, &plan, &endpoints);
        // One edge dirties at most the endpoints plus their neighborhoods.
        let bound: usize = endpoints.iter().map(|&e| 1 + next.degree(e)).sum();
        assert!(stats.dirty_vertices <= bound);
        assert!(stats.dirty_vertices >= 2);
    }

    #[test]
    fn clone_then_patch_leaves_original_usable() {
        // The service repair path patches a *clone* of the cached base; the
        // original must stay consistent for the old snapshot.
        let graph = test_graph(17);
        let plan = test_plan(&graph, 17);
        let idx = StreamIndex::build(&graph, &plan);
        let before = count_embeddings(&graph, &plan, &idx.materialize(&graph, &plan));
        let mut rng = StdRng::seed_from_u64(4242);
        let (next, endpoints) = apply_batch(&graph, &mut rng, 6, 6);
        let mut patched = idx.clone();
        patched.patch(&next, &plan, &endpoints);
        let after = count_embeddings(&next, &plan, &patched.materialize(&next, &plan));
        assert_eq!(after, rebuild_count(&next, &plan));
        // Original still answers for the old graph.
        let again = count_embeddings(&graph, &plan, &idx.materialize(&graph, &plan));
        assert_eq!(again, before);
    }
}
