//! Unlabeled pattern counting on a social-network stand-in: the paper's
//! QG1–QG5 queries over a Graph500-style Kronecker graph, comparing the
//! ST / CGD / FGD workload distribution strategies (§4.2–4.3).
//!
//! ```sh
//! cargo run --release -p ceci --example social_triangles
//! ```

use ceci::prelude::*;
use ceci_graph::generators::kronecker_default;
use std::time::Instant;

fn main() {
    let graph = kronecker_default(13, 10, 500);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    println!(
        "social graph: {} users, {} friendships (max degree {}), {} workers\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree(),
        workers
    );

    for q in PaperQuery::ALL {
        let plan = QueryPlan::new(q.build(), &graph);
        let build_start = Instant::now();
        let ceci = Ceci::build(&graph, &plan);
        let build = build_start.elapsed();
        print!(
            "{}: index {:>7} entries in {:>8.2?} |",
            q.name(),
            ceci.num_entries(),
            build
        );
        let mut count = 0;
        for strategy in [
            Strategy::Static,
            Strategy::CoarseDynamic,
            Strategy::FineDynamic { beta: 0.2 },
        ] {
            let start = Instant::now();
            count = count_parallel(&graph, &plan, &ceci, workers, strategy);
            print!(" {} {:>8.2?}", strategy.abbrev(), start.elapsed());
        }
        println!(" | {count} embeddings");
    }

    println!(
        "\n(FGD splits ExtremeClusters — the hub users whose clusters would \
         otherwise serialize the tail of the run)"
    );
}
