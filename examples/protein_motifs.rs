//! Labeled motif search over a synthetic protein-interaction-style network —
//! the kind of workload the paper's introduction motivates (PPI analysis,
//! sub-compound search).
//!
//! ```sh
//! cargo run --release -p ceci --example protein_motifs
//! ```

use ceci::prelude::*;
use ceci_graph::generators::{erdos_renyi, inject_random_multilabels};

fn main() {
    // A PPI-like network: 2,000 proteins, ~8 interactions each, every
    // protein annotated with 1-3 of 12 functional families (multi-label).
    let backbone = erdos_renyi(2_000, 8_000, 2024);
    let graph = inject_random_multilabels(&backbone, 12, 1, 3, 7);
    println!(
        "network: {} proteins, {} interactions, {} families",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );

    // Motif 1: a "bridge" — kinase(0) - scaffold(1) - kinase(0).
    let bridge = QueryGraph::with_labels(&[lid(0), lid(1), lid(0)], &[(0, 1), (1, 2)]).unwrap();
    // Motif 2: a signaling triangle across three distinct families.
    let triangle =
        QueryGraph::with_labels(&[lid(0), lid(1), lid(2)], &[(0, 1), (1, 2), (2, 0)]).unwrap();
    // Motif 3: a feed-forward diamond with a repeated family.
    let diamond = QueryGraph::with_labels(
        &[lid(3), lid(4), lid(4), lid(5)],
        &[(0, 1), (0, 2), (1, 3), (2, 3)],
    )
    .unwrap();

    for (name, query) in [
        ("bridge", bridge),
        ("triangle", triangle),
        ("diamond", diamond),
    ] {
        let plan = QueryPlan::new(query, &graph);
        let ceci = Ceci::build(&graph, &plan);
        let result = enumerate_parallel(
            &graph,
            &plan,
            &ceci,
            &ParallelOptions {
                workers: 4,
                strategy: Strategy::FineDynamic { beta: 0.2 },
                ..Default::default()
            },
        );
        println!(
            "motif {name:>8}: {:>8} occurrences | {} clusters | index {} KiB | {} recursive calls",
            result.total_embeddings,
            ceci.pivots().len(),
            ceci.stats().size_bytes / 1024,
            result.counters.recursive_calls,
        );
    }

    // First-k mode: biologists often only need a sample of occurrences.
    let sample_query = QueryGraph::with_labels(&[lid(0), lid(1)], &[(0, 1)]).unwrap();
    let plan = QueryPlan::new(sample_query, &graph);
    let ceci = Ceci::build(&graph, &plan);
    let sample = enumerate_parallel(
        &graph,
        &plan,
        &ceci,
        &ParallelOptions {
            workers: 4,
            limit: Some(5),
            collect: true,
            ..Default::default()
        },
    );
    println!("\nfirst 5 kinase-scaffold pairs:");
    for emb in sample.embeddings.unwrap() {
        println!("  protein v{} interacts with scaffold v{}", emb[0], emb[1]);
    }
}
