//! Simulated distributed run (§5): 8 machines × 2 threads, replicated vs
//! shared (lustre-like) storage, with work stealing and Jaccard cluster
//! co-location.
//!
//! ```sh
//! cargo run --release -p ceci --example distributed_cluster
//! ```

use ceci::distributed::{run_distributed, ClusterConfig, StorageMode};
use ceci::prelude::*;
use ceci_graph::generators::{attach_pendants, kronecker_default};

fn main() {
    let core = kronecker_default(12, 6, 99);
    let graph = attach_pendants(&core, core.num_vertices() * 2, 100);
    let plan = QueryPlan::new(PaperQuery::Qg3.build(), &graph);
    println!(
        "graph: {} vertices, {} edges | query: QG3 (chordal square)\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    for storage in [StorageMode::Replicated, StorageMode::Shared] {
        println!("--- storage: {storage:?} ---");
        let mut base = None;
        for machines in [1usize, 2, 4, 8] {
            let result = run_distributed(
                &graph,
                &plan,
                &ClusterConfig {
                    machines,
                    threads_per_machine: 2,
                    storage,
                    ..Default::default()
                },
            );
            let makespan = result.makespan;
            let baseline = *base.get_or_insert(makespan);
            let (io, comm, compute) = result.build_breakdown();
            let stolen: usize = result.reports.iter().map(|r| r.stolen_clusters).sum();
            println!(
                "{machines:>2} machines: {:>9.2?} modeled makespan ({:>5.2}x) | {} embeddings | \
                 build io {:.2?} comm {:.2?} compute {:.2?} | {} stolen clusters",
                makespan,
                baseline.as_secs_f64() / makespan.as_secs_f64(),
                result.total_embeddings,
                io,
                comm,
                compute,
                stolen,
            );
        }
        println!();
    }
    println!(
        "(replicated mode scales further; shared storage pays IO during CECI \
         construction, as the paper's Figures 16/17/20 show)"
    );
}
