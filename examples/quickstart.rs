//! Quickstart: build a labeled graph, plan a query, build CECI, list
//! embeddings.
//!
//! ```sh
//! cargo run --release -p ceci --example quickstart
//! ```

use ceci::prelude::*;

fn main() {
    // A small labeled data graph: molecule-ish. Labels: 0 = C, 1 = O, 2 = N.
    let mut b = GraphBuilder::new();
    let c1 = b.add_vertex(lid(0));
    let c2 = b.add_vertex(lid(0));
    let o1 = b.add_vertex(lid(1));
    let n1 = b.add_vertex(lid(2));
    let c3 = b.add_vertex(lid(0));
    let o2 = b.add_vertex(lid(1));
    b.add_edge(c1, c2);
    b.add_edge(c2, o1);
    b.add_edge(c2, n1);
    b.add_edge(n1, c3);
    b.add_edge(c3, o2);
    b.add_edge(c3, c1);
    let graph = b.build();
    println!(
        "data graph: {} vertices, {} edges, {} labels",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_labels()
    );

    // Query: a C-N-C path (a carbon bonded to nitrogen bonded to carbon).
    let query = QueryGraph::with_labels(&[lid(0), lid(2), lid(0)], &[(0, 1), (1, 2)])
        .expect("connected query");

    // Preprocess (root selection, BFS tree, matching order, symmetry
    // breaking) and build the index.
    let plan = QueryPlan::new(query, &graph);
    println!(
        "root query node: u{} | matching order: {:?}",
        plan.root(),
        plan.matching_order()
    );
    let ceci = Ceci::build(&graph, &plan);
    println!(
        "CECI: {} pivots, {} candidate entries, {} bytes (theoretical bound {} bytes)",
        ceci.pivots().len(),
        ceci.num_entries(),
        ceci.stats().size_bytes,
        ceci.stats().theoretical_bytes
    );

    // Enumerate.
    let embeddings = ceci::core::collect_embeddings(&graph, &plan, &ceci);
    println!("{} embedding(s):", embeddings.len());
    for emb in &embeddings {
        let pretty: Vec<String> = emb.iter().map(|v| format!("v{v}")).collect();
        println!("  [{}]", pretty.join(", "));
    }
}
