//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (poisoning is collapsed into the inner value —
//! a poisoned std lock yields its data anyway, matching parking_lot's
//! poison-free semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
