//! Offline stand-in for the `rand` crate.
//!
//! The workspace cannot reach crates.io, so this crate reimplements the
//! small slice of rand's API the repository uses: `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::{StdRng, SmallRng}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12-based `StdRng`, but the workspace
//! only relies on determinism-per-seed and statistical quality, never on the
//! exact stream.

/// Core RNG: xoshiro256** (Blackman & Vigna). 256-bit state, period 2^256−1.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn next_u64_impl(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable construction (the subset of rand's trait the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (system time + ASLR noise).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(32))
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe raw-word source, so `SampleRange` can stay generic.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Unbiased integer in `[0, bound)` via Lemire's multiply-shift with
/// rejection.
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Values drawable by [`Rng::gen`] (rand's `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws a value from the standard distribution.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing generator trait (rand's `Rng` subset).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's deterministic standard generator.
    pub type StdRng = super::Xoshiro256StarStar;
    /// Small fast generator — same engine here.
    pub type SmallRng = super::Xoshiro256StarStar;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{bounded_u64, Rng, RngCore};

    /// Slice extensions (rand's `SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Convenience constructor mirroring `rand::thread_rng` (not thread-cached;
/// each call builds a fresh entropy-seeded generator).
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[*items.choose(&mut rng).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "counts = {counts:?}");
    }
}
