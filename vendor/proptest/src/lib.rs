//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses as a
//! deterministic randomized-testing harness: strategies are generators
//! (`Strategy::generate`), the `proptest!` macro runs each property for
//! `ProptestConfig::cases` seeded cases, and `prop_assert*` report the
//! failing case number. There is **no shrinking** — on failure the panic
//! message carries the case index, and re-running is deterministic, which is
//! enough to reproduce.

pub mod strategy {
    //! Strategy combinators (generator-style).

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The RNG driving strategies.
    pub type TestRng = StdRng;

    /// Builds the deterministic RNG for `(test_name, case)`.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A value generator (proptest's `Strategy`, minus shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy for boxing.
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Constant strategy: always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!` backend).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds a union over the given alternatives (must be non-empty).
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Marker for `any::<T>()` (proptest's `Arbitrary` subset).
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen::<u32>()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications for [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing vectors of `elem`-generated values.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of randomized cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0u32..10, (a, b) in (0u32..5, 0u32..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng =
                        $crate::strategy::case_rng(stringify!($name), __case);
                    $(
                        let $p = $crate::strategy::Strategy::generate(
                            &($s), &mut __rng,
                        );
                    )+
                    let __run = || -> () { $body };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest case {__case} of {} failed in `{}`; \
                             re-run is deterministic",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..9, y in 2usize..=4) {
            prop_assert!((1..9).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u32..5, 0u32..5), v in collection::vec(0u32..3, 0..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..4).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..10, n..n + 1))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1u32), Just(2u32), Just(3u32)]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // Distinct draws within a case come from one stream.
            prop_assert_ne!(x, y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::strategy::case_rng("det", c);
                crate::strategy::Strategy::generate(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| {
                let mut rng = crate::strategy::case_rng("det", c);
                crate::strategy::Strategy::generate(&(0u64..1_000_000), &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
