//! Offline stand-in for the `libc` crate.
//!
//! The workspace has no network access to crates.io, so the handful of libc
//! items actually used (per-thread CPU clock reads in `ceci-core::metrics`,
//! `mmap(2)` for out-of-core CSR loading in `ceci-graph::io::binary`, and
//! `setsockopt(2)` for shard-listener address reuse in `ceci-service`) are
//! declared here directly against the system C library.

#![allow(non_camel_case_types)]

/// C `time_t` on 64-bit Linux.
pub type time_t = i64;
/// C `long` on 64-bit Linux.
pub type c_long = i64;
/// C `int`.
pub type c_int = i32;
/// C `clockid_t` on Linux.
pub type clockid_t = c_int;
/// C `void` (opaque; only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// C `size_t` on 64-bit Linux.
pub type size_t = usize;
/// C `off_t` on 64-bit Linux.
pub type off_t = i64;
/// C `socklen_t` on Linux.
pub type socklen_t = u32;

/// C `struct timespec`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 999_999_999]`.
    pub tv_nsec: c_long,
}

/// Thread-specific CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// `mmap` protection flag: pages may be read (Linux value).
pub const PROT_READ: c_int = 1;
/// `mmap` flag: private copy-on-write mapping (Linux value).
pub const MAP_PRIVATE: c_int = 2;
/// `mmap` failure sentinel (`(void *) -1`).
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `setsockopt` level for socket-level options (Linux value).
pub const SOL_SOCKET: c_int = 1;
/// Allow rebinding a listener port with connections in TIME_WAIT
/// (Linux value of `SO_REUSEADDR`).
pub const SO_REUSEADDR: c_int = 2;
/// IPv4 address family (Linux value).
pub const AF_INET: c_int = 2;
/// Stream socket type (Linux value).
pub const SOCK_STREAM: c_int = 1;
/// Close-on-exec socket creation flag (Linux value).
pub const SOCK_CLOEXEC: c_int = 0o2000000;

/// C `sa_family_t` on Linux.
pub type sa_family_t = u16;
/// C `in_port_t` (network byte order).
pub type in_port_t = u16;
/// C `in_addr_t` (network byte order).
pub type in_addr_t = u32;

/// C `struct in_addr`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct in_addr {
    /// IPv4 address in network byte order.
    pub s_addr: in_addr_t,
}

/// C `struct sockaddr_in`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct sockaddr_in {
    /// Always `AF_INET`.
    pub sin_family: sa_family_t,
    /// Port in network byte order.
    pub sin_port: in_port_t,
    /// IPv4 address.
    pub sin_addr: in_addr,
    /// Padding to `sizeof(struct sockaddr)`.
    pub sin_zero: [u8; 8],
}

/// C `struct sockaddr` (only ever passed by pointer).
#[repr(C)]
pub struct sockaddr {
    /// Address family.
    pub sa_family: sa_family_t,
    /// Family-specific payload.
    pub sa_data: [u8; 14],
}

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    /// POSIX `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// POSIX `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// POSIX `setsockopt(2)`.
    pub fn setsockopt(
        socket: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        option_len: socklen_t,
    ) -> c_int;
    /// POSIX `socket(2)`.
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    /// POSIX `bind(2)`.
    pub fn bind(socket: c_int, address: *const sockaddr, address_len: socklen_t) -> c_int;
    /// POSIX `listen(2)`.
    pub fn listen(socket: c_int, backlog: c_int) -> c_int;
    /// POSIX `close(2)`.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_readable() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_nsec >= 0 && ts.tv_nsec < 1_000_000_000);
    }

    #[test]
    fn mmap_reads_file_contents() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let dir = std::env::temp_dir().join("ceci_libc_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"mmap-probe")
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let len = 10usize;
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        assert_ne!(ptr, MAP_FAILED);
        let bytes = unsafe { std::slice::from_raw_parts(ptr as *const u8, len) };
        assert_eq!(bytes, b"mmap-probe");
        assert_eq!(unsafe { munmap(ptr, len) }, 0);
        std::fs::remove_file(&path).ok();
    }
}
