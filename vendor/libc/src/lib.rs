//! Offline stand-in for the `libc` crate.
//!
//! The workspace has no network access to crates.io, so the handful of libc
//! items actually used (per-thread CPU clock reads in `ceci-core::metrics`,
//! `mmap(2)` for out-of-core CSR loading in `ceci-graph::io::binary`,
//! `setsockopt(2)` for shard-listener address reuse, and the
//! `epoll(7)`/`eventfd(2)`/`fcntl(2)` readiness primitives behind the
//! event-driven server core in `ceci-service`) are declared here directly
//! against the system C library.

#![allow(non_camel_case_types)]

/// C `time_t` on 64-bit Linux.
pub type time_t = i64;
/// C `long` on 64-bit Linux.
pub type c_long = i64;
/// C `int`.
pub type c_int = i32;
/// C `clockid_t` on Linux.
pub type clockid_t = c_int;
/// C `void` (opaque; only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// C `size_t` on 64-bit Linux.
pub type size_t = usize;
/// C `off_t` on 64-bit Linux.
pub type off_t = i64;
/// C `socklen_t` on Linux.
pub type socklen_t = u32;
/// C `ssize_t` on 64-bit Linux.
pub type ssize_t = isize;
/// C `unsigned int`.
pub type c_uint = u32;

/// C `struct timespec`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 999_999_999]`.
    pub tv_nsec: c_long,
}

/// Thread-specific CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// `mmap` protection flag: pages may be read (Linux value).
pub const PROT_READ: c_int = 1;
/// `mmap` flag: private copy-on-write mapping (Linux value).
pub const MAP_PRIVATE: c_int = 2;
/// `mmap` failure sentinel (`(void *) -1`).
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `setsockopt` level for socket-level options (Linux value).
pub const SOL_SOCKET: c_int = 1;
/// Allow rebinding a listener port with connections in TIME_WAIT
/// (Linux value of `SO_REUSEADDR`).
pub const SO_REUSEADDR: c_int = 2;
/// IPv4 address family (Linux value).
pub const AF_INET: c_int = 2;
/// Stream socket type (Linux value).
pub const SOCK_STREAM: c_int = 1;
/// Close-on-exec socket creation flag (Linux value).
pub const SOCK_CLOEXEC: c_int = 0o2000000;

/// `epoll` readiness: the fd is readable (Linux value).
pub const EPOLLIN: u32 = 0x001;
/// `epoll` readiness: the fd is writable (Linux value).
pub const EPOLLOUT: u32 = 0x004;
/// `epoll` readiness: error condition on the fd (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `epoll` readiness: hang-up on the fd (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// `epoll` readiness: peer closed its writing half (Linux value).
pub const EPOLLRDHUP: u32 = 0x2000;
/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's interest set.
pub const EPOLL_CTL_MOD: c_int = 3;
/// Close-on-exec flag for `epoll_create1` (Linux value).
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `eventfd` flag: non-blocking reads/writes (Linux value).
pub const EFD_NONBLOCK: c_int = 0o4000;
/// `eventfd` flag: close-on-exec (Linux value).
pub const EFD_CLOEXEC: c_int = 0o2000000;
/// `fcntl` command: get file-status flags.
pub const F_GETFL: c_int = 3;
/// `fcntl` command: set file-status flags.
pub const F_SETFL: c_int = 4;
/// File-status flag: non-blocking I/O (Linux value).
pub const O_NONBLOCK: c_int = 0o4000;

/// C `struct epoll_event`. Packed on x86_64 (the kernel ABI there has no
/// padding between `events` and `data`); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Debug, Default)]
pub struct epoll_event {
    /// Readiness bit set (`EPOLLIN | ...`).
    pub events: u32,
    /// Caller-owned token, returned verbatim with each ready event.
    pub u64: u64,
}

/// C `sa_family_t` on Linux.
pub type sa_family_t = u16;
/// C `in_port_t` (network byte order).
pub type in_port_t = u16;
/// C `in_addr_t` (network byte order).
pub type in_addr_t = u32;

/// C `struct in_addr`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct in_addr {
    /// IPv4 address in network byte order.
    pub s_addr: in_addr_t,
}

/// C `struct sockaddr_in`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct sockaddr_in {
    /// Always `AF_INET`.
    pub sin_family: sa_family_t,
    /// Port in network byte order.
    pub sin_port: in_port_t,
    /// IPv4 address.
    pub sin_addr: in_addr,
    /// Padding to `sizeof(struct sockaddr)`.
    pub sin_zero: [u8; 8],
}

/// C `struct sockaddr` (only ever passed by pointer).
#[repr(C)]
pub struct sockaddr {
    /// Address family.
    pub sa_family: sa_family_t,
    /// Family-specific payload.
    pub sa_data: [u8; 14],
}

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    /// POSIX `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// POSIX `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// POSIX `setsockopt(2)`.
    pub fn setsockopt(
        socket: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        option_len: socklen_t,
    ) -> c_int;
    /// POSIX `socket(2)`.
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    /// POSIX `bind(2)`.
    pub fn bind(socket: c_int, address: *const sockaddr, address_len: socklen_t) -> c_int;
    /// POSIX `listen(2)`.
    pub fn listen(socket: c_int, backlog: c_int) -> c_int;
    /// POSIX `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// Linux `epoll_create1(2)`.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Linux `epoll_ctl(2)`.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Linux `epoll_wait(2)`.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Linux `eventfd(2)`.
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    /// POSIX `fcntl(2)` (the `F_GETFL`/`F_SETFL` two-int form).
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    /// POSIX `read(2)`.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// POSIX `write(2)`.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_readable() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_nsec >= 0 && ts.tv_nsec < 1_000_000_000);
    }

    #[test]
    fn mmap_reads_file_contents() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let dir = std::env::temp_dir().join("ceci_libc_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(b"mmap-probe")
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let len = 10usize;
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        assert_ne!(ptr, MAP_FAILED);
        let bytes = unsafe { std::slice::from_raw_parts(ptr as *const u8, len) };
        assert_eq!(bytes, b"mmap-probe");
        assert_eq!(unsafe { munmap(ptr, len) }, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        unsafe {
            let efd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
            assert!(efd >= 0, "eventfd failed");
            let epfd = epoll_create1(EPOLL_CLOEXEC);
            assert!(epfd >= 0, "epoll_create1 failed");

            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(epfd, EPOLL_CTL_ADD, efd, &mut ev), 0);

            // Nothing written yet: a zero-timeout wait reports no events.
            let mut ready = [epoll_event::default(); 4];
            assert_eq!(epoll_wait(epfd, ready.as_mut_ptr(), 4, 0), 0);

            // Write the 8-byte counter increment; the fd becomes readable.
            let one: u64 = 1;
            assert_eq!(
                write(efd, &one as *const u64 as *const c_void, 8),
                8 as ssize_t
            );
            let n = epoll_wait(epfd, ready.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let got = ready[0];
            assert_eq!({ got.u64 }, 42);
            assert_ne!({ got.events } & EPOLLIN, 0);

            // Drain; a second nonblocking read must fail (EFD_NONBLOCK).
            let mut counter: u64 = 0;
            assert_eq!(
                read(efd, &mut counter as *mut u64 as *mut c_void, 8),
                8 as ssize_t
            );
            assert_eq!(counter, 1);
            assert_eq!(read(efd, &mut counter as *mut u64 as *mut c_void, 8), -1);

            assert_eq!(epoll_ctl(epfd, EPOLL_CTL_DEL, efd, std::ptr::null_mut()), 0);
            assert_eq!(close(epfd), 0);
            assert_eq!(close(efd), 0);
        }
    }

    #[test]
    fn fcntl_toggles_nonblocking() {
        unsafe {
            let efd = eventfd(0, 0);
            assert!(efd >= 0);
            let flags = fcntl(efd, F_GETFL, 0);
            assert!(flags >= 0);
            assert_eq!(flags & O_NONBLOCK, 0);
            assert_eq!(fcntl(efd, F_SETFL, flags | O_NONBLOCK), 0);
            assert_ne!(fcntl(efd, F_GETFL, 0) & O_NONBLOCK, 0);
            assert_eq!(close(efd), 0);
        }
    }
}
