//! Offline stand-in for the `libc` crate.
//!
//! The workspace has no network access to crates.io, so the handful of libc
//! items actually used (per-thread CPU clock reads in `ceci-core::metrics`)
//! are declared here directly against the system C library.

#![allow(non_camel_case_types)]

/// C `time_t` on 64-bit Linux.
pub type time_t = i64;
/// C `long` on 64-bit Linux.
pub type c_long = i64;
/// C `int`.
pub type c_int = i32;
/// C `clockid_t` on Linux.
pub type clockid_t = c_int;

/// C `struct timespec`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds in `[0, 999_999_999]`.
    pub tv_nsec: c_long,
}

/// Thread-specific CPU-time clock (Linux value).
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_readable() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_nsec >= 0 && ts.tv_nsec < 1_000_000_000);
    }
}
