//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock measurement loop: per benchmark, a short warm-up sizes the
//! iteration batch, then `sample_size` samples are timed and min / median /
//! mean are printed. No plots, no statistics beyond that — but timings are
//! real and comparable across kernels in one run.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;
/// Target wall time per sample while auto-sizing the iteration batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free CLI arg (as passed by `cargo bench -- <filter>`) filters
        // benchmark names; flags like `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, DEFAULT_SAMPLES, self.filter.as_deref(), f);
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| full_name.contains(f))
            .unwrap_or(true)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a function under `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_benchmark(&full, self.sample_size, None, f);
        }
    }

    /// Benchmarks a function with an explicit input reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_benchmark(&full, self.sample_size, None, |b| f(b, input));
        }
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` (criterion's batch semantics).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    name: &str,
    samples: usize,
    filter: Option<&str>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(fil) = filter {
        if !name.contains(fil) {
            return;
        }
    }
    // Warm-up: run single iterations until we can estimate a batch size.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter_times.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_times[0];
    let median = per_iter_times[per_iter_times.len() / 2];
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "{name:<50} min {:>12}  median {:>12}  mean {:>12}  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        per_iter_times.len(),
        iters,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with `--test`:
            // compile-check only, skip measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("QG1").to_string(), "QG1");
    }

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut ran = false;
        run_benchmark("alpha/one", 2, Some("beta"), |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
